"""Power management on a cold-storage unit (§IV-F, §VII-C).

Replays 24 hours of cold-data accesses (Poisson reads, ~10-minute mean
gaps) against a disk under three regimes — always on, fixed 5-minute
spin-down, and UStore's adaptive policy — then prints the energy and
spin-cycle trade-off, plus the whole-unit power states of Table V.

Run:  python examples/power_management.py
"""

from repro.disk import IoRequest, SimulatedDisk, TOSHIBA_POWER_USB
from repro.fabric import prototype_fabric
from repro.power import (
    AdaptiveTimeoutPolicy,
    FixedTimeoutPolicy,
    pergamum_power,
    run_policy,
    ustore_power,
)
from repro.sim import RngRegistry, Simulator
from repro.workload import cold_read_trace

HOURS = 24.0


def replay(policy_name: str, policy) -> dict:
    sim = Simulator()
    disk = SimulatedDisk(sim, "cold0")
    if policy is not None:
        run_policy(sim, {"cold0": disk}, policy, check_interval=10.0)
    events = cold_read_trace(
        RngRegistry(42), duration=HOURS * 3600.0, mean_interarrival=600.0
    )

    def reader():
        for access in events:
            delay = access.time - sim.now
            if delay > 0:
                yield sim.timeout(delay)
            yield disk.submit(
                IoRequest(
                    offset=access.offset,
                    size=access.size,
                    is_read=True,
                    sequential_hint=False,
                )
            )

    done = sim.process(reader())
    sim.run_until_event(done)
    sim.run(until=HOURS * 3600.0)
    return {
        "name": policy_name,
        "requests": len(events),
        "spin_ups": disk.states.spin_up_count,
        "energy_wh": disk.energy_joules(TOSHIBA_POWER_USB) / 3600.0,
    }


def main() -> None:
    print(f"Cold workload: Poisson reads, 10-minute mean gap, {HOURS:.0f} h\n")
    rows = [
        replay("always-on", None),
        replay("fixed 5-min timeout", FixedTimeoutPolicy(idle_timeout=300.0)),
        replay(
            "adaptive (UStore default)",
            AdaptiveTimeoutPolicy(idle_timeout=300.0, thrash_limit=3, thrash_window=3600.0),
        ),
    ]
    print(f"{'policy':<28} {'requests':>8} {'spin-ups':>9} {'energy Wh':>10}")
    for row in rows:
        print(
            f"{row['name']:<28} {row['requests']:>8} "
            f"{row['spin_ups']:>9} {row['energy_wh']:>10.1f}"
        )

    print("\nWhole 16-disk unit (Table V states):")
    fabric = prototype_fabric()
    for state, spinning in (("spinning", True), ("powered off", False)):
        ustore = ustore_power(fabric, spinning).wall_total
        pergamum = pergamum_power(spinning).wall_total
        print(f"  {state:<12} UStore {ustore:6.1f} W   Pergamum {pergamum:6.1f} W")


if __name__ == "__main__":
    main()
