"""Reliability deep-dive: availability, fabric-assisted rebuild, scrubbing.

Quantifies what the paper argues qualitatively (§I, §III-A, §IV-E,
§VIII): how much availability the reconfigurable fabric buys, how much
faster (and cheaper on the network) a disk rebuild gets when the
Master switches the source disk onto the rebuilding host, and how the
scrub interval bounds latent-sector-error exposure.

Run:  python examples/reliability_study.py
"""

from repro.experiments import reliability


def main() -> None:
    print(reliability.main())
    print()
    print("Reading the results:")
    print("  * single-attached pods lose every disk for the full host")
    print("    repair (~2h x ~3.5 failures/year -> ~7 downtime hours per")
    print("    disk-year); UStore pays only the ~5.8s failover, gaining")
    print("    about three 'nines' of disk availability.")
    print("  * a fabric-assisted rebuild runs at disk speed on one host")
    print("    and moves zero bytes across the data-center network - the")
    print("    future work sketched at the end of §IV-E.")
    print("  * scrubbing: detection latency tracks the scrub interval,")
    print("    so the interval directly bounds LSE exposure windows.")


if __name__ == "__main__":
    main()
