"""Capacity planning with the cost and fabric models (§V-A, §VI).

Answers the questions an operator would ask before adopting UStore:

* what does a 10 PB deployment cost, versus the alternatives?
* how does the per-disk attach cost change with unit size?
* does a proposed fabric design respect USB constraints?

Run:  python examples/capacity_planning.py
"""

from repro.cost import render_cost_table, ustore_estimate
from repro.cost.systems import DISK_CAPACITY_BYTES, SATA_DISK_PRICE, TARGET_CAPACITY_BYTES
from repro.fabric import dual_tree_fabric, ring_fabric, validate_fabric


def main() -> None:
    print("=" * 64)
    print("Table I: 10 PB raw capacity, five solutions")
    print("=" * 64)
    print(render_cost_table())

    print()
    print("UStore BOM detail:")
    print(ustore_estimate().bom.render())

    print()
    print("=" * 64)
    print("Fabric design validation")
    print("=" * 64)
    designs = {
        "prototype ring (16 disks / 4 hosts)": ring_fabric(
            num_hosts=4, disks_per_leaf=2, fan_in=4
        ),
        "deploy unit ring (64 disks / 4 hosts)": ring_fabric(
            num_hosts=4, disks_per_leaf=8, fan_in=16
        ),
        "dual-tree (16 disks / 2 hosts)": dual_tree_fabric(
            num_disks=16, num_hosts=2, fan_in=4
        ),
    }
    for name, fabric in designs.items():
        report = validate_fabric(fabric)
        quirk = validate_fabric(fabric, enforce_intel_quirk=True)
        worst = max(report.worst_case_devices_per_port.values())
        print(f"\n  {name}")
        print(f"    structurally valid: {report.ok}  "
              f"hub depth: {report.max_hub_depth}/5  "
              f"worst devices/port: {worst}/127")
        print(f"    hubs: {len(fabric.hubs)}  switches: {len(fabric.switches)}  "
              f"full host reachability: {report.min_reachable_hosts} hosts/disk")
        if quirk.warnings:
            print(f"    note: {quirk.warnings[0]}")

    print()
    print("=" * 64)
    print("Scaling: how many units and disks for common targets")
    print("=" * 64)
    for petabytes in (1, 10, 50):
        capacity = petabytes * 10**15
        disks = -(-capacity // DISK_CAPACITY_BYTES)  # ceil
        units = -(-disks // 64)
        media = disks * SATA_DISK_PRICE / 1e6
        print(f"  {petabytes:>3} PB: {units:>4} deploy units, {disks:>6} disks, "
              f"${media:.2f}M in media")


if __name__ == "__main__":
    main()
