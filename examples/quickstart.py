"""Quickstart: bring up a UStore deploy unit, allocate and use storage.

Builds the paper's 16-disk / 4-host prototype entirely in simulation,
waits for the control plane to settle (coordination leader, active
master, boot enumeration), then walks the basic ClientLib flow:
allocate a space, mount it, do block I/O, look up its serving host.

Run:  python examples/quickstart.py
"""

from repro.cluster import build_deployment
from repro.workload import KB, MB


def main() -> None:
    print("Building the 16-disk / 4-host prototype deploy unit...")
    deployment = build_deployment()
    deployment.settle(15.0)
    sim = deployment.sim

    master = deployment.active_master()
    print(f"Active master: {master.address}")
    print(f"Hosts online:  {master.sysstat.online_hosts()}")
    print("Disk attachment:")
    for host in deployment.fabric.hosts():
        disks = master.sysstat.disks_on_host(host)
        print(f"  {host}: {', '.join(disks)}")

    client = deployment.new_client("quickstart-app", service="demo")

    def scenario():
        print("\nAllocating a 256 MB space...")
        info = yield from client.allocate(256 * MB)
        print(f"  space id: {info['space_id']}")
        print(f"  served by {info['host_id']} as target {info['target']}")

        space = yield from client.mount(info["space_id"])
        print("\nMounted; writing 16 MB then reading it back...")
        for i in range(4):
            yield from space.write(i * 4 * MB, 4 * MB)
        result = yield from space.read(0, 4 * MB)
        print(f"  read ok, backend service time {result['service_time'] * 1e3:.1f} ms")

        host = yield from client.lookup_host(info["space_id"])
        print(f"\nDirectory lookup: {info['space_id']} -> {host}")

        print("Releasing the space back to the pool...")
        yield from client.release(info["space_id"])

    sim.run_until_event(sim.process(scenario()))
    print(f"\nDone at simulated t={sim.now:.1f}s. "
          f"Client stats: {client.mounted or 'no residual mounts'}")


if __name__ == "__main__":
    main()
