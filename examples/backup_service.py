"""A deduplicating backup service on UStore (Venti-style overlay).

Seven nightly backup rounds of a mutating dataset: the first round
writes everything, later rounds write only changed chunks.  Shows the
dedup ratio, per-round write time, and a restore — the archival usage
the paper's introduction motivates.

Run:  python examples/backup_service.py
"""

from repro.backup import BackupService, provision_archive, synthetic_dataset
from repro.cluster import build_deployment
from repro.sim import RngRegistry
from repro.workload import MB


def main() -> None:
    deployment = build_deployment()
    deployment.settle(15.0)
    sim = deployment.sim

    print("Provisioning two UStore spaces for the archive store...")
    store = sim.run_until_event(
        sim.process(provision_archive(deployment, num_spaces=2, space_bytes=4096 * MB))
    )

    rng = RngRegistry(2026)
    service = BackupService(deployment, store, rng, change_fraction=0.12)
    dataset = synthetic_dataset(rng, num_files=60, mean_file_mb=8.0)
    service.load_dataset(dataset)
    logical_mb = sum(f.size for f in dataset) / MB
    print(f"Dataset: {len(dataset)} files, {logical_mb:.0f} MB logical\n")

    # Narratively these are nightly rounds; the inter-round gap is
    # compressed to 10 simulated minutes because the idle control plane
    # (heartbeats, elections) dominates event count, not the backups.
    def run():
        return (yield from service.run_rounds(7, interval_seconds=600.0))

    rounds = sim.run_until_event(sim.process(run()))

    print(f"{'snapshot':<10} {'logical MB':>10} {'written MB':>10} "
          f"{'dedup':>7} {'write s':>8}")
    for stats in rounds:
        dedup = "inf" if stats.unique_bytes == 0 else f"{stats.dedup_ratio:5.1f}x"
        print(
            f"{stats.snapshot_id:<10} {stats.logical_bytes / MB:>10.0f} "
            f"{stats.unique_bytes / MB:>10.0f} {dedup:>7} "
            f"{stats.write_seconds:>8.1f}"
        )

    total_logical = sum(s.logical_bytes for s in rounds) / MB
    print(f"\nTotal: {total_logical:.0f} MB logical stored as "
          f"{store.stored_bytes / MB:.0f} MB on disk "
          f"({total_logical / (store.stored_bytes / MB):.1f}x overall dedup)")

    def restore():
        return (yield from store.restore(rounds[-1].snapshot_id))

    result = sim.run_until_event(sim.process(restore()))
    rate = result["bytes_restored"] / MB / result["seconds"]
    print(f"Restore of the last snapshot: {result['bytes_restored'] / MB:.0f} MB "
          f"in {result['seconds']:.1f}s ({rate:.0f} MB/s)")


if __name__ == "__main__":
    main()
