"""Erasure-coded storage on UStore: RS(4+2) striping, failure, repair.

UStore "delegates data recovery of failed disks to the data redundancy
mechanisms supported by upper layer services" (§IV-E).  This example is
that upper layer: a real Reed-Solomon code (GF(2^8), Cauchy parity)
stripes objects across six UStore spaces on six different spindles.
A disk failure degrades reads (decode from any 4 of 6 shards), and
``repair`` rebuilds the lost shard onto a freshly allocated space.

Run:  python examples/erasure_coding.py
"""

from repro.cluster import build_deployment
from repro.cluster.namespace import parse_space_id
from repro.ec import RSCode, StripedStore
from repro.faults import FaultInjector
from repro.workload import MB


def main() -> None:
    dep = build_deployment()
    dep.settle(15.0)
    sim = dep.sim
    # An EC layer wants shard reads to fail fast: with parity available
    # there is no point waiting a full remount deadline on a dead shard.
    client = dep.new_client(
        "ec-app",
        service="ec-demo",
        max_remount_attempts=1,
        remount_deadline=4.0,
        io_timeout=2.0,
    )

    print("Provisioning 6 spaces on 6 distinct spindles for RS(4+2)...")
    spaces, used_disks = [], []

    def provision():
        for _ in range(6):
            info = yield from client.allocate(512 * MB, exclude_disks=used_disks)
            used_disks.append(parse_space_id(info["space_id"])[1])
            space = yield from client.mount(info["space_id"])
            spaces.append(space)

    sim.run_until_event(sim.process(provision()))
    for index, disk in enumerate(used_disks):
        print(f"  shard {index}: {disk} on {dep.fabric.attached_host(disk)}")

    store = StripedStore(
        sim=sim, code=RSCode(4, 2), spaces=spaces, space_bytes=512 * MB
    )
    payload = bytes(i % 256 for i in range(8 * MB))

    def write_and_read():
        yield from store.put("dataset.bin", payload)
        data = yield from store.get("dataset.bin")
        assert data == payload

    sim.run_until_event(sim.process(write_and_read()))
    print(f"\nStored and verified {len(payload) // MB} MB as 4+2 shards "
          f"(storage overhead {6 / 4:.2f}x vs 3x for replication).")

    victim = used_disks[0]
    print(f"\nFailing {victim} (shard 0)...")
    FaultInjector(dep).fail_disk(victim)
    dep.settle(5.0)

    def degraded_read():
        start = sim.now
        data = yield from store.get("dataset.bin")
        assert data == payload
        return sim.now - start

    elapsed = sim.run_until_event(sim.process(degraded_read()))
    print(f"  degraded read OK in {elapsed:.1f}s "
          f"(decoded from parity; degraded reads: {store.degraded_reads})")

    print("\nRepairing shard 0 onto a replacement space...")

    def repair():
        info = yield from client.allocate(512 * MB, exclude_disks=used_disks)
        replacement = yield from client.mount(info["space_id"])
        rebuilt = yield from store.repair(0, replacement)
        data = yield from store.get("dataset.bin")
        assert data == payload
        return rebuilt, parse_space_id(info["space_id"])[1]

    rebuilt, new_disk = sim.run_until_event(sim.process(repair()))
    print(f"  rebuilt {rebuilt} shard(s) onto {new_disk}; "
          f"reads are clean again.")


if __name__ == "__main__":
    main()
