"""Fleet operations: two deploy units, one Master, live dashboard.

Shows the §IV deployment shape — "one Master and a number of deploy
units" — with allocation steered across units, a host failure in one
unit (which must not disturb the other), and the operator dashboard
after each step.

Run:  python examples/fleet_operations.py
"""

from repro.cluster import build_multi_unit_deployment
from repro.monitor import render_dashboard, snapshot
from repro.workload import MB


def main() -> None:
    print("Building two prototype deploy units under one Master...")
    fleet = build_multi_unit_deployment(num_units=2)
    fleet.settle(15.0)
    sim = fleet.sim

    print()
    print(render_dashboard(snapshot(fleet)))

    print("\nAllocating one space per service, one service per unit...")
    # Distinct services: same-service disk affinity (§IV-A rule 1)
    # outranks locality, so a shared service would pile onto one disk.
    clients = {
        "unit0": fleet.new_client("web-archive-app", service="web-archive"),
        "unit1": fleet.new_client("log-archive-app", service="log-archive"),
    }
    spaces = {}

    def allocate():
        for unit, host in (("unit0", "unit0.host1"), ("unit1", "unit1.host2")):
            client = clients[unit]
            info = yield from client.allocate(128 * MB, locality_hint=host)
            space = yield from client.mount(info["space_id"])
            yield from space.write(0, 4 * MB)
            spaces[unit] = (info, space)
            print(f"  {unit}: {info['space_id']} on {info['host_id']}")

    sim.run_until_event(sim.process(allocate()))

    victim = "unit0.host1"
    print(f"\nCrashing {victim} — unit1 must not notice...")
    fleet.crash_host(victim)
    fleet.settle(15.0)

    def verify():
        for unit, (info, space) in spaces.items():
            start = sim.now
            yield from space.read(0, 4 * MB)
            print(f"  {unit}: read ok in {sim.now - start:.2f}s "
                  f"(now on {space.current_host})")

    sim.run_until_event(sim.process(verify()))

    print()
    print(render_dashboard(snapshot(fleet)))
    master = fleet.active_master()
    print(f"\nFailovers completed: {master.failovers_completed} "
          f"(unit1 untouched: its disks never moved)")


if __name__ == "__main__":
    main()
