"""Failover drill: kill a host mid-I/O and watch UStore heal itself.

A client writes continuously to a space.  We crash the host serving
that space; the Master detects the silence through missed heartbeats,
commands the Controller to switch the orphaned disks to healthy hosts
(Algorithm 1 through the XOR-ed microcontrollers), re-exposes the
targets, and the ClientLib remounts automatically.  The client observes
one slow write — the paper's ~5.8-second recovery — not an outage.

Run:  python examples/failover_drill.py
"""

from repro.cluster import build_deployment
from repro.workload import MB


def main() -> None:
    deployment = build_deployment()
    deployment.settle(15.0)
    sim = deployment.sim
    client = deployment.new_client("drill-app", service="drill")
    client.on_status_change(
        lambda sid, event: print(f"  [{sim.now:8.2f}s] ClientLib: {sid} {event}")
    )

    state = {}

    def setup():
        info = yield from client.allocate(512 * MB)
        space = yield from client.mount(info["space_id"])
        state["info"], state["space"] = info, space
        print(f"Space {info['space_id']} served by {info['host_id']}")

    sim.run_until_event(sim.process(setup()))
    victim = state["info"]["host_id"]
    space = state["space"]

    def writer():
        offset = 0
        for i in range(60):
            start = sim.now
            yield from space.write(offset, 4 * MB)
            elapsed = sim.now - start
            marker = "   <-- slow (failover window)" if elapsed > 1.0 else ""
            if i % 10 == 0 or elapsed > 1.0:
                print(f"  [{sim.now:8.2f}s] write {i:2d} took {elapsed:6.3f}s{marker}")
            offset += 4 * MB
            yield sim.timeout(0.25)  # paced archival stream

    def assassin():
        yield sim.timeout(4.0)
        print(f"  [{sim.now:8.2f}s] !!! crashing {victim}")
        deployment.crash_host(victim)

    writer_proc = sim.process(writer())
    sim.process(assassin())
    sim.run_until_event(writer_proc)

    master = deployment.active_master()
    print(f"\nAll writes completed. Failovers: {master.failovers_completed}")
    print(f"Space now served by {space.current_host} "
          f"(remounts: {space.stats.remounts})")
    stranded = [d for d, h in deployment.fabric.attachment_map().items() if h == victim]
    print(f"Disks still stranded on {victim}: {len(stranded)}")


if __name__ == "__main__":
    main()
