"""HDFS on UStore: the paper's §VII-B overlay experiment, end to end.

One namenode and three datanodes run on the prototype's hosts; each
datanode stores its blocks on a UStore space (a remotely attached block
device via the ClientLib).  While a client streams a 192 MB file into
HDFS with 3-way replication, the Master switches one datanode's backing
disk to a different host.  The write sees a seconds-long hiccup and
resumes; a subsequent read is not interrupted at all.

Run:  python examples/hdfs_on_ustore.py
"""

from repro.cluster import build_deployment
from repro.fabric import SwitchConflict, plan_switches
from repro.hdfs import build_hdfs_on_ustore
from repro.net import RpcClient
from repro.workload import MB


def pick_target(fabric, disk: str) -> str:
    current = fabric.attached_host(disk)
    for host in fabric.reachable_hosts(disk):
        if host == current:
            continue
        try:
            plan_switches(fabric, [(disk, host)])
            return host
        except SwitchConflict:
            continue
    raise RuntimeError("no conflict-free target")


def main() -> None:
    deployment = build_deployment()
    deployment.settle(15.0)
    sim = deployment.sim

    print("Starting mini-HDFS on the UStore prototype...")
    hdfs = sim.run_until_event(sim.process(build_hdfs_on_ustore(deployment)))
    deployment.settle(3.0)
    for dn_id in sorted(hdfs.datanodes):
        disk = hdfs.backing_disk_of(dn_id)
        print(f"  {dn_id}: backed by {disk} on {deployment.fabric.attached_host(disk)}")

    client = hdfs.new_client("hdfs-app")
    disk = hdfs.backing_disk_of("dn0")
    target = pick_target(deployment.fabric, disk)
    source = deployment.fabric.attached_host(disk)
    master = deployment.active_master().address
    rpc = RpcClient(sim, deployment.network, "operator")

    def migrate():
        yield sim.timeout(5.0)
        print(f"  [{sim.now:7.2f}s] switching {disk}: {source} -> {target}")
        yield from rpc.call(master, "master.migrate_disk", disk, target, timeout=60.0)
        print(f"  [{sim.now:7.2f}s] switch complete")

    sim.process(migrate())

    print("\nWriting a 192 MB file with 3-way replication...")
    start = sim.now

    def write():
        return (yield from client.write_file("/demo/archive.bin", 192 * MB))

    report = sim.run_until_event(sim.process(write()))
    print(f"  wrote {report.bytes_written // MB} MB in {sim.now - start:.1f}s")
    print(f"  client-visible errors: {report.errors}, "
          f"slowest packet {report.slowest_packet:.2f}s, "
          f"pipelines rebuilt: {report.pipelines_rebuilt}")

    print("\nReading the file back (replicas cover any further switches)...")
    start = sim.now

    def read():
        return (yield from client.read_file("/demo/archive.bin"))

    result = sim.run_until_event(sim.process(read()))
    print(f"  read {result['bytes_read'] // MB} MB in {sim.now - start:.1f}s "
          f"({result['replica_switches']} replica switches)")

    print(f"\n{disk} is now served by {deployment.fabric.attached_host(disk)} — "
          "the switch looked like a transient hiccup, not a rebuild.")


if __name__ == "__main__":
    main()
