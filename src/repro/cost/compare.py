"""Table I assembly and the paper's headline cost claims (§VI)."""

from __future__ import annotations

from typing import List

from repro.cost.systems import (
    CostEstimate,
    backblaze_estimate,
    md3260i_estimate,
    pergamum_estimate,
    sl150_estimate,
    ustore_estimate,
)

__all__ = ["cost_table", "render_cost_table", "ustore_savings_vs_backblaze"]


def cost_table() -> List[CostEstimate]:
    """The five rows of Table I, in the paper's order."""
    return [
        md3260i_estimate(),
        sl150_estimate(),
        pergamum_estimate(),
        backblaze_estimate(),
        ustore_estimate(),
    ]


def render_cost_table() -> str:
    """Human-readable Table I (thousands of dollars, 10 PB raw)."""
    lines = [
        f"{'System':<26} {'Media':<14} {'CapEx':>10} {'AttEx':>10}",
        "-" * 64,
    ]
    for row in cost_table():
        attex = "-" if row.attex is None else f"${row.attex_thousands:,.0f}"
        lines.append(
            f"{row.system:<26} {row.media:<14} "
            f"${row.capex_thousands:>8,.0f} {attex:>10}"
        )
    return "\n".join(lines)


def ustore_savings_vs_backblaze() -> dict:
    """§VI: UStore is ~24% cheaper in CapEx and ~55% in AttEx."""
    ustore = ustore_estimate()
    backblaze = backblaze_estimate()
    return {
        "capex_saving": 1.0 - ustore.capex / backblaze.capex,
        "attex_saving": 1.0 - ustore.attex / backblaze.attex,
    }
