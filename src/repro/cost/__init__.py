"""Cost models: BOMs and the Table I system comparison."""

from repro.cost.bom import BillOfMaterials, LineItem, RETAIL_MARKUP
from repro.cost.compare import cost_table, render_cost_table, ustore_savings_vs_backblaze
from repro.cost.physical import UnitSpec, unit_spec
from repro.cost.systems import (
    CostEstimate,
    TARGET_CAPACITY_BYTES,
    backblaze_estimate,
    md3260i_estimate,
    pergamum_estimate,
    sl150_estimate,
    ustore_estimate,
)

__all__ = [
    "BillOfMaterials",
    "CostEstimate",
    "LineItem",
    "RETAIL_MARKUP",
    "TARGET_CAPACITY_BYTES",
    "UnitSpec",
    "backblaze_estimate",
    "cost_table",
    "md3260i_estimate",
    "pergamum_estimate",
    "render_cost_table",
    "sl150_estimate",
    "unit_spec",
    "ustore_estimate",
    "ustore_savings_vs_backblaze",
]
