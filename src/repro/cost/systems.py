"""Per-system CapEx models for the Table I comparison (§VI).

All estimates target the paper's scenario: **10 PB of raw capacity on
3 TB media**.  UStore, BACKBLAZE and Pergamum are composed from BOMs
using the paper's stated assumptions (Storage Pod enclosure economics
from [22], Cubieboard3 as the Pergamum ARM, $4 / $100 per 1G / 10G
Ethernet port, x2 markup on bare fabric ICs).  The two commercial
systems (Dell MD3260i, StorageTek SL150) are quoted figures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.cost.bom import BillOfMaterials

__all__ = [
    "CostEstimate",
    "backblaze_estimate",
    "md3260i_estimate",
    "pergamum_estimate",
    "sl150_estimate",
    "ustore_estimate",
    "TARGET_CAPACITY_BYTES",
]

TARGET_CAPACITY_BYTES = 10 * 10**15  # 10 PB raw
DISK_CAPACITY_BYTES = 3 * 10**12  # 3 TB SATA
SATA_DISK_PRICE = 100.0  # §VI: "3TB SATA HDDs, which cost about $100"

# BACKBLAZE Storage Pod 4.0 [22]: 45 disks per 4U pod; the pod without
# drives (chassis, PSUs, fans, boards, cabling, assembly).
POD_DISKS = 45
POD_WITHOUT_DRIVES = 3469.0
# Compute portion of the pod (motherboard, CPU, RAM, boot drive) that
# Pergamum tomes replace with per-disk ARMs.
POD_COMPUTE_PORTION = 700.0

# Pergamum tome parts: Cubieboard3-class ARM board with native SATA and
# GbE [27], plus its share of the Ethernet interconnect tree
# ($4 per 1G port; two $100 10G uplink ports amortized over a pod).
CUBIEBOARD_PRICE = 53.0
ETHERNET_1G_PORT = 4.0
ETHERNET_10G_PORT = 100.0
UPLINKS_PER_POD = 2

# UStore deploy unit: 64 disks in a 4U enclosure (§VI), four hosts.
UNIT_DISKS = 64
# Chassis, power supplies, fans, cabling — Storage Pod economics minus
# the compute tray (§VI uses [22]'s numbers the same way).
UNIT_CHASSIS = 1820.0
# Fabric ICs (all "less than $1 each", §VI); counts follow the ring
# fabric scaled to 64 disks: one bridge + one 2:1 switch per disk, one
# switch per leaf hub, 12 hubs. x2 markup applies (bare components).
BRIDGE_IC = 0.80
SWITCH_IC = 0.70
HUB_IC = 0.90
UNIT_LEAF_HUBS = 8
UNIT_ROOT_HUBS = 4
MICROCONTROLLER_PRICE = 25.0  # Arduino-class board, two per unit

# Commercial systems: quoted configurations (§VI / Table I).
MD3260I_CAPEX = 3_340_000.0
MD3260I_ATTEX = 1_525_000.0
SL150_CAPEX = 1_748_000.0


@dataclass(frozen=True)
class CostEstimate:
    """One row of Table I."""

    system: str
    media: str
    capex: float
    attex: Optional[float]  # capital expense without disks; None for tape
    bom: Optional[BillOfMaterials] = None

    @property
    def capex_thousands(self) -> float:
        return self.capex / 1000.0

    @property
    def attex_thousands(self) -> Optional[float]:
        return None if self.attex is None else self.attex / 1000.0


def _disks_needed(per_enclosure: int) -> tuple:
    enclosures = math.ceil(
        TARGET_CAPACITY_BYTES / (per_enclosure * DISK_CAPACITY_BYTES)
    )
    return enclosures, enclosures * per_enclosure


def backblaze_estimate() -> CostEstimate:
    pods, disks = _disks_needed(POD_DISKS)
    bom = BillOfMaterials("BACKBLAZE @ 10PB")
    bom.add("storage pod (no drives)", POD_WITHOUT_DRIVES, pods)
    attex = bom.total()
    bom.add("3TB SATA disk", SATA_DISK_PRICE, disks)
    return CostEstimate("BACKBLAZE", "SATA HD", bom.total(), attex, bom)


def pergamum_estimate() -> CostEstimate:
    pods, disks = _disks_needed(POD_DISKS)
    bom = BillOfMaterials("Pergamum (no NVRAM) @ 10PB")
    bom.add("pod enclosure (no compute)", POD_WITHOUT_DRIVES - POD_COMPUTE_PORTION, pods)
    bom.add("ARM board (Cubieboard3)", CUBIEBOARD_PRICE, disks)
    bom.add("1G Ethernet port", ETHERNET_1G_PORT, disks)
    bom.add("10G uplink port", ETHERNET_10G_PORT, pods * UPLINKS_PER_POD)
    attex = bom.total()
    bom.add("3TB SATA disk", SATA_DISK_PRICE, disks)
    return CostEstimate("Pergamum", "SATA HD", bom.total(), attex, bom)


def ustore_estimate() -> CostEstimate:
    units, disks = _disks_needed(UNIT_DISKS)
    bom = BillOfMaterials("UStore @ 10PB")
    bom.add("4U enclosure/PSU/fans", UNIT_CHASSIS, units)
    bom.add("SATA-USB bridge IC", BRIDGE_IC, disks, markup=True)
    bom.add("2:1 switch IC", SWITCH_IC, disks + units * UNIT_LEAF_HUBS, markup=True)
    bom.add("hub IC", HUB_IC, units * (UNIT_LEAF_HUBS + UNIT_ROOT_HUBS), markup=True)
    bom.add("microcontroller", MICROCONTROLLER_PRICE, units * 2)
    attex = bom.total()
    bom.add("3TB SATA disk", SATA_DISK_PRICE, disks)
    return CostEstimate("UStore", "SATA HD", bom.total(), attex, bom)


def md3260i_estimate() -> CostEstimate:
    return CostEstimate("DELL PowerVault MD3260i", "Near-line SAS", MD3260I_CAPEX, MD3260I_ATTEX)


def sl150_estimate() -> CostEstimate:
    return CostEstimate("Sun StorageTek SL150", "LTO6 Tape", SL150_CAPEX, None)
