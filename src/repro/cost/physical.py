"""Physical design of a deploy unit (§V-A).

The paper envisions a rack-mountable 4U enclosure holding 40-70 3.5"
disks plus the fabric, power and cooling, connected to 4 hosts: "such a
unit would be able to provide around 200 terabytes of raw disk storage
capacity using the available 4TB SATA disks, and has about 2~3 GB/s
total aggregated throughput on all 4 ports."

:func:`unit_spec` reproduces those claims from the component models, so
capacity planners can sweep disk counts, disk sizes and host counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.disk.model import DiskModel
from repro.disk.specs import ConnectionType, TOSHIBA_POWER_USB
from repro.fabric.bandwidth import DEFAULT_DUPLEX_CAPACITY
from repro.power.systems import (
    FAN_COUNT,
    FAN_POWER,
    PSU_EFFICIENCY,
    USB_HOST_ADAPTER_POWER,
)
from repro.units import GB as GB_DECIMAL
from repro.units import TB as TB_DECIMAL
from repro.workload.specs import MB, AccessPattern, WorkloadSpec

__all__ = ["UnitSpec", "unit_spec"]

#: §V-A: a 4U enclosure comfortably hosts 40-70 3.5" disks.
MIN_DISKS_4U = 40
MAX_DISKS_4U = 70
RACK_UNITS = 4


@dataclass(frozen=True)
class UnitSpec:
    """Derived specification of one deploy unit."""

    num_disks: int
    disk_capacity_bytes: int
    num_hosts: int
    raw_capacity_bytes: int
    aggregate_throughput_bytes: float
    power_spinning_watts: float
    rack_units: int = RACK_UNITS
    fits_4u: bool = True

    @property
    def raw_capacity_tb(self) -> float:
        return self.raw_capacity_bytes / TB_DECIMAL

    @property
    def aggregate_throughput_gb_s(self) -> float:
        return self.aggregate_throughput_bytes / GB_DECIMAL

    @property
    def capacity_per_rack_unit_tb(self) -> float:
        return self.raw_capacity_tb / self.rack_units

    @property
    def watts_per_tb(self) -> float:
        return self.power_spinning_watts / self.raw_capacity_tb


def unit_spec(
    num_disks: int = 50,
    disk_capacity_bytes: int = 4 * 10**12,
    num_hosts: int = 4,
) -> UnitSpec:
    """Derive a deploy unit's headline numbers (§V-A's envelope).

    Aggregate throughput is per-port duplex capacity times ports,
    bounded by what the disks themselves can stream.
    """
    if num_disks < 1 or num_hosts < 1:
        raise ValueError("need at least one disk and one host")
    model = DiskModel(connection=ConnectionType.HUB_AND_SWITCH)
    disk_rate = model.demand_bytes_per_second(
        WorkloadSpec(4 * MB, AccessPattern.SEQUENTIAL, 1.0)
    )
    fabric_limit = num_hosts * DEFAULT_DUPLEX_CAPACITY
    disk_limit = num_disks * disk_rate
    throughput = min(fabric_limit, disk_limit)
    # Power: disks active + amortized fabric (~0.9W/disk at prototype
    # density) + fans + adapters, at the wall.
    fabric_watts = 0.9 * num_disks
    dc_watts = (
        num_disks * TOSHIBA_POWER_USB.active
        + fabric_watts
        + FAN_POWER * FAN_COUNT
        + USB_HOST_ADAPTER_POWER * num_hosts
    )
    return UnitSpec(
        num_disks=num_disks,
        disk_capacity_bytes=disk_capacity_bytes,
        num_hosts=num_hosts,
        raw_capacity_bytes=num_disks * disk_capacity_bytes,
        aggregate_throughput_bytes=throughput,
        power_spinning_watts=dc_watts / PSU_EFFICIENCY,
        fits_4u=MIN_DISKS_4U <= num_disks <= MAX_DISKS_4U or num_disks < MIN_DISKS_4U,
    )
