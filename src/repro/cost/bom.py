"""Bill-of-materials arithmetic for the cost comparison (§VI).

The paper estimates street prices by multiplying BOM (component) cost
by 2 [29]; :class:`BillOfMaterials` items can opt into that markup
individually, so commodity finished goods (disks, enclosures) are
costed at street price while bare ICs get the markup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

__all__ = ["BillOfMaterials", "LineItem", "RETAIL_MARKUP"]

#: §VI: "We multiply bill of materials (BOM) cost by 2 to estimate the
#: cost of the interconnect fabric."
RETAIL_MARKUP = 2.0


@dataclass(frozen=True)
class LineItem:
    name: str
    unit_cost: float
    quantity: float
    markup: bool = False  # apply RETAIL_MARKUP (bare components)

    def total(self) -> float:
        cost = self.unit_cost * self.quantity
        return cost * RETAIL_MARKUP if self.markup else cost


@dataclass
class BillOfMaterials:
    title: str
    items: List[LineItem] = field(default_factory=list)

    def add(self, name: str, unit_cost: float, quantity: float, markup: bool = False) -> "BillOfMaterials":
        if unit_cost < 0 or quantity < 0:
            raise ValueError(f"negative cost/quantity for {name!r}")
        self.items.append(LineItem(name, unit_cost, quantity, markup))
        return self

    def total(self) -> float:
        return sum(item.total() for item in self.items)

    def subtotal(self, *names: str) -> float:
        wanted = set(names)
        return sum(item.total() for item in self.items if item.name in wanted)

    def render(self) -> str:
        lines = [f"BOM: {self.title}"]
        for item in self.items:
            marked = " (x2 markup)" if item.markup else ""
            lines.append(
                f"  {item.name:<28} {item.quantity:>9.1f} x ${item.unit_cost:>8.2f}"
                f" = ${item.total():>12,.2f}{marked}"
            )
        lines.append(f"  {'TOTAL':<28} {'':>22} ${self.total():>12,.2f}")
        return "\n".join(lines)
