"""Algorithm 1 of the paper: planning which switches to turn.

Given a command — a list of ``(disk, host)`` pairs — the planner finds
the switch turns that realize it without disturbing any disk that is
*not* part of the command.  Switches already used by the current paths
of uninvolved disks are *occupied*: if a command needs an occupied
switch in a different state, the command conflicts and an
:class:`SwitchConflict` describing the collateral damage is raised (the
Master then decides whether to abort or to extend the command, §IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.fabric.components import FabricError, NodeKind, Switch
from repro.fabric.topology import Fabric, SwitchSetting
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry

__all__ = ["SwitchConflict", "SwitchPlan", "plan_switches", "execute_plan"]


class SwitchConflict(FabricError):
    """The command cannot be realized without disturbing other disks."""

    def __init__(self, message: str, victims: Sequence[str] = ()):
        super().__init__(message)
        self.victims = tuple(victims)


@dataclass(frozen=True)
class SwitchPlan:
    """The turns required to execute a command."""

    pairs: Tuple[Tuple[str, str], ...]
    turns: Tuple[SwitchSetting, ...]
    already_satisfied: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def is_noop(self) -> bool:
        return not self.turns


def plan_switches(
    fabric: Fabric,
    disk_host_pairs: Sequence[Tuple[str, str]],
    respect_failures: bool = True,
) -> SwitchPlan:
    """The paper's ``SwitchesToTurn`` (Algorithm 1).

    Parameters are pairs of (disk id, target host id).  Returns a
    :class:`SwitchPlan`; raises :class:`SwitchConflict` if the command
    would force an uninvolved disk off its current host, naming the
    victims, or :class:`FabricError` if a target is unreachable.
    """
    if not disk_host_pairs:
        return SwitchPlan(pairs=(), turns=())
    involved: Set[str] = set()
    for disk_id, host_id in disk_host_pairs:
        if fabric.node(disk_id).kind is not NodeKind.DISK:
            raise FabricError(f"{disk_id!r} is not a disk")
        if disk_id in involved:
            raise FabricError(f"disk {disk_id!r} appears twice in the command")
        involved.add(disk_id)
        if host_id not in fabric.hosts():
            raise FabricError(f"unknown host {host_id!r}")

    # Lines 4-8: switches pinned by the current paths of uninvolved,
    # currently-attached disks.  occupied[switch] = required state.
    occupied: Dict[str, int] = {}
    pinned_by: Dict[str, List[str]] = {}
    for disk in fabric.disks:
        if disk.node_id in involved or disk.failed:
            continue
        if fabric.attached_port(disk.node_id) is None:
            continue  # detached disks pin nothing
        walk = fabric.trace_up(disk.node_id)
        for node_id in walk:
            node = fabric.nodes[node_id]
            if isinstance(node, Switch):
                occupied[node_id] = node.state
                pinned_by.setdefault(node_id, []).append(disk.node_id)

    # Lines 9-17: collect the turns, checking each against occupancy.
    # Where the fabric offers several paths for a pair, the planner
    # tries them in order of fewest turns and conflicts only when every
    # path collides with a pinned switch.
    turns: List[SwitchSetting] = []
    satisfied: List[str] = []
    for disk_id, host_id in disk_host_pairs:
        candidates = fabric.paths_to_host(disk_id, host_id, respect_failures)
        if not candidates:
            raise FabricError(f"no path from {disk_id!r} to host {host_id!r}")

        def turns_needed(path) -> int:
            return sum(
                1
                for s in path.settings
                if fabric.nodes[s.switch_id].state != s.state
            )

        candidates.sort(key=turns_needed)
        chosen = None
        first_conflict: Optional[SwitchConflict] = None
        for path in candidates:
            conflict = None
            for setting in path.settings:
                pinned = occupied.get(setting.switch_id)
                if pinned is not None and pinned != setting.state:
                    victims = pinned_by.get(setting.switch_id, [])
                    conflict = SwitchConflict(
                        f"turning {setting.switch_id!r} to state {setting.state} "
                        f"for {disk_id!r}->{host_id!r} would disconnect "
                        f"{', '.join(victims)}",
                        victims=victims,
                    )
                    break
            if conflict is None:
                chosen = path
                break
            if first_conflict is None:
                first_conflict = conflict
        if chosen is None:
            assert first_conflict is not None
            raise first_conflict

        for setting in chosen.settings:
            switch = fabric.nodes[setting.switch_id]
            assert isinstance(switch, Switch)
            if setting.switch_id in occupied:
                continue  # already pinned in the desired state
            if switch.state != setting.state:
                turns.append(setting)
            else:
                satisfied.append(setting.switch_id)
            # From now on this switch is occupied at the planned state
            # (line 15), so later pairs in the same command must agree.
            occupied[setting.switch_id] = setting.state
            pinned_by.setdefault(setting.switch_id, []).append(disk_id)
    return SwitchPlan(
        pairs=tuple(disk_host_pairs),
        turns=tuple(turns),
        already_satisfied=tuple(satisfied),
    )


def execute_plan(
    fabric: Fabric, plan: SwitchPlan, metrics: Optional[MetricsRegistry] = None
) -> None:
    """Apply a plan's turns to the fabric (one by one, as in §IV-C).

    When a :class:`~repro.obs.MetricsRegistry` is supplied, the command
    and its physical switch turns are counted (``switch.commands`` /
    ``switch.turns`` / ``switch.noop_commands``).
    """
    registry = metrics if metrics is not None else NULL_REGISTRY
    registry.counter("switch.commands").inc()
    if plan.is_noop:
        registry.counter("switch.noop_commands").inc()
    else:
        registry.counter("switch.turns").inc(len(plan.turns))
    fabric.apply_settings(plan.turns)
