"""Power model of the interconnect fabric (§VII-C, Table IV).

Measured on the prototype:

* a 2:1 USB switch draws ~0.06 W;
* an unloaded 4-port hub draws 0.21 W; the first connected (powered)
  device adds ~0.64 W, each further device ~0.21 W, independent of
  whether the disks are idle or busy (Table IV);
* the whole 16-disk fabric draws ~13.6 W while serving I/O.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.fabric.components import NodeKind
from repro.fabric.topology import Fabric

__all__ = ["FabricPowerModel", "FabricPowerParams", "hub_power"]


@dataclass(frozen=True)
class FabricPowerParams:
    """Calibrated component power constants (watts)."""

    switch: float = 0.06
    hub_base: float = 0.21
    hub_first_device: float = 0.85
    hub_per_extra_device: float = 0.205
    bridge_active_extra: float = 0.0  # bridge power is folded into the
    # disk's USB power profile (Table III measures disk+bridge together)


def hub_power(connected_devices: int, params: FabricPowerParams = FabricPowerParams()) -> float:
    """Power of one hub with ``connected_devices`` powered downstreams.

    Reproduces Table IV: 0 -> 0.21 W, 1 -> 1.06 W, 2 -> 1.27 W,
    3 -> 1.48 W, 4 -> 1.69 W (paper: 0.21 / 1.06 / 1.23 / 1.47 / 1.67).
    """
    if connected_devices < 0:
        raise ValueError(f"negative device count {connected_devices}")
    power = params.hub_base
    if connected_devices >= 1:
        power += params.hub_first_device
        power += params.hub_per_extra_device * (connected_devices - 1)
    return power


class FabricPowerModel:
    """Aggregate fabric power as a function of which parts are powered."""

    def __init__(self, fabric: Fabric, params: FabricPowerParams = FabricPowerParams()):
        self.fabric = fabric
        self.params = params
        # node_id -> powered flag; default everything on.
        self.powered: Dict[str, bool] = {n: True for n in fabric.nodes}

    def set_powered(self, node_id: str, powered: bool) -> None:
        if node_id not in self.powered:
            raise KeyError(f"unknown node {node_id!r}")
        self.powered[node_id] = powered

    def power_off_subtree(self, node_id: str) -> None:
        """Cut power to a node and everything below it (§IV-F)."""
        stack = [node_id]
        while stack:
            current = stack.pop()
            self.powered[current] = False
            stack.extend(self.fabric.downstreams(current))

    def power_on_subtree(self, node_id: str) -> None:
        stack = [node_id]
        while stack:
            current = stack.pop()
            self.powered[current] = True
            stack.extend(self.fabric.downstreams(current))

    def _hub_connected_devices(self, hub_id: str) -> int:
        """Powered devices presently loading a hub's downstream ports.

        A downstream switch is transparent, and it only presents a load
        when its *active* upstream is this hub — an alternate connector
        whose switch routes elsewhere is electrically disconnected.
        """
        count = 0
        for child in self.fabric.downstreams(hub_id):
            if self._branch_loads(child, hub_id):
                count += 1
        return count

    def _branch_loads(self, node_id: str, parent_id: str) -> bool:
        if not self.powered[node_id]:
            return False
        node = self.fabric.node(node_id)
        if node.kind is NodeKind.SWITCH:
            if self.fabric.active_upstream(node_id) != parent_id:
                return False
            for child in self.fabric.downstreams(node_id):
                if self._branch_loads(child, node_id):
                    return True
            return False
        return node.kind in (NodeKind.HUB, NodeKind.BRIDGE, NodeKind.DISK)

    def total_power(self) -> float:
        """Watts drawn by the fabric itself (hubs + switches).

        Bridge and disk power are accounted per disk via
        :class:`repro.disk.specs.DiskPowerProfile` (Table III measures
        the enclosure, i.e. disk + bridge, as one unit).
        """
        total = 0.0
        for node_id, node in self.fabric.nodes.items():
            if not self.powered[node_id]:
                continue
            if node.kind is NodeKind.SWITCH:
                total += self.params.switch
            elif node.kind is NodeKind.HUB:
                total += hub_power(self._hub_connected_devices(node_id), self.params)
        return total
