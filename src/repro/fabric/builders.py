"""Standard fabric constructions from the paper (Figure 2 and §V).

Three builders are provided:

* :func:`dual_tree_fabric` — Figure 2 *left*: one full hub tree per
  host, every disk picks a tree through a leaf-level switch chain.
* :func:`ring_fabric` — Figure 2 *right* / the §V-B prototype: switches
  sit higher in the tree; every disk's path crosses exactly two hubs and
  two switches.  Leaf groups and hosts are arranged on a ring so each
  disk can reach every host while the hardware count stays minimal.
* :func:`prototype_fabric` — the paper's 16-disk, 4-host deploy unit
  (a :func:`ring_fabric` with the prototype's parameters).
* :func:`rack_fabric` — N independent ring *pods* in one fabric, the
  rack-scale topology used by the ``alloc_scale`` benchmark (a pod is
  one deploy unit: 16 disks / 4 hosts at the defaults, so 15 pods is a
  240-disk rack and 120 pods a 1920-disk row).
"""

from __future__ import annotations

import math
from typing import List

from repro.fabric.components import Bridge, DiskNode, FabricError, HostPort, Hub, Switch
from repro.fabric.topology import Fabric

__all__ = [
    "dual_tree_fabric",
    "prototype_fabric",
    "rack_fabric",
    "ring_fabric",
]


def _add_disk(fabric: Fabric, index: int, parent_id: str, prefix: str = "") -> str:
    """Create disk+bridge pair and hang it below ``parent_id``."""
    disk = fabric.add(DiskNode(f"{prefix}disk{index}"))
    bridge = fabric.add(Bridge(f"{prefix}bridge{index}"))
    fabric.connect(disk.node_id, bridge.node_id)
    fabric.connect(bridge.node_id, parent_id)
    return disk.node_id


def _build_hub_tree(
    fabric: Fabric, tree_name: str, num_leaf_slots: int, fan_in: int, root_parent: str
) -> List[str]:
    """Build a full ``fan_in``-ary hub tree under ``root_parent``.

    Returns the ids of the leaf hubs, each of which exposes ``fan_in``
    free downstream ports (``num_leaf_slots`` total across all of them).
    """
    if num_leaf_slots < 1:
        raise FabricError("hub tree needs at least one leaf slot")
    num_leaf_hubs = max(1, math.ceil(num_leaf_slots / fan_in))
    level: List[str] = []
    for i in range(num_leaf_hubs):
        hub = fabric.add(Hub(f"{tree_name}-leafhub{i}", fan_in=fan_in))
        level.append(hub.node_id)
    depth = 0
    while len(level) > 1:
        depth += 1
        next_level: List[str] = []
        for i in range(0, len(level), fan_in):
            hub = fabric.add(Hub(f"{tree_name}-l{depth}hub{i // fan_in}", fan_in=fan_in))
            for child in level[i : i + fan_in]:
                fabric.connect(child, hub.node_id)
            next_level.append(hub.node_id)
        level = next_level
    fabric.connect(level[0], root_parent)
    return [f"{tree_name}-leafhub{i}" for i in range(num_leaf_hubs)]


def dual_tree_fabric(
    num_disks: int, num_hosts: int = 2, fan_in: int = 4, prefix: str = ""
) -> Fabric:
    """Figure 2 (left): one full hub tree per host, switched at the leaf.

    Each disk hangs below a chain of ``ceil(log2(num_hosts))`` switches
    whose leaves plug into the corresponding leaf slot of every hub
    tree, so any disk can be connected to any host independently of all
    other disks.
    """
    if num_disks < 1:
        raise FabricError("num_disks must be >= 1")
    if num_hosts < 2:
        raise FabricError("dual-tree design needs >= 2 hosts")
    if num_hosts & (num_hosts - 1):
        raise FabricError("num_hosts must be a power of two (2:1 switch chains)")

    fabric = Fabric(name=f"{prefix}dual-tree-{num_disks}d-{num_hosts}h")
    # One root port and one full hub tree per host.
    tree_leaf_hubs: List[List[str]] = []
    for h in range(num_hosts):
        port = fabric.add(HostPort(f"{prefix}port-h{h}", host_id=f"{prefix}host{h}"))
        leaf_hubs = _build_hub_tree(fabric, f"{prefix}t{h}", num_disks, fan_in, port.node_id)
        tree_leaf_hubs.append(leaf_hubs)

    for d in range(num_disks):
        hub_index, slot = divmod(d, fan_in)
        # Switch tree with num_hosts leaves: disk at the root (downstream),
        # hub slots at the leaves (upstreams).
        targets = [tree_leaf_hubs[h][hub_index] for h in range(num_hosts)]
        level_nodes = targets
        level = 0
        while len(level_nodes) > 1:
            next_nodes: List[str] = []
            for i in range(0, len(level_nodes), 2):
                sw = fabric.add(Switch(f"{prefix}sw-d{d}-l{level}-{i // 2}"))
                fabric.connect(sw.node_id, level_nodes[i])
                fabric.connect(sw.node_id, level_nodes[i + 1])
                next_nodes.append(sw.node_id)
            level_nodes = next_nodes
            level += 1
        _add_disk(fabric, d, level_nodes[0], prefix)
    return fabric


def ring_fabric(
    num_hosts: int = 4,
    disks_per_leaf: int = 2,
    fan_in: int = 4,
    prefix: str = "",
) -> Fabric:
    """Figure 2 (right): switches placed above the leaf hubs.

    Layout.  Each host contributes one *root hub* plugged into its root
    port.  There are ``2 * num_hosts`` *leaf hubs*, each carrying
    ``disks_per_leaf`` disks.  Two switch levels provide reconfiguration:

    * leaf switch ``S_i``: leaf hub ``i`` routes to root hub
      ``i mod H`` (primary) or ``(i+1) mod H`` (alternate);
    * disk switch ``T_d``: disk ``d`` of leaf group ``g`` routes to leaf
      hub ``g`` (primary) or ``(g+2) mod 2H`` (alternate).

    Every disk's path is ``bridge → switch → leaf hub → switch →
    root hub → host port`` — two hubs, two switches and a bridge,
    matching the §VII-A description of the prototype — and the ring
    offsets are chosen so the primary and alternate leaf hubs cover
    disjoint root-hub pairs, giving every disk a path to four distinct
    hosts (all hosts, for the prototype's ``num_hosts=4``).

    Physical port budgets hold exactly at the defaults: each root hub
    receives 4 leaf-switch connectors and each leaf hub receives
    ``2*disks_per_leaf <= fan_in`` disk-switch connectors.
    """
    if num_hosts < 2:
        raise FabricError("ring fabric needs >= 2 hosts")
    if disks_per_leaf < 1:
        raise FabricError("need at least one disk per leaf hub")
    if 2 * disks_per_leaf > fan_in:
        raise FabricError(
            f"leaf hub fan-in {fan_in} cannot host {disks_per_leaf} primary "
            f"plus {disks_per_leaf} alternate disk connectors"
        )

    num_leaf_hubs = 2 * num_hosts
    fabric = Fabric(name=f"{prefix}ring-{num_leaf_hubs * disks_per_leaf}d-{num_hosts}h")
    _build_ring_pod(fabric, num_hosts, disks_per_leaf, fan_in, prefix)
    return fabric


def _build_ring_pod(
    fabric: Fabric, num_hosts: int, disks_per_leaf: int, fan_in: int, prefix: str
) -> List[str]:
    """Add one ring-topology pod to ``fabric``; returns its disk ids."""
    num_leaf_hubs = 2 * num_hosts
    ports = [
        fabric.add(HostPort(f"{prefix}port-h{h}", host_id=f"{prefix}host{h}"))
        for h in range(num_hosts)
    ]
    root_hubs = [
        fabric.add(Hub(f"{prefix}roothub{h}", fan_in=fan_in)) for h in range(num_hosts)
    ]
    for h in range(num_hosts):
        fabric.connect(root_hubs[h].node_id, ports[h].node_id)

    leaf_hubs = []
    for i in range(num_leaf_hubs):
        leaf_hub = fabric.add(Hub(f"{prefix}leafhub{i}", fan_in=fan_in))
        sw = fabric.add(Switch(f"{prefix}leafsw{i}"))
        fabric.connect(sw.node_id, root_hubs[i % num_hosts].node_id)
        fabric.connect(sw.node_id, root_hubs[(i + 1) % num_hosts].node_id)
        fabric.connect(leaf_hub.node_id, sw.node_id)
        leaf_hubs.append(leaf_hub)

    disk_ids: List[str] = []
    disk_index = 0
    for g in range(num_leaf_hubs):
        for _ in range(disks_per_leaf):
            sw = fabric.add(Switch(f"{prefix}disksw{disk_index}"))
            fabric.connect(sw.node_id, leaf_hubs[g].node_id)
            fabric.connect(sw.node_id, leaf_hubs[(g + 2) % num_leaf_hubs].node_id)
            disk_ids.append(_add_disk(fabric, disk_index, sw.node_id, prefix))
            disk_index += 1
    return disk_ids


def prototype_fabric() -> Fabric:
    """The paper's proof-of-concept unit: 16 disks, 4 hosts (§V-B)."""
    return ring_fabric(num_hosts=4, disks_per_leaf=2, fan_in=4)


def rack_fabric(
    num_pods: int,
    num_hosts: int = 4,
    disks_per_leaf: int = 2,
    fan_in: int = 4,
    prefix: str = "",
) -> Fabric:
    """``num_pods`` independent ring pods composed into one fabric.

    Each pod is a full :func:`ring_fabric` deploy unit under node
    prefix ``{prefix}p{pod}-`` (16 disks on 4 hosts at the defaults).
    Pods share no links, which matches the paper's rack organisation —
    a deploy unit is the replaceable hardware module — and makes the
    rack's max-min allocation the union of the per-pod problems: the
    ``alloc_scale`` benchmark uses this to scale flow count without
    changing the character of each constraint.
    """
    if num_pods < 1:
        raise FabricError("num_pods must be >= 1")
    disks_per_pod = 2 * num_hosts * disks_per_leaf
    fabric = Fabric(
        name=f"{prefix}rack-{num_pods}x{disks_per_pod}d-{num_pods * num_hosts}h"
    )
    for pod in range(num_pods):
        _build_ring_pod(fabric, num_hosts, disks_per_leaf, fan_in, f"{prefix}p{pod}-")
    return fabric
