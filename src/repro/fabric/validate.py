"""Structural validation of a fabric against USB constraints (§II-B).

The USB specification allows at most 5 hub tiers below a root port and
at most 127 devices (including hubs) per tree.  The paper additionally
reports an Intel xHCI driver quirk limiting one root port to ~15 usable
devices (§V-B); validation can optionally enforce that too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.fabric.components import NodeKind
from repro.fabric.topology import Fabric

__all__ = ["ValidationReport", "validate_fabric"]

USB_MAX_HUB_TIERS = 5
USB_MAX_DEVICES_PER_TREE = 127
INTEL_XHCI_DEVICE_LIMIT = 15


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_fabric`."""

    ok: bool = True
    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    max_hub_depth: int = 0
    worst_case_devices_per_port: Dict[str, int] = field(default_factory=dict)
    min_reachable_hosts: int = 0

    def add_error(self, message: str) -> None:
        self.ok = False
        self.errors.append(message)


def validate_fabric(
    fabric: Fabric,
    require_full_reachability: bool = True,
    enforce_intel_quirk: bool = False,
) -> ValidationReport:
    """Check a fabric against structural and USB-protocol constraints.

    * every disk has a bridge directly upstream;
    * every non-root node has its upstream ports fully wired;
    * no path exceeds 5 hub tiers;
    * worst-case devices per root port stays within 127 (or 15 with the
      Intel quirk enforced);
    * every disk reaches >= 2 hosts (or *all* hosts when
      ``require_full_reachability``).
    """
    report = ValidationReport()
    if not fabric.disks:
        report.add_error("fabric has no disks")
    if not fabric.host_ports:
        report.add_error("fabric has no host ports")
    if report.errors:
        return report

    for node_id, node in fabric.nodes.items():
        if node.kind is NodeKind.HOST_PORT:
            continue
        expected = 2 if node.kind is NodeKind.SWITCH else 1
        actual = len(fabric.upstreams(node_id))
        if actual != expected:
            report.add_error(
                f"{node_id!r} has {actual} upstream(s); expected {expected}"
            )

    for disk in fabric.disks:
        ups = fabric.upstreams(disk.node_id)
        if ups and fabric.node(ups[0]).kind is not NodeKind.BRIDGE:
            report.add_error(f"disk {disk.node_id!r} is not behind a bridge")

    num_hosts = len(fabric.hosts())
    min_reach = num_hosts if num_hosts else 0
    for disk in fabric.disks:
        paths = fabric.paths(disk.node_id)
        if not paths:
            report.add_error(f"disk {disk.node_id!r} reaches no host port")
            continue
        depth = max(
            sum(1 for n in p.nodes if fabric.node(n).kind is NodeKind.HUB)
            for p in paths
        )
        report.max_hub_depth = max(report.max_hub_depth, depth)
        if depth > USB_MAX_HUB_TIERS:
            report.add_error(
                f"disk {disk.node_id!r} sits below {depth} hub tiers "
                f"(USB allows {USB_MAX_HUB_TIERS})"
            )
        reach = len(fabric.reachable_hosts(disk.node_id, respect_failures=False))
        min_reach = min(min_reach, reach)
        if require_full_reachability and reach < num_hosts:
            report.add_error(
                f"disk {disk.node_id!r} reaches only {reach}/{num_hosts} hosts"
            )
        elif reach < 2:
            report.add_error(
                f"disk {disk.node_id!r} reaches a single host: no failover path"
            )
    report.min_reachable_hosts = min_reach

    # Worst-case device census per root port: each bridge (the disk's
    # USB mass-storage identity) and hub that *could* route to the port
    # counts as one device; switches are transparent to USB enumeration
    # (§IV-E) and the disk itself sits behind the bridge.
    limit = INTEL_XHCI_DEVICE_LIMIT if enforce_intel_quirk else USB_MAX_DEVICES_PER_TREE
    for port in fabric.host_ports:
        members = set()
        for disk in fabric.disks:
            for path in fabric.paths(disk.node_id):
                if path.host_port_id != port.node_id:
                    continue
                for node_id in path.nodes[:-1]:
                    if fabric.node(node_id).kind in (NodeKind.BRIDGE, NodeKind.HUB):
                        members.add(node_id)
        count = len(members)
        report.worst_case_devices_per_port[port.node_id] = count
        if count > limit:
            message = (
                f"port {port.node_id!r} can see up to {count} USB devices; "
                f"limit {limit}"
            )
            if enforce_intel_quirk and count <= USB_MAX_DEVICES_PER_TREE:
                report.warnings.append(message + " (Intel xHCI quirk)")
            else:
                report.add_error(message)
    return report
