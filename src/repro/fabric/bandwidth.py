"""Bandwidth sharing across the USB fat tree (reproduces Figure 5).

USB 3.0 SuperSpeed is full duplex: ~5 Gb/s each way with 8b/10b
encoding, which the prototype measures as ~300 MB/s of realizable
one-direction payload per root port and ~540 MB/s total when reads and
writes run simultaneously (§VII-A).  Small transfers saturate the host
controller's command rate before they saturate bytes: the prototype's
4 KB curves flatten around 8 disks (~45 k IO/s per root port).

The model computes the max-min fair allocation of flow rates subject to
three families of linear constraints, using progressive filling:

* per link and direction: ``sum(rates) <= per_direction_capacity``;
* per link: ``sum(all rates) <= duplex_capacity``;
* per root port: ``sum(rate / io_size) <= root_iops_limit``;
* per flow: ``rate <= demand`` (the disk-limited rate from
  :class:`repro.disk.model.DiskModel`).

The paper observes that bandwidth is shared evenly among disks on a
host — exactly the max-min solution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fabric.topology import Fabric
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry

__all__ = ["BandwidthModel", "Flow", "FlowAllocation"]

#: Realizable one-direction payload on a USB 3.0 link (calibrated: the
#: paper's root hub tops out "around 300MB/s").
DEFAULT_PER_DIRECTION_CAPACITY = 300e6

#: Realizable duplex total (the paper measures 540 MB/s with half
#: reads / half writes on one port).
DEFAULT_DUPLEX_CAPACITY = 540e6

#: Host-controller command rate per root port (calibrated: 4KB
#: sequential curves saturate around 8 disks, ~45k IO/s).
DEFAULT_ROOT_IOPS_LIMIT = 45_000.0


@dataclass(frozen=True)
class Flow:
    """One disk<->host data stream."""

    flow_id: str
    disk_id: str
    demand: float  # bytes/s the disk could sustain alone
    is_read: bool  # read: disk -> host direction
    io_size: int = 4 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.demand < 0:
            raise ValueError(f"negative demand {self.demand}")
        if self.io_size <= 0:
            raise ValueError(f"io_size must be positive, got {self.io_size}")


@dataclass(frozen=True)
class FlowAllocation:
    """Result of the fair-share computation."""

    rates: Dict[str, float]  # flow_id -> bytes/s

    def total(self) -> float:
        return sum(self.rates.values())

    def rate(self, flow_id: str) -> float:
        return self.rates[flow_id]


@dataclass
class _Constraint:
    capacity: float
    members: Dict[int, float]  # flow index -> weight
    label: str = ""  # metric name stem; empty for per-flow demand caps


class BandwidthModel:
    """Max-min fair allocator over a fabric's active topology."""

    def __init__(
        self,
        fabric: Fabric,
        per_direction_capacity: float = DEFAULT_PER_DIRECTION_CAPACITY,
        duplex_capacity: float = DEFAULT_DUPLEX_CAPACITY,
        root_iops_limit: Optional[float] = DEFAULT_ROOT_IOPS_LIMIT,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.fabric = fabric
        self.per_direction_capacity = per_direction_capacity
        self.duplex_capacity = duplex_capacity
        self.root_iops_limit = root_iops_limit
        self.metrics = metrics if metrics is not None else NULL_REGISTRY

    # -- constraint construction ------------------------------------------

    def _flow_links(self, flow: Flow) -> List[Tuple[str, str]]:
        """(child, parent) link pairs on the flow's active path."""
        walk = self.fabric.trace_up(flow.disk_id)
        if not walk or self.fabric.node(walk[-1]).kind.value != "host_port":
            raise ValueError(f"disk {flow.disk_id!r} is not attached to any host")
        return list(zip(walk, walk[1:]))

    def _build_constraints(self, flows: Sequence[Flow]) -> List[_Constraint]:
        directional: Dict[Tuple[str, str, bool], _Constraint] = {}
        duplex: Dict[Tuple[str, str], _Constraint] = {}
        root_iops: Dict[str, _Constraint] = {}
        constraints: List[_Constraint] = []

        for index, flow in enumerate(flows):
            links = self._flow_links(flow)
            for link in links:
                key = (link[0], link[1], flow.is_read)
                cons = directional.get(key)
                if cons is None:
                    direction = "read" if flow.is_read else "write"
                    cons = _Constraint(
                        self.per_direction_capacity,
                        {},
                        label=f"fabric.link.{link[0]}->{link[1]}.{direction}",
                    )
                    directional[key] = cons
                    constraints.append(cons)
                cons.members[index] = 1.0

                dkey = (link[0], link[1])
                dcons = duplex.get(dkey)
                if dcons is None:
                    dcons = _Constraint(
                        self.duplex_capacity,
                        {},
                        label=f"fabric.link.{link[0]}->{link[1]}.duplex",
                    )
                    duplex[dkey] = dcons
                    constraints.append(dcons)
                dcons.members[index] = 1.0
            if self.root_iops_limit is not None and links:
                root = links[-1][1]
                rcons = root_iops.get(root)
                if rcons is None:
                    rcons = _Constraint(
                        self.root_iops_limit, {}, label=f"fabric.root.{root}.iops"
                    )
                    root_iops[root] = rcons
                    constraints.append(rcons)
                rcons.members[index] = 1.0 / flow.io_size
        return constraints

    # -- progressive filling -------------------------------------------------

    def allocate(self, flows: Sequence[Flow]) -> FlowAllocation:
        """Max-min fair rates for ``flows`` over the current topology."""
        if not flows:
            return FlowAllocation(rates={})
        seen = set()
        for flow in flows:
            if flow.flow_id in seen:
                raise ValueError(f"duplicate flow id {flow.flow_id!r}")
            seen.add(flow.flow_id)

        constraints = self._build_constraints(flows)
        n = len(flows)
        rates = [0.0] * n
        frozen = [False] * n

        # Demand caps as single-member constraints.
        for i, flow in enumerate(flows):
            constraints.append(_Constraint(flow.demand, {i: 1.0}))

        for _ in range(n + len(constraints)):
            active = [i for i in range(n) if not frozen[i]]
            if not active:
                break
            # Largest uniform increment t such that every constraint holds
            # when all active flows rise by t together.
            best_t = float("inf")
            binding: List[_Constraint] = []
            for cons in constraints:
                used = sum(cons.members.get(i, 0.0) * rates[i] for i in cons.members)
                weight = sum(w for i, w in cons.members.items() if not frozen[i])
                if weight <= 0.0:
                    continue
                t = (cons.capacity - used) / weight
                if t < best_t - 1e-12:
                    best_t = t
                    binding = [cons]
                elif abs(t - best_t) <= 1e-12:
                    binding.append(cons)
            if not binding:
                break
            best_t = max(best_t, 0.0)
            for i in active:
                rates[i] += best_t
            for cons in binding:
                for i in cons.members:
                    frozen[i] = True

        if self.metrics.enabled:
            self._record_utilisation(constraints, rates)
        return FlowAllocation(
            rates={flow.flow_id: rates[i] for i, flow in enumerate(flows)}
        )

    def _record_utilisation(
        self, constraints: Sequence[_Constraint], rates: Sequence[float]
    ) -> None:
        """Per-link/root gauges from the final allocation (0..1 of cap)."""
        allocations = self.metrics.counter("fabric.allocations")
        allocations.inc()
        for cons in constraints:
            if not cons.label:
                continue  # per-flow demand caps carry no metric name
            used = sum(weight * rates[i] for i, weight in cons.members.items())
            util = used / cons.capacity if cons.capacity > 0 else 0.0
            self.metrics.gauge(f"{cons.label}.util").set(util)

    # -- convenience -----------------------------------------------------------

    def aggregate_throughput(self, flows: Sequence[Flow]) -> float:
        """Total bytes/s delivered for ``flows``."""
        return self.allocate(flows).total()
