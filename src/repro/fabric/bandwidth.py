"""Bandwidth sharing across the USB fat tree (reproduces Figure 5).

USB 3.0 SuperSpeed is full duplex: ~5 Gb/s each way with 8b/10b
encoding, which the prototype measures as ~300 MB/s of realizable
one-direction payload per root port and ~540 MB/s total when reads and
writes run simultaneously (§VII-A).  Small transfers saturate the host
controller's command rate before they saturate bytes: the prototype's
4 KB curves flatten around 8 disks (~45 k IO/s per root port).

The model computes the max-min fair allocation of flow rates subject to
three families of linear constraints, using progressive filling:

* per link and direction: ``sum(rates) <= per_direction_capacity``;
* per link: ``sum(all rates) <= duplex_capacity``;
* per root port: ``sum(rate / io_size) <= root_iops_limit``;
* per flow: ``rate <= demand`` (the disk-limited rate from
  :class:`repro.disk.model.DiskModel`).

The paper observes that bandwidth is shared evenly among disks on a
host — exactly the max-min solution.

Rack-scale fast path
--------------------

The allocator is built for repeated evaluation over large fabrics
(see ``repro.fabric.builders.rack_fabric`` and the ``alloc_scale``
benchmark):

* constraint *skeletons* (everything except per-flow demands) are
  memoized per ``(fabric epoch, flow signature)`` — a switch turn,
  failure, repair or wiring change bumps the epoch and invalidates
  them, and disk paths come from the fabric's epoch-cached
  :meth:`~repro.fabric.topology.Fabric.active_path`;
* progressive filling is *incremental*: every constraint carries
  running ``used`` / ``active_weight`` sums updated as flows freeze,
  and the next binding constraint is found through a lazy min-heap of
  water-level bounds (bounds only rise as flows freeze, so stale heap
  entries are simply skipped) instead of resumming every member of
  every constraint each round;
* :class:`AllocationSession` adds an "only these flows changed" fast
  path for workloads that add or remove one flow at a time.

:meth:`BandwidthModel.allocate_naive` retains the original
resum-everything algorithm as an in-package baseline for the
``alloc_scale`` speedup benchmark; the independent correctness oracle
lives in the test tree (``tests/reference_alloc.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heapify, heappop, heappush
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.fabric.topology import Fabric
from repro.obs.metrics import NULL_REGISTRY, Counter, Gauge, MetricsRegistry
from repro.obs.trace import NULL_TRACER, RequestTracer
from repro.units import MB, Bytes, BytesPerSec, MiB

__all__ = ["AllocationSession", "BandwidthModel", "Flow", "FlowAllocation"]

#: Realizable one-direction payload on a USB 3.0 link (calibrated: the
#: paper's root hub tops out "around 300MB/s").
DEFAULT_PER_DIRECTION_CAPACITY = BytesPerSec(300.0 * MB)

#: Realizable duplex total (the paper measures 540 MB/s with half
#: reads / half writes on one port).
DEFAULT_DUPLEX_CAPACITY = BytesPerSec(540.0 * MB)

#: Host-controller command rate per root port (calibrated: 4KB
#: sequential curves saturate around 8 disks, ~45k IO/s).
DEFAULT_ROOT_IOPS_LIMIT = 45_000.0

#: Relative tolerance for "these constraints bind at the same water
#: level" ties.  Shared with the test-tree reference implementation so
#: both classify borderline rounds identically.
TIE_REL_TOL = 1e-9

_INF = float("inf")


@dataclass(frozen=True)
class Flow:
    """One disk<->host data stream."""

    flow_id: str
    disk_id: str
    demand: BytesPerSec  # what the disk could sustain alone
    is_read: bool  # read: disk -> host direction
    io_size: Bytes = Bytes(4 * MiB)

    def __post_init__(self) -> None:
        if self.demand < 0:
            raise ValueError(f"negative demand {self.demand}")
        if self.io_size <= 0:
            raise ValueError(f"io_size must be positive, got {self.io_size}")


@dataclass(frozen=True)
class FlowAllocation:
    """Result of the fair-share computation."""

    rates: Dict[str, float]  # flow_id -> bytes/s

    def total(self) -> float:
        return sum(self.rates.values())

    def rate(self, flow_id: str) -> float:
        return self.rates[flow_id]


class _Constraint:
    """One capacity constraint of the cached skeleton.

    ``members`` maps flow index -> weight as a flat list for fast
    iteration; ``gauge`` caches the utilisation gauge handle so
    armed-metrics runs don't rebuild the metric name string (and
    re-hash the registry) on every allocation.
    """

    __slots__ = ("capacity", "label", "members", "gauge")

    def __init__(self, capacity: float, label: str) -> None:
        self.capacity = capacity
        self.label = label
        self.members: List[Tuple[int, float]] = []
        self.gauge: Optional[Gauge] = None


#: A skeleton: the constraints plus, per flow index, that flow's
#: memberships as (constraint index, weight) pairs.
_Skeleton = Tuple[List[_Constraint], List[List[Tuple[int, float]]]]


def _progressive_fill(
    n: int,
    demands: Sequence[float],
    constraints: Sequence[_Constraint],
    flow_cons: Sequence[Sequence[Tuple[int, float]]],
) -> Tuple[List[float], List[float]]:
    """Incremental max-min water filling.

    Returns ``(rates, used)`` where ``used[c]`` is the capacity consumed
    on constraint ``c`` by the final rates.

    Invariants (documented in DESIGN.md §8):

    * every still-active flow sits at the common water level ``L``;
    * per constraint, ``used + active_weight * L <= capacity`` with
      ``used``/``active_weight`` maintained incrementally as flows
      freeze — never resummed;
    * a constraint's bound ``(capacity - used) / active_weight`` is
      non-decreasing as flows freeze, so the lazy heap never hides a
      lower bound behind a stale entry.
    """
    rates = [0.0] * n
    frozen = [False] * n
    m = len(constraints)
    used = [0.0] * m  # capacity consumed by frozen members
    active_weight = [0.0] * m
    active_count = [0] * m
    version = [0] * m

    heap: List[Tuple[float, int, int]] = []
    for c in range(m):
        weight = 0.0
        count = 0
        for _index, w in constraints[c].members:
            weight += w
            count += 1
        active_weight[c] = weight
        active_count[c] = count
        if count and weight > 0.0:
            heap.append((constraints[c].capacity / weight, c, 0))
    heapify(heap)

    by_demand = sorted(range(n), key=lambda i: (demands[i], i))
    ptr = 0
    remaining = n
    level = 0.0

    while remaining:
        # Next binding constraint bound (skip stale lazy-heap entries).
        while heap and heap[0][2] != version[heap[0][1]]:
            heappop(heap)
        cons_bound = heap[0][0] if heap else _INF
        # Next demand cap.
        while ptr < n and frozen[by_demand[ptr]]:
            ptr += 1
        demand_bound = demands[by_demand[ptr]] if ptr < n else _INF

        best = cons_bound if cons_bound <= demand_bound else demand_bound
        if best == _INF:
            break
        if best > level:
            level = best
        scale = abs(best)
        cutoff = best + TIE_REL_TOL * (scale if scale > 1.0 else 1.0)

        newly: List[int] = []
        while ptr < n:
            i = by_demand[ptr]
            if frozen[i]:
                ptr += 1
            elif demands[i] <= cutoff:
                frozen[i] = True
                newly.append(i)
                ptr += 1
            else:
                break
        while heap:
            bound, c, v = heap[0]
            if v != version[c]:
                heappop(heap)
            elif bound <= cutoff:
                heappop(heap)
                for i, _w in constraints[c].members:
                    if not frozen[i]:
                        frozen[i] = True
                        newly.append(i)
            else:
                break
        if not newly:  # defensive: numerical dead end, stop raising water
            break
        remaining -= len(newly)
        for i in newly:
            rates[i] = level
            for c, w in flow_cons[i]:
                used[c] += w * level
                count = active_count[c] - 1
                active_count[c] = count
                version[c] += 1
                if count:
                    weight = active_weight[c] - w
                    active_weight[c] = weight
                    if weight > 0.0:
                        heappush(
                            heap,
                            ((constraints[c].capacity - used[c]) / weight, c, version[c]),
                        )
                else:
                    active_weight[c] = 0.0
    return rates, used


class BandwidthModel:
    """Max-min fair allocator over a fabric's active topology."""

    def __init__(
        self,
        fabric: Fabric,
        per_direction_capacity: BytesPerSec = DEFAULT_PER_DIRECTION_CAPACITY,
        duplex_capacity: BytesPerSec = DEFAULT_DUPLEX_CAPACITY,
        root_iops_limit: Optional[float] = DEFAULT_ROOT_IOPS_LIMIT,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional["RequestTracer"] = None,
    ):
        self.fabric = fabric
        self.per_direction_capacity = per_direction_capacity
        self.duplex_capacity = duplex_capacity
        self.root_iops_limit = root_iops_limit
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._allocations_counter: Optional[Counter] = None
        # Constraint skeletons memoized per (topology epoch, flow
        # signature); see _build_constraints.
        self._skeleton_cache: Dict[Tuple[Tuple[str, bool, int], ...], _Skeleton] = {}
        self._skeleton_epoch = -1

    # -- constraint construction ------------------------------------------

    def _flow_path(self, flow: Flow) -> Tuple[str, ...]:
        """Node ids on the flow's active path, ending at a host port."""
        walk = self.fabric.active_path(flow.disk_id)
        if not walk or self.fabric.node(walk[-1]).kind.value != "host_port":
            raise ValueError(f"disk {flow.disk_id!r} is not attached to any host")
        return walk

    def _build_constraints(self, flows: Sequence[Flow]) -> _Skeleton:
        """The cached constraint skeleton for ``flows``.

        The skeleton contains every shared constraint (directional,
        duplex, root IOPS) but not the per-flow demand caps, which
        depend on demand values and are applied directly by the filling
        loop.  Cached per topology epoch and per flow signature
        ``(disk_id, is_read, io_size)``; callers must not mutate it.
        """
        epoch = self.fabric.epoch
        if self._skeleton_epoch != epoch:
            self._skeleton_cache.clear()
            self._skeleton_epoch = epoch
        signature = tuple((f.disk_id, f.is_read, f.io_size) for f in flows)
        skeleton = self._skeleton_cache.get(signature)
        if skeleton is None:
            if len(self._skeleton_cache) >= 128:
                self._skeleton_cache.clear()
            skeleton = self._build_skeleton_uncached(flows)
            self._skeleton_cache[signature] = skeleton
        return skeleton

    def _build_skeleton_uncached(self, flows: Sequence[Flow]) -> _Skeleton:
        directional: Dict[Tuple[str, str, bool], int] = {}
        duplex: Dict[Tuple[str, str], int] = {}
        root_iops: Dict[str, int] = {}
        constraints: List[_Constraint] = []
        flow_cons: List[List[Tuple[int, float]]] = []
        iops_limit = self.root_iops_limit

        for index, flow in enumerate(flows):
            memberships: List[Tuple[int, float]] = []
            walk = self._flow_path(flow)
            is_read = flow.is_read
            prev = walk[0]
            for node in walk[1:]:
                key = (prev, node, is_read)
                cidx = directional.get(key)
                if cidx is None:
                    cidx = len(constraints)
                    direction = "read" if is_read else "write"
                    constraints.append(
                        _Constraint(
                            self.per_direction_capacity,
                            f"fabric.link.{prev}->{node}.{direction}",
                        )
                    )
                    directional[key] = cidx
                constraints[cidx].members.append((index, 1.0))
                memberships.append((cidx, 1.0))

                dkey = (prev, node)
                didx = duplex.get(dkey)
                if didx is None:
                    didx = len(constraints)
                    constraints.append(
                        _Constraint(
                            self.duplex_capacity,
                            f"fabric.link.{prev}->{node}.duplex",
                        )
                    )
                    duplex[dkey] = didx
                constraints[didx].members.append((index, 1.0))
                memberships.append((didx, 1.0))
                prev = node
            if iops_limit is not None and len(walk) > 1:
                root = walk[-1]
                ridx = root_iops.get(root)
                if ridx is None:
                    ridx = len(constraints)
                    constraints.append(
                        _Constraint(iops_limit, f"fabric.root.{root}.iops")
                    )
                    root_iops[root] = ridx
                weight = 1.0 / flow.io_size
                constraints[ridx].members.append((index, weight))
                memberships.append((ridx, weight))
            flow_cons.append(memberships)
        return constraints, flow_cons

    # -- progressive filling -------------------------------------------------

    def allocate(self, flows: Sequence[Flow]) -> FlowAllocation:
        """Max-min fair rates for ``flows`` over the current topology."""
        if not flows:
            return FlowAllocation(rates={})
        seen = set()
        for flow in flows:
            if flow.flow_id in seen:
                raise ValueError(f"duplicate flow id {flow.flow_id!r}")
            seen.add(flow.flow_id)

        constraints, flow_cons = self._build_constraints(flows)
        demands = [flow.demand for flow in flows]
        rates, used = _progressive_fill(len(flows), demands, constraints, flow_cons)

        if self.metrics.enabled:
            self._record_utilisation(constraints, used)
        if self.tracer.enabled:
            self._trace_throttled(flows, rates)
        return FlowAllocation(
            rates={flow.flow_id: rates[i] for i, flow in enumerate(flows)}
        )

    def session(self, flows: Iterable[Flow] = ()) -> "AllocationSession":
        """An :class:`AllocationSession` seeded with ``flows``."""
        return AllocationSession(self, flows)

    # -- naive baseline ----------------------------------------------------

    def allocate_naive(self, flows: Sequence[Flow]) -> FlowAllocation:
        """The pre-optimization allocator, kept as a benchmark baseline.

        Re-traces every disk path and rebuilds every constraint on each
        call, then runs progressive filling by resumming every
        constraint's members every round.  Semantically identical to
        :meth:`allocate` (same tie tolerance); used by the
        ``alloc_scale`` benchmark to measure the speedup, and by tests
        as a second oracle next to ``tests/reference_alloc.py``.
        """
        if not flows:
            return FlowAllocation(rates={})
        seen = set()
        for flow in flows:
            if flow.flow_id in seen:
                raise ValueError(f"duplicate flow id {flow.flow_id!r}")
            seen.add(flow.flow_id)

        # Uncached path walks + fresh constraints: the honest baseline.
        directional: Dict[Tuple[str, str, bool], _Constraint] = {}
        duplex: Dict[Tuple[str, str], _Constraint] = {}
        root_iops: Dict[str, _Constraint] = {}
        constraints: List[_Constraint] = []
        for index, flow in enumerate(flows):
            walk = self.fabric._trace_up_uncached(flow.disk_id, True)
            if not walk or self.fabric.node(walk[-1]).kind.value != "host_port":
                raise ValueError(f"disk {flow.disk_id!r} is not attached to any host")
            links = list(zip(walk, walk[1:]))
            for link in links:
                key = (link[0], link[1], flow.is_read)
                cons = directional.get(key)
                if cons is None:
                    direction = "read" if flow.is_read else "write"
                    cons = _Constraint(
                        self.per_direction_capacity,
                        f"fabric.link.{link[0]}->{link[1]}.{direction}",
                    )
                    directional[key] = cons
                    constraints.append(cons)
                cons.members.append((index, 1.0))

                dkey = (link[0], link[1])
                dcons = duplex.get(dkey)
                if dcons is None:
                    dcons = _Constraint(
                        self.duplex_capacity,
                        f"fabric.link.{link[0]}->{link[1]}.duplex",
                    )
                    duplex[dkey] = dcons
                    constraints.append(dcons)
                dcons.members.append((index, 1.0))
            if self.root_iops_limit is not None and links:
                root = links[-1][1]
                rcons = root_iops.get(root)
                if rcons is None:
                    rcons = _Constraint(
                        self.root_iops_limit, f"fabric.root.{root}.iops"
                    )
                    root_iops[root] = rcons
                    constraints.append(rcons)
                rcons.members.append((index, 1.0 / flow.io_size))
        # Demand caps as single-member constraints.
        for i, flow in enumerate(flows):
            cons = _Constraint(flow.demand, "")
            cons.members.append((i, 1.0))
            constraints.append(cons)

        n = len(flows)
        rates = [0.0] * n
        frozen = [False] * n
        level = 0.0
        for _ in range(n + len(constraints)):
            if all(frozen):
                break
            best = _INF
            for cons in constraints:
                used = 0.0
                weight = 0.0
                for i, w in cons.members:
                    used += w * rates[i]
                    if not frozen[i]:
                        weight += w
                if weight <= 0.0:
                    continue
                bound = (cons.capacity - used) / weight
                if bound < best:
                    best = bound
            if best == _INF:
                break
            if best > level:
                level = best
            scale = abs(best)
            cutoff = best + TIE_REL_TOL * (scale if scale > 1.0 else 1.0)
            progressed = False
            for cons in constraints:
                used = 0.0
                weight = 0.0
                for i, w in cons.members:
                    used += w * rates[i]
                    if not frozen[i]:
                        weight += w
                if weight <= 0.0:
                    continue
                if (cons.capacity - used) / weight <= cutoff:
                    for i, _w in cons.members:
                        if not frozen[i]:
                            frozen[i] = True
                            rates[i] = level
                            progressed = True
            if not progressed:
                break
        return FlowAllocation(
            rates={flow.flow_id: rates[i] for i, flow in enumerate(flows)}
        )

    # -- metrics -----------------------------------------------------------

    def _record_utilisation(
        self, constraints: Sequence[_Constraint], used: Sequence[float]
    ) -> None:
        """Per-link/root gauges from the final allocation (0..1 of cap)."""
        counter = self._allocations_counter
        if counter is None:
            counter = self._allocations_counter = self.metrics.counter(
                "fabric.allocations"
            )
        counter.inc()
        for c, cons in enumerate(constraints):
            util = used[c] / cons.capacity if cons.capacity > 0 else 0.0
            gauge = cons.gauge
            if gauge is None:
                gauge = cons.gauge = self.metrics.gauge(f"{cons.label}.util")
            gauge.set(util)

    def _trace_throttled(
        self, flows: Sequence[Flow], rates: Sequence[float]
    ) -> None:
        """Emit one instant when the fabric caps any flow below demand."""
        throttled = 0
        shortfall = 0.0
        for i, flow in enumerate(flows):
            gap = flow.demand - rates[i]
            if gap > 1e-9:
                throttled += 1
                shortfall += gap
        if throttled:
            self.tracer.instant(
                "fabric.throttled",
                flows=len(flows),
                throttled=throttled,
                shortfall_bytes_per_s=shortfall,
            )

    # -- convenience -----------------------------------------------------------

    def aggregate_throughput(self, flows: Sequence[Flow]) -> float:
        """Total bytes/s delivered for ``flows``."""
        return self.allocate(flows).total()


class _SessionConstraint:
    __slots__ = ("capacity", "label", "members")

    def __init__(self, capacity: float, label: str) -> None:
        self.capacity = capacity
        self.label = label
        self.members: Dict[str, float] = {}


class AllocationSession:
    """Flow-churn fast path: reuse constraint structure across calls.

    For workloads that add or remove one flow at a time (the "only
    these flows changed" case), a session maintains the shared
    constraints incrementally — :meth:`add_flow` traces one path and
    touches only that flow's constraints; :meth:`remove_flow` detaches
    only that flow's memberships — instead of rebuilding the skeleton
    from every flow.  The max-min *filling* itself is always global (a
    single flow change can shift every rate), so :meth:`allocate`
    reruns the incremental filling over the maintained structure.

    A topology-epoch change invalidates the session: the next call
    re-traces every flow's path transparently.
    """

    def __init__(self, model: BandwidthModel, flows: Iterable[Flow] = ()) -> None:
        self.model = model
        self._flows: Dict[str, Flow] = {}
        self._memberships: Dict[str, List[Tuple[Tuple, float]]] = {}
        self._constraints: Dict[Tuple, _SessionConstraint] = {}
        self._epoch = model.fabric.epoch
        self._materialized: Optional[Tuple[List[Flow], List[_Constraint], List[List[Tuple[int, float]]]]] = None
        for flow in flows:
            self.add_flow(flow)

    def __len__(self) -> int:
        return len(self._flows)

    def _resync(self) -> None:
        epoch = self.model.fabric.epoch
        if epoch == self._epoch:
            return
        flows = list(self._flows.values())
        self._flows.clear()
        self._memberships.clear()
        self._constraints.clear()
        self._materialized = None
        self._epoch = epoch
        for flow in flows:
            self._attach(flow)

    def _attach(self, flow: Flow) -> None:
        model = self.model
        walk = model._flow_path(flow)
        memberships: List[Tuple[Tuple, float]] = []
        prev = walk[0]
        for node in walk[1:]:
            key = ("dir", prev, node, flow.is_read)
            cons = self._constraints.get(key)
            if cons is None:
                direction = "read" if flow.is_read else "write"
                cons = _SessionConstraint(
                    model.per_direction_capacity,
                    f"fabric.link.{prev}->{node}.{direction}",
                )
                self._constraints[key] = cons
            cons.members[flow.flow_id] = 1.0
            memberships.append((key, 1.0))

            dkey = ("dup", prev, node)
            dcons = self._constraints.get(dkey)
            if dcons is None:
                dcons = _SessionConstraint(
                    model.duplex_capacity, f"fabric.link.{prev}->{node}.duplex"
                )
                self._constraints[dkey] = dcons
            dcons.members[flow.flow_id] = 1.0
            memberships.append((dkey, 1.0))
            prev = node
        if model.root_iops_limit is not None and len(walk) > 1:
            rkey = ("iops", walk[-1])
            rcons = self._constraints.get(rkey)
            if rcons is None:
                rcons = _SessionConstraint(
                    model.root_iops_limit, f"fabric.root.{walk[-1]}.iops"
                )
                self._constraints[rkey] = rcons
            weight = 1.0 / flow.io_size
            rcons.members[flow.flow_id] = weight
            memberships.append((rkey, weight))
        self._flows[flow.flow_id] = flow
        self._memberships[flow.flow_id] = memberships
        self._materialized = None

    def add_flow(self, flow: Flow) -> None:
        self._resync()
        if flow.flow_id in self._flows:
            raise ValueError(f"duplicate flow id {flow.flow_id!r}")
        self._attach(flow)

    def remove_flow(self, flow_id: str) -> Flow:
        self._resync()
        flow = self._flows.pop(flow_id, None)
        if flow is None:
            raise KeyError(flow_id)
        for key, _weight in self._memberships.pop(flow_id):
            cons = self._constraints[key]
            del cons.members[flow_id]
            if not cons.members:
                del self._constraints[key]
        self._materialized = None
        return flow

    def allocate(self) -> FlowAllocation:
        """Max-min fair rates for the session's current flow set."""
        self._resync()
        if not self._flows:
            return FlowAllocation(rates={})
        if self._materialized is None:
            flows = list(self._flows.values())
            index_of = {flow.flow_id: i for i, flow in enumerate(flows)}
            constraints: List[_Constraint] = []
            flow_cons: List[List[Tuple[int, float]]] = [[] for _ in flows]
            # Sorted keys: deterministic constraint order independent of
            # the add/remove history that produced the session state.
            for key in sorted(self._constraints):
                cons = self._constraints[key]
                built = _Constraint(cons.capacity, cons.label)
                cidx = len(constraints)
                for flow_id in sorted(cons.members):
                    weight = cons.members[flow_id]
                    built.members.append((index_of[flow_id], weight))
                    flow_cons[index_of[flow_id]].append((cidx, weight))
                constraints.append(built)
            self._materialized = (flows, constraints, flow_cons)
        flows, constraints, flow_cons = self._materialized
        demands = [flow.demand for flow in flows]
        rates, used = _progressive_fill(len(flows), demands, constraints, flow_cons)
        if self.model.metrics.enabled:
            self.model._record_utilisation(constraints, used)
        if self.model.tracer.enabled:
            self.model._trace_throttled(flows, rates)
        return FlowAllocation(
            rates={flow.flow_id: rates[i] for i, flow in enumerate(flows)}
        )
