"""Component types of the UStore interconnect fabric.

The fabric (paper §III) is built from two primitives:

* **hubs** — aggregation devices with a fan-in of ``k`` downstream ports
  and one upstream port;
* **switches** — 2:1 multiplexers that connect their single downstream
  port to one of two upstream ports, selected by a control signal.

Leaves are hard disks behind SATA-to-USB **bridges**; roots are **host
ports** (USB 3.0 root ports on the deploy unit's host servers).

Components carry a ``failed`` flag; connectivity and path logic live in
:mod:`repro.fabric.topology`.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

__all__ = [
    "Bridge",
    "DiskNode",
    "FabricError",
    "FabricNode",
    "HostPort",
    "Hub",
    "NodeKind",
    "Switch",
]


class FabricError(Exception):
    """Raised for structural violations of the fabric."""


class NodeKind(enum.Enum):
    HOST_PORT = "host_port"
    HUB = "hub"
    SWITCH = "switch"
    BRIDGE = "bridge"
    DISK = "disk"


class FabricNode:
    """Base class for all fabric components.

    Routing-relevant state changes (failure, repair, switch turns) are
    reported to the owning :class:`~repro.fabric.topology.Fabric`
    through ``_topology_listener`` so the fabric can invalidate its
    path/constraint caches (the topology *epoch*).  The listener is
    installed by ``Fabric.add``; a node belongs to one fabric.
    """

    kind: NodeKind

    def __init__(self, node_id: str):
        if not node_id:
            raise FabricError("node_id must be non-empty")
        self.node_id = node_id
        self.failed = False
        self._topology_listener: Optional[Callable[[], None]] = None

    def _topology_changed(self) -> None:
        listener = self._topology_listener
        if listener is not None:
            listener()

    def fail(self) -> None:
        self.failed = True
        self._topology_changed()

    def repair(self) -> None:
        self.failed = False
        self._topology_changed()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = " FAILED" if self.failed else ""
        return f"<{type(self).__name__} {self.node_id}{flag}>"


class HostPort(FabricNode):
    """A root of the fabric: one USB 3.0 root port on a host server."""

    kind = NodeKind.HOST_PORT

    def __init__(self, node_id: str, host_id: str):
        super().__init__(node_id)
        if not host_id:
            raise FabricError("host_id must be non-empty")
        self.host_id = host_id


class Hub(FabricNode):
    """An aggregation device with ``fan_in`` downstream ports."""

    kind = NodeKind.HUB

    def __init__(self, node_id: str, fan_in: int = 4):
        super().__init__(node_id)
        if fan_in < 1:
            raise FabricError(f"hub fan-in must be >= 1, got {fan_in}")
        self.fan_in = fan_in


class Switch(FabricNode):
    """A 2:1 multiplexer; ``state`` selects upstream 0 or 1."""

    kind = NodeKind.SWITCH
    NUM_UPSTREAMS = 2

    def __init__(self, node_id: str, state: int = 0):
        super().__init__(node_id)
        self._state = 0
        self.state = state
        self.turn_count = 0

    @property
    def state(self) -> int:
        return self._state

    @state.setter
    def state(self, value: int) -> None:
        if value not in (0, 1):
            raise FabricError(f"switch state must be 0 or 1, got {value!r}")
        if value != self._state:
            self._state = value
            self._topology_changed()

    def turn(self, new_state: Optional[int] = None) -> int:
        """Set (or toggle) the switch state; returns the new state."""
        self.state = (1 - self._state) if new_state is None else new_state
        self.turn_count += 1
        return self._state


class Bridge(FabricNode):
    """A SATA-to-USB 3.0 bridge chip (one per disk enclosure)."""

    kind = NodeKind.BRIDGE


class DiskNode(FabricNode):
    """A leaf of the fabric: the position of one hard disk."""

    kind = NodeKind.DISK
