"""The interconnect fabric graph and path routing.

A :class:`Fabric` is a DAG whose leaves are disks and whose roots are
host ports.  Every non-root component has exactly one upstream edge,
except switches which have two (the active one is selected by the switch
state).  Any assignment of switch states therefore partitions the fabric
into non-overlapping trees, each rooted at one host port — exactly the
property the paper relies on (§III-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.fabric.components import (
    Bridge,
    DiskNode,
    FabricError,
    FabricNode,
    HostPort,
    Hub,
    NodeKind,
    Switch,
)

__all__ = ["Fabric", "Path", "SwitchSetting"]


@dataclass(frozen=True)
class SwitchSetting:
    """A switch together with the state a path requires of it."""

    switch_id: str
    state: int


@dataclass(frozen=True)
class Path:
    """One upward path from a disk to a host port."""

    disk_id: str
    host_port_id: str
    host_id: str
    nodes: Tuple[str, ...]
    settings: Tuple[SwitchSetting, ...] = field(default_factory=tuple)

    def requires(self, switch_id: str) -> Optional[int]:
        """State this path requires of ``switch_id``, or None if unused."""
        for setting in self.settings:
            if setting.switch_id == switch_id:
                return setting.state
        return None


class Fabric:
    """Mutable interconnect fabric: components plus upstream wiring."""

    def __init__(self, name: str = "fabric"):
        self.name = name
        self.nodes: Dict[str, FabricNode] = {}
        # node_id -> ordered upstream node ids (2 for switches, 1 otherwise)
        self._upstreams: Dict[str, List[str]] = {}
        # node_id -> downstream node ids (derived, kept in sync)
        self._downstreams: Dict[str, List[str]] = {}
        # Topology epoch: bumped on every routing-relevant mutation
        # (wiring, switch turns, failures/repairs).  Consumers key their
        # caches on it — see trace_up and repro.fabric.bandwidth.
        self._epoch = 0
        self._trace_cache: Dict[Tuple[str, bool], Tuple[str, ...]] = {}
        self._trace_cache_epoch = -1

    @property
    def epoch(self) -> int:
        """Monotone counter identifying the current routing state."""
        return self._epoch

    def _bump_epoch(self) -> None:
        self._epoch += 1

    # -- construction ----------------------------------------------------

    def add(self, node: FabricNode) -> FabricNode:
        if node.node_id in self.nodes:
            raise FabricError(f"duplicate node id {node.node_id!r}")
        self.nodes[node.node_id] = node
        self._upstreams[node.node_id] = []
        self._downstreams[node.node_id] = []
        node._topology_listener = self._bump_epoch
        self._bump_epoch()
        return node

    def connect(self, child_id: str, parent_id: str) -> None:
        """Wire ``child``'s next upstream port to ``parent``."""
        child = self._require(child_id)
        parent = self._require(parent_id)
        if child.kind is NodeKind.HOST_PORT:
            raise FabricError("host ports are roots and have no upstream")
        if parent.kind in (NodeKind.DISK,):
            raise FabricError("disks are leaves and accept no downstream")
        limit = Switch.NUM_UPSTREAMS if child.kind is NodeKind.SWITCH else 1
        ups = self._upstreams[child_id]
        if len(ups) >= limit:
            raise FabricError(
                f"{child_id!r} already has {len(ups)} upstream(s); limit {limit}"
            )
        if isinstance(parent, Hub):
            if len(self._downstreams[parent_id]) >= parent.fan_in:
                raise FabricError(f"hub {parent_id!r} fan-in {parent.fan_in} exceeded")
        elif parent.kind in (NodeKind.HOST_PORT, NodeKind.SWITCH, NodeKind.BRIDGE):
            # Host ports, switches and bridges each have a single
            # downstream port.
            if self._downstreams[parent_id]:
                raise FabricError(f"{parent_id!r} downstream port already used")
        ups.append(parent_id)
        self._downstreams[parent_id].append(child_id)
        self._bump_epoch()

    def _require(self, node_id: str) -> FabricNode:
        node = self.nodes.get(node_id)
        if node is None:
            raise FabricError(f"unknown node {node_id!r}")
        return node

    # -- accessors --------------------------------------------------------

    def __contains__(self, node_id: str) -> bool:
        return node_id in self.nodes

    def node(self, node_id: str) -> FabricNode:
        return self._require(node_id)

    def upstreams(self, node_id: str) -> Tuple[str, ...]:
        return tuple(self._upstreams[node_id])

    def downstreams(self, node_id: str) -> Tuple[str, ...]:
        return tuple(self._downstreams[node_id])

    @property
    def disks(self) -> List[DiskNode]:
        return [n for n in self.nodes.values() if isinstance(n, DiskNode)]

    @property
    def host_ports(self) -> List[HostPort]:
        return [n for n in self.nodes.values() if isinstance(n, HostPort)]

    @property
    def hubs(self) -> List[Hub]:
        return [n for n in self.nodes.values() if isinstance(n, Hub)]

    @property
    def switches(self) -> List[Switch]:
        return [n for n in self.nodes.values() if isinstance(n, Switch)]

    @property
    def bridges(self) -> List[Bridge]:
        return [n for n in self.nodes.values() if isinstance(n, Bridge)]

    def hosts(self) -> List[str]:
        seen: List[str] = []
        for port in self.host_ports:
            if port.host_id not in seen:
                seen.append(port.host_id)
        return seen

    def ports_of_host(self, host_id: str) -> List[HostPort]:
        return [p for p in self.host_ports if p.host_id == host_id]

    # -- routing -----------------------------------------------------------

    def active_upstream(self, node_id: str) -> Optional[str]:
        """The currently selected upstream of ``node_id`` (or None)."""
        node = self._require(node_id)
        ups = self._upstreams[node_id]
        if not ups:
            return None
        if isinstance(node, Switch):
            return ups[node.state] if node.state < len(ups) else None
        return ups[0]

    def trace_up(self, disk_id: str, respect_failures: bool = True) -> List[str]:
        """Walk from ``disk_id`` up along the active switch states.

        Returns the node ids visited (starting with the disk).  The walk
        ends at a host port, at a failed component (when
        ``respect_failures``), or at a dead end.  Results are memoized
        per topology epoch; any switch turn, wiring change, failure or
        repair invalidates the cache.
        """
        return list(self.active_path(disk_id, respect_failures))

    def active_path(self, disk_id: str, respect_failures: bool = True) -> Tuple[str, ...]:
        """Epoch-cached :meth:`trace_up` returning a shared tuple.

        Hot-path variant for callers (the bandwidth allocator) that
        re-trace many disks per call: the returned tuple is owned by the
        cache and must not be mutated.
        """
        cache = self._trace_cache
        if self._trace_cache_epoch != self._epoch:
            cache.clear()
            self._trace_cache_epoch = self._epoch
        key = (disk_id, respect_failures)
        walk = cache.get(key)
        if walk is None:
            walk = tuple(self._trace_up_uncached(disk_id, respect_failures))
            cache[key] = walk
        return walk

    def _trace_up_uncached(self, disk_id: str, respect_failures: bool) -> List[str]:
        node = self._require(disk_id)
        visited = [disk_id]
        seen = {disk_id}
        if respect_failures and node.failed:
            return visited
        current = disk_id
        while True:
            nxt = self.active_upstream(current)
            if nxt is None:
                return visited
            if nxt in seen:
                raise FabricError(f"cycle detected through {nxt!r}")
            seen.add(nxt)
            visited.append(nxt)
            if respect_failures and self.nodes[nxt].failed:
                return visited
            if self.nodes[nxt].kind is NodeKind.HOST_PORT:
                return visited
            current = nxt

    def attached_port(self, disk_id: str, respect_failures: bool = True) -> Optional[str]:
        """Host port currently reachable from ``disk_id``, or None."""
        walk = self.active_path(disk_id, respect_failures)
        last = self.nodes[walk[-1]]
        if last.kind is NodeKind.HOST_PORT and not (respect_failures and last.failed):
            return last.node_id
        return None

    def attached_host(self, disk_id: str, respect_failures: bool = True) -> Optional[str]:
        """Host id currently reachable from ``disk_id``, or None."""
        port = self.attached_port(disk_id, respect_failures)
        if port is None:
            return None
        host_port = self.nodes[port]
        assert isinstance(host_port, HostPort)
        return host_port.host_id

    def paths(self, disk_id: str, respect_failures: bool = False) -> List[Path]:
        """All upward disk→host-port paths, enumerating switch branches."""
        self._require(disk_id)
        results: List[Path] = []

        def walk(current: str, nodes: List[str], settings: List[SwitchSetting]) -> None:
            node = self.nodes[current]
            if respect_failures and node.failed:
                return
            if node.kind is NodeKind.HOST_PORT:
                assert isinstance(node, HostPort)
                results.append(
                    Path(
                        disk_id=disk_id,
                        host_port_id=current,
                        host_id=node.host_id,
                        nodes=tuple(nodes),
                        settings=tuple(settings),
                    )
                )
                return
            ups = self._upstreams[current]
            if isinstance(node, Switch):
                for state, parent in enumerate(ups):
                    if parent in nodes:
                        raise FabricError(f"cycle detected through {parent!r}")
                    walk(
                        parent,
                        nodes + [parent],
                        settings + [SwitchSetting(current, state)],
                    )
            elif ups:
                parent = ups[0]
                if parent in nodes:
                    raise FabricError(f"cycle detected through {parent!r}")
                walk(parent, nodes + [parent], settings)

        walk(disk_id, [disk_id], [])
        return results

    def paths_to_host(
        self, disk_id: str, host_id: str, respect_failures: bool = False
    ) -> List[Path]:
        """Paths from ``disk_id`` to any port of ``host_id``."""
        return [
            p for p in self.paths(disk_id, respect_failures) if p.host_id == host_id
        ]

    def get_switch_settings(
        self, disk_id: str, host_id: str, respect_failures: bool = True
    ) -> Tuple[SwitchSetting, ...]:
        """The paper's GETSWITCH(): switch states wiring disk to host.

        When several paths exist, prefer the one needing the fewest
        actual switch turns from the current configuration.  Raises
        :class:`FabricError` when the host is unreachable.
        """
        candidates = self.paths_to_host(disk_id, host_id, respect_failures)
        if not candidates:
            raise FabricError(f"no path from {disk_id!r} to host {host_id!r}")

        def turns_needed(path: Path) -> int:
            return sum(
                1
                for s in path.settings
                if self.nodes[s.switch_id].state != s.state  # type: ignore[union-attr]
            )

        best = min(candidates, key=turns_needed)
        return best.settings

    def reachable_hosts(self, disk_id: str, respect_failures: bool = True) -> List[str]:
        """Hosts reachable from ``disk_id`` under some switch setting."""
        seen: List[str] = []
        for path in self.paths(disk_id, respect_failures):
            if path.host_id not in seen:
                seen.append(path.host_id)
        return seen

    def apply_settings(self, settings: Iterable[SwitchSetting]) -> None:
        """Turn each switch in ``settings`` to its required state."""
        for setting in settings:
            switch = self._require(setting.switch_id)
            if not isinstance(switch, Switch):
                raise FabricError(f"{setting.switch_id!r} is not a switch")
            if switch.state != setting.state:
                switch.turn(setting.state)

    def attachment_map(self, respect_failures: bool = True) -> Dict[str, Optional[str]]:
        """disk id -> currently attached host id (or None)."""
        return {
            d.node_id: self.attached_host(d.node_id, respect_failures)
            for d in self.disks
        }

    def subtree_nodes(self, root_port_id: str) -> List[str]:
        """Nodes currently routed to ``root_port_id`` (active states only)."""
        members: List[str] = []
        for disk in self.disks:
            walk = self.trace_up(disk.node_id, respect_failures=False)
            if walk and walk[-1] == root_port_id:
                for node_id in walk[:-1]:
                    if node_id not in members:
                        members.append(node_id)
        return members

    def hub_depth(self, disk_id: str) -> int:
        """Maximum number of hubs on any path from ``disk_id`` to a root."""
        return max(
            (sum(1 for n in p.nodes if self.nodes[n].kind is NodeKind.HUB) for p in self.paths(disk_id)),
            default=0,
        )
