"""The UStore interconnect fabric: components, topology, switching, sharing."""

from repro.fabric.bandwidth import AllocationSession, BandwidthModel, Flow, FlowAllocation
from repro.fabric.builders import (
    dual_tree_fabric,
    prototype_fabric,
    rack_fabric,
    ring_fabric,
)
from repro.fabric.components import (
    Bridge,
    DiskNode,
    FabricError,
    FabricNode,
    HostPort,
    Hub,
    NodeKind,
    Switch,
)
from repro.fabric.power import FabricPowerModel, FabricPowerParams, hub_power
from repro.fabric.switching import SwitchConflict, SwitchPlan, execute_plan, plan_switches
from repro.fabric.topology import Fabric, Path, SwitchSetting
from repro.fabric.validate import ValidationReport, validate_fabric

__all__ = [
    "AllocationSession",
    "BandwidthModel",
    "Bridge",
    "DiskNode",
    "Fabric",
    "FabricError",
    "FabricNode",
    "FabricPowerModel",
    "FabricPowerParams",
    "Flow",
    "FlowAllocation",
    "HostPort",
    "Hub",
    "NodeKind",
    "Path",
    "Switch",
    "SwitchConflict",
    "SwitchPlan",
    "SwitchSetting",
    "ValidationReport",
    "dual_tree_fabric",
    "execute_plan",
    "hub_power",
    "plan_switches",
    "prototype_fabric",
    "rack_fabric",
    "ring_fabric",
    "validate_fabric",
]
