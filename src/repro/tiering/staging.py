"""Bounded write staging: byte accounting and per-cold-disk queues.

The staging buffer is the hot-tier RAM+log budget for writes that have
been acknowledged at hot latency but not yet demoted to their cold
homes.  It is **bounded**: a write that would push staged bytes past
capacity is refused with :class:`StagingFullError` at admission — the
archival client sees backpressure instead of the gateway silently
growing an unbounded queue (the same reasoning as the weighted-fair
queue's per-tenant depth bound).

Reservations follow the write's life cycle: ``reserve`` at admission,
``release`` either when the object's demotion commits (bytes now live
only in the cold tier) or when the staging write fails.

Per-cold-space FIFO queues remember which staged objects owe a
demotion to which cold disk, so the migration orchestrator can flush
one disk's worth of objects as a single sequential run.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List

__all__ = ["StagingBuffer", "StagingFullError", "TieringError"]

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.tiering.store import TieredObject


class TieringError(Exception):
    """Base class for tiering errors."""


class StagingFullError(TieringError):
    """The bounded staging buffer cannot absorb this write right now."""


class StagingBuffer:
    """Byte-bounded staging accounting plus per-cold-space FIFOs."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("staging capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.staged_bytes = 0
        self.overflows = 0
        self._queues: Dict[str, Deque["TieredObject"]] = {}

    # -- byte accounting --------------------------------------------------

    def reserve(self, size: int) -> None:
        if self.staged_bytes + size > self.capacity_bytes:
            self.overflows += 1
            raise StagingFullError(
                f"staging buffer full: {self.staged_bytes} + {size} "
                f"> {self.capacity_bytes} bytes"
            )
        self.staged_bytes += size

    def release(self, size: int) -> None:
        if size > self.staged_bytes:
            raise TieringError(
                f"releasing {size} bytes but only {self.staged_bytes} staged"
            )
        self.staged_bytes -= size

    # -- demotion queues --------------------------------------------------

    def enqueue(self, obj: "TieredObject") -> None:
        self._queues.setdefault(obj.cold_space, deque()).append(obj)

    def requeue(self, objs: List["TieredObject"]) -> None:
        """Put a failed demotion batch back at the head, order preserved."""
        for obj in reversed(objs):
            self._queues.setdefault(obj.cold_space, deque()).appendleft(obj)

    def pending_bytes(self, space_id: str) -> int:
        return sum(obj.size for obj in self._queues.get(space_id, ()))

    def oldest_written_at(self, space_id: str) -> float:
        """Admission time of the space's FIFO head (``inf`` if empty)."""
        queue = self._queues.get(space_id)
        if not queue:
            return float("inf")
        return queue[0].written_at

    def pending_spaces(self) -> List[str]:
        """Cold spaces owed a demotion, most pending bytes first.

        Ties break on the space id so the orchestrator's pick is
        deterministic under any dict iteration order.
        """
        spaces = [sid for sid in self._queues if self._queues[sid]]
        return sorted(spaces, key=lambda sid: (-self.pending_bytes(sid), sid))

    def take_batch(self, space_id: str, max_bytes: int) -> List["TieredObject"]:
        """Dequeue up to ``max_bytes`` of FIFO-ordered staged objects.

        Always returns at least one object when the queue is non-empty
        (a single object larger than ``max_bytes`` still demotes).
        """
        queue = self._queues.get(space_id)
        if not queue:
            return []
        batch: List["TieredObject"] = []
        total = 0
        while queue:
            head = queue[0]
            if batch and total + head.size > max_bytes:
                break
            batch.append(queue.popleft())
            total += head.size
        return batch

    def reset(self) -> None:
        """Drop all accounting and queues (crash of the tiering node)."""
        self.staged_bytes = 0
        self._queues.clear()
