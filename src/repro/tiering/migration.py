"""Background migration: demotion packed into idle watts.

The orchestrator is the tiering layer's only always-on activity, and
it runs entirely on the kernel's allocation-free deferred-callback
path — one self-rescheduling callable, no Timeout or process object
per check.

Each round it decides whether background data movement is welcome:

* **Cold-read pressure** — if foreground tenants (anyone but the
  migration tenant) have queued work past ``pressure_queue_depth``,
  the round is skipped.  Demotion is deadline-irrelevant; user reads
  are not.
* **Idle watts** — a demotion batch dispatches only when the
  :class:`~repro.gateway.scheduler.PowerAccountant` confirms the
  target cold disk fits under the budget *right now*
  (``can_afford``).  The accountant thereby packs migration into
  otherwise-wasted headroom instead of queueing it against
  foreground spin-ups.

When both gates open, the cold space owed the most bytes flushes one
sequential batch (FIFO within the space), up to
``max_inflight_demotions`` batches in flight.  The same round also
asks the recency policy for idle hot residents and drops their cache
copies (free — the cold copy is authoritative).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

__all__ = ["MigrationOrchestrator", "MigrationStats"]

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.tiering.store import TieredStore


@dataclass
class MigrationStats:
    rounds: int = 0
    #: Rounds skipped because foreground queues were deep.
    pressure_pauses: int = 0
    #: Batch dispatches withheld because the budget had no headroom.
    power_skips: int = 0
    #: Spaces left to accumulate because neither gate (min bytes,
    #: max age) was open yet.
    accumulating_skips: int = 0
    batches_started: int = 0
    evictions: int = 0


class MigrationOrchestrator:
    """Deferred-callback loop driving demotion and cache eviction."""

    def __init__(self, store: "TieredStore") -> None:
        self.store = store
        self.gateway = store.gateway
        self.sim = store.gateway.sim
        self.stats = MigrationStats()
        self._running = False
        metrics = self.sim.metrics
        self._m_rounds = metrics.counter("tiering.migration_rounds")
        self._m_pauses = metrics.counter("tiering.migration_pauses")
        self._m_power_skips = metrics.counter("tiering.migration_power_skips")

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.sim.defer(self.store.config.demotion_check_interval, self._tick)

    def stop(self) -> None:
        """Let the loop lapse at its next firing (idempotent)."""
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        self._round()
        self.sim.defer(self.store.config.demotion_check_interval, self._tick)

    def foreground_depth(self) -> int:
        """Queued plus in-flight requests of every non-migration tenant.

        In-flight work counts: a cold disk actively serving user reads
        is exactly the moment background demotion should stand down.
        """
        depths = self.gateway.queue.depths()
        migration = self.store.config.migration_tenant
        depth = sum(depths[name] for name in depths if name != migration)
        for batch in self.gateway._in_flight.values():
            depth += sum(1 for request in batch if request.tenant != migration)
        return depth

    def _round(self) -> None:
        self.stats.rounds += 1
        self._m_rounds.inc()
        store = self.store
        if self.foreground_depth() > store.config.pressure_queue_depth:
            self.stats.pressure_pauses += 1
            self._m_pauses.inc()
            return
        accountant = self.gateway.power_accountant
        now = self.sim.now
        for space_id in store.staging.pending_spaces():
            if store.inflight_demotions >= store.config.max_inflight_demotions:
                break
            if not self._flush_due(space_id, now):
                self.stats.accumulating_skips += 1
                continue
            disk_id = store._disk_of_space[space_id]
            if not accountant.can_afford(disk_id):
                self.stats.power_skips += 1
                self._m_power_skips.inc()
                continue
            if store.take_demotion_batch(space_id) is not None:
                self.stats.batches_started += 1
        self.stats.evictions += store.evict_idle()

    def _flush_due(self, space_id: str, now: float) -> bool:
        """Batch-discipline gate: flush a space only once it owes
        ``demotion_min_batch_bytes`` or its oldest staged write has
        aged past ``demotion_max_age_seconds`` — one spin-up amortized
        over a run, never paid per trickling object."""
        staging = self.store.staging
        config = self.store.config
        if staging.pending_bytes(space_id) >= config.demotion_min_batch_bytes:
            return True
        return (
            now - staging.oldest_written_at(space_id)
            >= config.demotion_max_age_seconds
        )
