"""Hot/cold tiering: write staging, promotion, background migration.

A small always-spinning hot tier (the gateway's pinned disks) fronts
the power-gated cold deployment.  Archival writes are absorbed by a
bounded staging buffer and acknowledged at hot latency; a background
orchestrator demotes them to their cold homes as single sequential
runs whenever the power accountant has idle watts and foreground
queues are shallow.  Promotion/demotion of read-hot objects follows a
segmented-LRU over gateway-observable accesses — no metadata
database; crash recovery is a media scan (DESIGN.md §14).
"""

from repro.tiering.migration import MigrationOrchestrator, MigrationStats
from repro.tiering.policy import SegmentedLruPolicy
from repro.tiering.staging import StagingBuffer, StagingFullError, TieringError
from repro.tiering.store import (
    ObjectMissingError,
    TierState,
    TieredObject,
    TieredStore,
    TieringConfig,
    TieringStats,
    pinned_disks_for,
)

__all__ = [
    "MigrationOrchestrator",
    "MigrationStats",
    "ObjectMissingError",
    "SegmentedLruPolicy",
    "StagingBuffer",
    "StagingFullError",
    "TierState",
    "TieredObject",
    "TieredStore",
    "TieringConfig",
    "TieringError",
    "TieringStats",
    "pinned_disks_for",
]
