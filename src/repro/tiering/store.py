"""The tiered store: hot staging log + cold homes over one gateway.

:class:`TieredStore` splits a gateway's mounted spaces into a small
**hot tier** (the gateway's pinned, always-spinning disks) and the
**cold tier** (everything else, power-gated as usual):

* ``write(uid, size)`` reserves bounded staging bytes, appends the
  object to a hot-tier log (circular bump allocator), and submits the
  hot write through the ordinary gateway path.  Because the hot disk
  is already spinning, the ack — completion-driven, so "acked" means
  durable on hot media — arrives at hot latency instead of behind a
  cold spin-up.  The object's durable **cold home** (space chosen by
  ``stable_hash(uid)`` over the cold spaces — a pure function, no
  lookup table) is assigned immediately; only the byte offset waits
  for demotion so each cold flush packs one sequential run.
* ``read(uid)`` serves from the hot tier while an object is staged or
  promoted, otherwise from its cold home; every cold read feeds the
  segmented-LRU policy, which may trigger a background promotion copy.
* demotion/promotion/recovery traffic is submitted under
  ``config.migration_tenant`` — its own tenant label, so weighted-fair
  queuing, SLO burn-rate windows and flight-recorder dumps attribute
  background pressure to the migration, never to user tenants.
* ``drop_soft_state()`` + ``recover()`` replay a crash of the tiering
  node: the index, staging accounting and recency policy are all soft
  state; recovery issues scan reads over both tiers' durable extents
  and resolves each object to **exactly one** tier (a cold copy wins
  over its hot twin — the demotion landed even if the commit was
  lost; a hot-only copy is re-staged and owes a fresh demotion).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.gateway.api import ObjectRef, ReadObject, WriteObject
from repro.gateway.gateway import GatewayObject
from repro.gateway.request import GatewayRequest
from repro.obs.energy import EnergyLedger
from repro.obs.trace import NULL_TRACE, TraceContext
from repro.shardstore.routing import stable_hash
from repro.units import MiB, SimSeconds

from repro.tiering.policy import SegmentedLruPolicy
from repro.tiering.staging import StagingBuffer, StagingFullError, TieringError

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.gateway.gateway import Gateway

__all__ = [
    "ObjectMissingError",
    "TierState",
    "TieredObject",
    "TieredStore",
    "TieringConfig",
    "TieringStats",
    "pinned_disks_for",
]


class ObjectMissingError(TieringError):
    """No record for the uid — never written, or soft state was lost
    and :meth:`TieredStore.recover` has not completed."""


class TierState(Enum):
    #: Hot write submitted, not yet durable — the only un-acked state.
    STAGING = "staging"
    #: Durable on the hot log, owed a demotion to its cold home.
    STAGED = "staged"
    #: Riding an in-flight demotion batch (still served from hot).
    DEMOTING = "demoting"
    #: Durable in its cold home; the hot copy (if any) is a cache.
    COLD = "cold"
    FAILED = "failed"


@dataclass
class TieredObject:
    """One object's placement across the two tiers."""

    uid: str
    size: int
    cold_space: str
    state: TierState
    written_at: float
    #: Staging-log extent; present from admission until demotion commits.
    hot_ref: Optional[ObjectRef] = None
    #: Durable cold extent; offset assigned when a demotion batch packs it.
    cold_ref: Optional[ObjectRef] = None
    #: Promotion cache extent on the hot log (cold copy stays authoritative).
    cache_ref: Optional[ObjectRef] = None
    acked_at: Optional[float] = None
    demoted_at: Optional[float] = None
    promote_inflight: bool = False
    failure: Optional[str] = None
    trace: TraceContext = field(default=NULL_TRACE, repr=False)


@dataclass(frozen=True)
class TieringConfig:
    """Tier geometry, staging bound, and migration pacing."""

    tenant: str
    migration_tenant: str = "migration"
    #: Leading (sorted) gateway spaces that form the always-hot tier.
    hot_spaces: int = 2
    staging_capacity_bytes: int = 32 * MiB
    #: Max bytes one demotion batch packs into a single sequential write.
    demotion_batch_bytes: int = 8 * MiB
    #: A cold space flushes only once it owes this many bytes …
    demotion_min_batch_bytes: int = 1 * MiB
    #: … or its oldest staged write has waited this long.  Together
    #: these amortize one spin-up over a whole run instead of paying
    #: it per trickling object.
    demotion_max_age_seconds: SimSeconds = SimSeconds(60.0)
    demotion_check_interval: SimSeconds = SimSeconds(2.0)
    #: Pause migration while foreground queue depth exceeds this.
    pressure_queue_depth: int = 8
    max_inflight_demotions: int = 2
    promotion_protected_capacity: int = 64
    promotion_probation_capacity: int = 512
    #: Protected hot residents idle past this are demoted (cache drop).
    hot_idle_seconds: SimSeconds = SimSeconds(120.0)

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ValueError("tiering needs a foreground tenant")
        if self.migration_tenant == self.tenant:
            raise ValueError("migration tenant must differ from the foreground")
        if self.hot_spaces < 1:
            raise ValueError("need at least one hot space")
        if self.staging_capacity_bytes <= 0 or self.demotion_batch_bytes <= 0:
            raise ValueError("staging and batch bounds must be positive")
        if self.demotion_min_batch_bytes < 0 or self.demotion_max_age_seconds < 0:
            raise ValueError("demotion gates must be non-negative")
        if self.max_inflight_demotions < 1:
            raise ValueError("max_inflight_demotions must be positive")


@dataclass
class TieringStats:
    """Exact object accounting (the exactly-once audit surface)."""

    written: int = 0
    staged: int = 0
    stage_failures: int = 0
    demotion_batches: int = 0
    demotion_failures: int = 0
    demoted: int = 0
    demoted_bytes: int = 0
    promotions: int = 0
    promotion_failures: int = 0
    evictions: int = 0
    hot_reads: int = 0
    cold_reads: int = 0
    read_failures: int = 0
    recovery_scans: int = 0
    recovered_hot_only: int = 0
    recovered_duplicates: int = 0
    soft_state_drops: int = 0


@dataclass
class _DemotionBatch:
    """The staged objects riding one sequential cold write."""

    space_id: str
    base_offset: int
    extent: int
    records: List[TieredObject] = field(default_factory=list)


def pinned_disks_for(objects: List[GatewayObject], hot_spaces: int) -> tuple:
    """Disk ids of the first ``hot_spaces`` sorted gateway spaces.

    Use this to build ``GatewayConfig(pinned_disks=...)`` consistent
    with a :class:`TieringConfig` of the same ``hot_spaces``.
    """
    ordered = sorted(objects, key=lambda o: o.space_id)
    return tuple(obj.disk_id for obj in ordered[:hot_spaces])


class TieredStore:
    """Hot/cold tiering with write staging over a gateway's spaces."""

    def __init__(self, gateway: "Gateway", config: TieringConfig) -> None:
        objects = gateway.objects()
        if len(objects) <= config.hot_spaces:
            raise TieringError(
                f"{len(objects)} spaces cannot split into {config.hot_spaces} "
                "hot plus at least one cold"
            )
        # Both tenants must be registered so fair queuing and SLO
        # windows see migration traffic under its own label.
        gateway.tenant(config.tenant)
        gateway.tenant(config.migration_tenant)
        self.gateway = gateway
        self.config = config
        ordered = sorted(objects, key=lambda o: o.space_id)
        self._hot_spaces: List[str] = [o.space_id for o in ordered[: config.hot_spaces]]
        self._cold_spaces: List[str] = [o.space_id for o in ordered[config.hot_spaces :]]
        self._region_bytes: Dict[str, int] = {
            o.space_id: o.region_bytes for o in ordered
        }
        self._hot_disks: List[str] = [o.disk_id for o in ordered[: config.hot_spaces]]
        self._disk_of_space: Dict[str, str] = {
            o.space_id: o.disk_id for o in ordered
        }
        pinned = set(gateway.config.pinned_disks)
        missing = [d for d in self._hot_disks if d not in pinned]
        if missing:
            raise TieringError(
                f"hot disks {missing} must be pinned in GatewayConfig "
                "(pinned_disks) so the spin-down policy exempts them"
            )
        hot_capacity = sum(self._region_bytes[s] for s in self._hot_spaces)
        if config.staging_capacity_bytes > hot_capacity:
            raise TieringError(
                f"staging bound {config.staging_capacity_bytes} exceeds hot "
                f"log capacity {hot_capacity}"
            )
        self.stats = TieringStats()
        self.staging = StagingBuffer(config.staging_capacity_bytes)
        self.policy = SegmentedLruPolicy(
            protected_capacity=config.promotion_protected_capacity,
            probation_capacity=config.promotion_probation_capacity,
            idle_seconds=config.hot_idle_seconds,
        )
        #: Soft-state placement index: uid -> record.  A cache of what
        #: the media says; rebuilt by recover() after a crash.
        self._index: Dict[str, TieredObject] = {}
        #: Modelled durable platter contents per tier, keyed by space
        #: then uid.  Updated only from write completions; recovery
        #: reads these back after paying for the physical scans.
        self._hot_media: Dict[str, Dict[str, TieredObject]] = {}
        self._cold_media: Dict[str, Dict[str, TieredObject]] = {}
        #: Circular bump allocators (hot log) and append tails (cold).
        self._hot_tails: Dict[str, int] = {s: 0 for s in self._hot_spaces}
        self._cold_tails: Dict[str, int] = {s: 0 for s in self._cold_spaces}
        self.inflight_demotions = 0
        self._inflight_spaces: List[str] = []
        #: Crash epoch: bumped by drop_soft_state().  Completion hooks
        #: issued before a crash are *orphaned* — their data still
        #: lands on the modelled platter (the gateway/ClientLib finish
        #: the write regardless), but they must not touch the reborn
        #: node's soft state.  Recovery then observes the duplicate
        #: and resolves it, which is the whole point.
        self._epoch = 0
        self._pending_scans = 0
        self._scan_found_hot: Dict[str, TieredObject] = {}
        self._scan_found_cold: Dict[str, TieredObject] = {}
        self._tracer = gateway.sim.tracer
        metrics = gateway.sim.metrics
        self._m_written = metrics.counter("tiering.written")
        self._m_staged = metrics.counter("tiering.staged")
        self._m_stage_failures = metrics.counter("tiering.stage_failures")
        self._m_overflows = metrics.counter("tiering.staging_overflows")
        self._m_demotion_batches = metrics.counter("tiering.demotion_batches")
        self._m_demoted = metrics.counter("tiering.demoted")
        self._m_demoted_bytes = metrics.counter("tiering.demoted_bytes")
        self._m_promotions = metrics.counter("tiering.promotions")
        self._m_evictions = metrics.counter("tiering.evictions")
        self._m_hot_reads = metrics.counter("tiering.hot_reads")
        self._m_cold_reads = metrics.counter("tiering.cold_reads")
        self._m_scans = metrics.counter("tiering.recovery_scans")
        self._m_staged_bytes = metrics.gauge("tiering.staged_bytes")
        self._m_batch_bytes = metrics.histogram("tiering.demotion_batch_bytes")
        self._m_stage_latency = metrics.histogram("tiering.stage_latency_seconds")

    # -- geometry ---------------------------------------------------------

    def hot_spaces(self) -> List[str]:
        return list(self._hot_spaces)

    def cold_spaces(self) -> List[str]:
        return list(self._cold_spaces)

    def classify_tiers(self, ledger: "EnergyLedger") -> None:
        """Label this store's disks on an energy ledger.

        The pinned hot tier books under ``hot`` and every other gateway
        disk under ``cold``, so per-tier joule tables can show what the
        always-spinning tier's rent buys.
        """
        hot = set(self._hot_disks)
        for disk_id in sorted(self.gateway._disks):
            ledger.set_tier(disk_id, "hot" if disk_id in hot else "cold")

    def start(self) -> None:
        """Spin the hot tier up so staged writes never wait on a motor.

        The spin-ups are issued through the normal disk state machine
        and count against the gateway's spin-up/energy accounting —
        the hot tier's cost is paid inside the same power envelope.
        """
        for disk_id in self._hot_disks:
            disk = self.gateway._disks[disk_id]
            if not disk.states.is_spinning:
                disk.spin_up()

    def cold_home(self, uid: str) -> str:
        """Pure-function cold placement: no lookup table anywhere."""
        return self._cold_spaces[stable_hash(uid) % len(self._cold_spaces)]

    def _hot_alloc(self, uid: str, size: int) -> ObjectRef:
        """Bump-allocate a hot-log extent (circular, per hot space)."""
        space_id = self._hot_spaces[stable_hash(uid) % len(self._hot_spaces)]
        region = self._region_bytes[space_id]
        if size > region:
            raise TieringError(f"object {uid!r} ({size} bytes) exceeds hot log")
        tail = self._hot_tails[space_id]
        if tail + size > region:
            tail = 0  # circular log wrap; bounded staging keeps it safe
        self._hot_tails[space_id] = tail + size
        return ObjectRef(space_id=space_id, offset=tail, size=size, object_id=uid)

    # -- writes (staging) -------------------------------------------------

    def write(self, uid: str, size: int) -> TieredObject:
        """Stage one archival write; ack at hot latency via completion.

        Raises :class:`StagingFullError` when the bounded buffer cannot
        absorb the write — backpressure, not unbounded queueing.
        """
        if uid in self._index:
            raise TieringError(f"duplicate write for uid {uid!r}")
        try:
            self.staging.reserve(size)
        except StagingFullError:
            self._m_overflows.inc()
            raise
        obj = TieredObject(
            uid=uid,
            size=size,
            cold_space=self.cold_home(uid),
            state=TierState.STAGING,
            written_at=self.gateway.sim.now,
            hot_ref=self._hot_alloc(uid, size),
        )
        self._index[uid] = obj
        self.stats.written += 1
        self._m_written.inc()
        if self._tracer.enabled:
            obj.trace = self._tracer.start(
                "tiering.object",
                kind="object",
                uid=uid,
                size=size,
                cold_space=obj.cold_space,
            )
        assert obj.hot_ref is not None
        request = self.gateway.submit(
            WriteObject(tenant=self.config.tenant, ref=obj.hot_ref)
        )
        request.trace.annotate(tier="hot", staged=True)
        epoch = self._epoch
        request.on_complete = lambda done, obj=obj: self._stage_done(
            obj, done, epoch
        )
        self._m_staged_bytes.set(float(self.staging.staged_bytes))
        return obj

    def _stage_done(
        self, obj: TieredObject, request: GatewayRequest, epoch: int
    ) -> None:
        now = self.gateway.sim.now
        if epoch != self._epoch:
            # Orphaned by a crash: the bytes are on the hot platter
            # regardless, so the media learns of them — recovery will
            # find and re-stage the object.  No soft state is touched.
            if request.failure is None and obj.hot_ref is not None:
                self._hot_media.setdefault(obj.hot_ref.space_id, {})[obj.uid] = obj
            return
        if request.failure is not None:
            obj.state = TierState.FAILED
            obj.failure = request.failure
            self.stats.stage_failures += 1
            self._m_stage_failures.inc()
            self.staging.release(obj.size)
            self._m_staged_bytes.set(float(self.staging.staged_bytes))
            obj.trace.phase("stage")
            obj.trace.finish("failed")
            return
        obj.state = TierState.STAGED
        obj.acked_at = now
        assert obj.hot_ref is not None
        self._hot_media.setdefault(obj.hot_ref.space_id, {})[obj.uid] = obj
        self.staging.enqueue(obj)
        self.stats.staged += 1
        self._m_staged.inc()
        self._m_stage_latency.observe(now - obj.written_at)
        obj.trace.phase("stage")

    # -- reads ------------------------------------------------------------

    def read(self, uid: str) -> GatewayRequest:
        """Serve from the hot tier when resident, else from cold.

        Cold accesses feed the recency policy; a promotion verdict
        copies the object onto the hot log in the background (under
        the migration tenant) so repeat readers stop paying spin-ups.
        """
        obj = self._index.get(uid)
        if obj is None or obj.state is TierState.FAILED:
            raise ObjectMissingError(
                f"no placement for uid {uid!r} (crashed soft state needs recover())"
            )
        now = self.gateway.sim.now
        hot_ref: Optional[ObjectRef] = None
        if obj.state in (TierState.STAGING, TierState.STAGED, TierState.DEMOTING):
            hot_ref = obj.hot_ref
        elif obj.cache_ref is not None:
            hot_ref = obj.cache_ref
        if hot_ref is not None:
            self.stats.hot_reads += 1
            self._m_hot_reads.inc()
            self.policy.record_access(uid, now)
            request = self.gateway.submit(
                ReadObject(tenant=self.config.tenant, ref=hot_ref)
            )
            request.trace.annotate(tier="hot")
            request.on_complete = self._read_done
            return request
        assert obj.state is TierState.COLD and obj.cold_ref is not None
        self.stats.cold_reads += 1
        self._m_cold_reads.inc()
        request = self.gateway.submit(
            ReadObject(tenant=self.config.tenant, ref=obj.cold_ref)
        )
        request.trace.annotate(tier="cold")
        request.on_complete = self._read_done
        if self.policy.record_access(uid, now) and not obj.promote_inflight:
            self._promote(obj)
        return request

    def _read_done(self, request: GatewayRequest) -> None:
        if request.failure is not None:
            self.stats.read_failures += 1

    def residency(self, uid: str) -> str:
        """Which tier serves this uid right now: "hot" or "cold"."""
        obj = self._index.get(uid)
        if obj is None:
            raise ObjectMissingError(f"no placement for uid {uid!r}")
        if obj.state in (TierState.STAGING, TierState.STAGED, TierState.DEMOTING):
            return "hot"
        if obj.cache_ref is not None:
            return "hot"
        return "cold"

    # -- promotion / eviction ---------------------------------------------

    def _promote(self, obj: TieredObject) -> None:
        """Copy a hot-worthy cold object onto the hot log, background."""
        obj.promote_inflight = True
        ref = self._hot_alloc(obj.uid, obj.size)
        request = self.gateway.submit(
            WriteObject(tenant=self.config.migration_tenant, ref=ref)
        )
        request.trace.annotate(tier="hot", background=True, kind_hint="promotion")
        epoch = self._epoch
        request.on_complete = lambda done, obj=obj, ref=ref: self._promote_done(
            obj, ref, done, epoch
        )

    def _promote_done(
        self, obj: TieredObject, ref: ObjectRef, request: GatewayRequest, epoch: int
    ) -> None:
        if epoch != self._epoch:
            # Orphaned by a crash: the cache copy landed on the hot
            # platter; recovery's cold-wins rule will reclaim it.
            if request.failure is None:
                obj.cache_ref = ref
                self._hot_media.setdefault(ref.space_id, {})[obj.uid] = obj
            return
        obj.promote_inflight = False
        if request.failure is not None:
            self.stats.promotion_failures += 1
            return
        obj.cache_ref = ref
        self._hot_media.setdefault(ref.space_id, {})[obj.uid] = obj
        self.stats.promotions += 1
        self._m_promotions.inc()
        obj.trace.event("tiering.promoted", space=ref.space_id)

    def evict_idle(self) -> int:
        """Drop hot cache copies the recency policy has aged out.

        The cold copy was always authoritative, so eviction is pure
        bookkeeping — no I/O, no data movement.
        """
        evicted = 0
        for uid in self.policy.demotion_candidates(self.gateway.sim.now):
            obj = self._index.get(uid)
            if obj is None or obj.cache_ref is None:
                continue
            self._hot_media.get(obj.cache_ref.space_id, {}).pop(uid, None)
            obj.cache_ref = None
            evicted += 1
            self.stats.evictions += 1
            self._m_evictions.inc()
            obj.trace.event("tiering.evicted")
        return evicted

    # -- demotion (the background flush path) ------------------------------

    def pending_demotion_bytes(self) -> int:
        return sum(
            self.staging.pending_bytes(space) for space in self._cold_spaces
        )

    def take_demotion_batch(
        self, space_id: str, max_bytes: Optional[int] = None
    ) -> Optional[GatewayRequest]:
        """Flush one cold disk's staged run as a single sequential write.

        Offsets are packed contiguously at the cold space's tail so the
        whole batch is one sequential pass — one spin-up amortized over
        every object in the run.  Submitted under the migration tenant;
        the objects stay hot-served until the write completes.
        """
        limit = self.config.demotion_batch_bytes if max_bytes is None else max_bytes
        records = self.staging.take_batch(space_id, limit)
        if not records:
            return None
        total = sum(obj.size for obj in records)
        region = self._region_bytes[space_id]
        base = self._cold_tails[space_id]
        if base + total > region:
            self.staging.requeue(records)
            raise TieringError(f"cold space {space_id!r} exhausted")
        self._cold_tails[space_id] = base + total
        offset = base
        for obj in records:
            obj.state = TierState.DEMOTING
            obj.cold_ref = ObjectRef(
                space_id=space_id, offset=offset, size=obj.size, object_id=obj.uid
            )
            offset += obj.size
            obj.trace.phase("hot_residency")
        batch = _DemotionBatch(
            space_id=space_id, base_offset=base, extent=total, records=records
        )
        request = self.gateway.submit(
            WriteObject(
                tenant=self.config.migration_tenant,
                ref=ObjectRef(
                    space_id=space_id,
                    offset=base,
                    size=total,
                    object_id=f"demote:{space_id}+{base}",
                ),
            )
        )
        request.trace.annotate(background=True, kind_hint="demotion", objects=len(records))
        epoch = self._epoch
        request.on_complete = lambda done, batch=batch: self._demote_done(
            batch, done, epoch
        )
        self.inflight_demotions += 1
        self._inflight_spaces.append(space_id)
        self.stats.demotion_batches += 1
        self._m_demotion_batches.inc()
        self._m_batch_bytes.observe(float(total))
        return request

    def _demote_done(
        self, batch: _DemotionBatch, request: GatewayRequest, epoch: int
    ) -> None:
        if epoch != self._epoch:
            # Orphaned by a crash.  The sequential run still hit the
            # cold platter (the gateway finished it), but the commit —
            # log-head advance, staging release, index update — died
            # with the node.  Record only what is physically durable:
            # the cold copies.  The hot extents remain; recovery sees
            # both tiers and resolves the duplicates exactly-once.
            if request.failure is None:
                media = self._cold_media.setdefault(batch.space_id, {})
                for obj in batch.records:
                    media[obj.uid] = obj
            return
        self.inflight_demotions -= 1
        self._inflight_spaces.remove(batch.space_id)
        now = self.gateway.sim.now
        if request.failure is not None:
            self.stats.demotion_failures += 1
            for obj in batch.records:
                obj.state = TierState.STAGED
                obj.cold_ref = None
            self.staging.requeue(batch.records)
            return
        media = self._cold_media.setdefault(batch.space_id, {})
        for obj in batch.records:
            obj.state = TierState.COLD
            obj.demoted_at = now
            media[obj.uid] = obj
            if obj.hot_ref is not None:
                # Log-head advance: the staged extent is reclaimable
                # the moment the cold copy is durable.
                self._hot_media.get(obj.hot_ref.space_id, {}).pop(obj.uid, None)
                obj.hot_ref = None
            self.staging.release(obj.size)
            self.stats.demoted += 1
            self.stats.demoted_bytes += obj.size
            self._m_demoted.inc()
            self._m_demoted_bytes.inc(obj.size)
            obj.trace.phase("demote")
            obj.trace.finish("demoted")
        self._m_staged_bytes.set(float(self.staging.staged_bytes))

    # -- crash / recovery (the no-metadata-DB proof) ------------------------

    def durable_tiers(self, uid: str) -> List[str]:
        """Which tiers hold a durable copy right now (audit helper)."""
        tiers = []
        if any(uid in media for media in self._hot_media.values()):
            tiers.append("hot")
        if any(uid in media for media in self._cold_media.values()):
            tiers.append("cold")
        return tiers

    @staticmethod
    def _extent_in(obj: TieredObject, space_id: str) -> int:
        """End offset of the object's durable extent within ``space_id``."""
        for ref in (obj.hot_ref, obj.cache_ref, obj.cold_ref):
            if ref is not None and ref.space_id == space_id:
                return ref.offset + ref.size
        return obj.size

    def inflight_spaces(self) -> List[str]:
        """Cold spaces with a demotion batch currently in flight."""
        return list(self._inflight_spaces)

    def drop_soft_state(self) -> None:
        """Crash the tiering node: index, staging and policy are gone.

        In-flight completions are orphaned (epoch bump): their data
        still lands on the modelled platters, but they no longer touch
        soft state — the reborn node learns placement from media scans
        alone.
        """
        self._epoch += 1
        self._index.clear()
        self.staging.reset()
        self.policy.reset()
        self.inflight_demotions = 0
        self._inflight_spaces = []
        self._pending_scans = 0
        self._scan_found_hot = {}
        self._scan_found_cold = {}
        self.stats.soft_state_drops += 1

    def recover(self) -> List[GatewayRequest]:
        """Rebuild placement from media scans alone.

        One sequential read per tier extent (migration tenant — the
        scans are background work too); when every scan lands, each
        discovered object resolves to exactly one tier: cold wins over
        a hot twin (the demotion's data landed even if its commit was
        lost), hot-only objects re-stage and owe a fresh demotion.
        """
        if self._pending_scans:
            raise TieringError("recovery already in progress")
        self._scan_found_hot = {}
        self._scan_found_cold = {}
        requests: List[GatewayRequest] = []
        plans = [
            (self._hot_media, self._scan_found_hot),
            (self._cold_media, self._scan_found_cold),
        ]
        for media_map, found in plans:
            for space_id in sorted(media_map):
                records = media_map[space_id]
                if not records:
                    continue
                extent = max(
                    self._extent_in(obj, space_id) for obj in records.values()
                )
                request = self.gateway.submit(
                    ReadObject(
                        tenant=self.config.migration_tenant,
                        ref=ObjectRef(
                            space_id=space_id,
                            offset=0,
                            size=extent,
                            object_id=f"{space_id}@scan",
                        ),
                    )
                )
                request.trace.annotate(background=True, kind_hint="recovery_scan")
                snapshot = dict(records)
                epoch = self._epoch
                request.on_complete = (
                    lambda done, found=found, snapshot=snapshot: self._scan_done(
                        found, snapshot, done, epoch
                    )
                )
                self._pending_scans += 1
                requests.append(request)
        if not requests:
            self._rebuild()
        return requests

    def _scan_done(
        self,
        found: Dict[str, TieredObject],
        snapshot: Dict[str, TieredObject],
        request: GatewayRequest,
        epoch: int,
    ) -> None:
        if epoch != self._epoch:
            return
        self._pending_scans -= 1
        if request.failure is None:
            self.stats.recovery_scans += 1
            self._m_scans.inc()
            found.update(snapshot)
        if self._pending_scans == 0:
            self._rebuild()

    def _rebuild(self) -> None:
        """Resolve scan results into an exactly-once placement index."""
        for uid in sorted(self._scan_found_cold):
            obj = self._scan_found_cold[uid]
            hot_twin = self._scan_found_hot.pop(uid, None)
            if hot_twin is not None:
                # Demotion data landed before the crash: cold wins,
                # the hot extent is reclaimed.
                if obj.hot_ref is not None:
                    self._hot_media.get(obj.hot_ref.space_id, {}).pop(uid, None)
                if obj.cache_ref is not None:
                    self._hot_media.get(obj.cache_ref.space_id, {}).pop(uid, None)
                self.stats.recovered_duplicates += 1
            obj.state = TierState.COLD
            obj.hot_ref = None
            obj.cache_ref = None
            obj.promote_inflight = False
            self._index[uid] = obj
        for uid in sorted(self._scan_found_hot):
            obj = self._scan_found_hot[uid]
            # Durable only on the hot log: still staged, owes a demotion.
            obj.state = TierState.STAGED
            obj.cold_ref = None
            obj.cache_ref = None
            obj.promote_inflight = False
            self.staging.reserve(obj.size)
            self.staging.enqueue(obj)
            self._index[uid] = obj
            self.stats.recovered_hot_only += 1
        self._scan_found_hot = {}
        self._scan_found_cold = {}
        self._m_staged_bytes.set(float(self.staging.staged_bytes))

    # -- accounting --------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        stats = self.stats
        return {
            "written": stats.written,
            "staged": stats.staged,
            "stage_failures": stats.stage_failures,
            "staging_overflows": self.staging.overflows,
            "staged_bytes": self.staging.staged_bytes,
            "pending_demotion_bytes": self.pending_demotion_bytes(),
            "demotion_batches": stats.demotion_batches,
            "demotion_failures": stats.demotion_failures,
            "demoted": stats.demoted,
            "demoted_bytes": stats.demoted_bytes,
            "promotions": stats.promotions,
            "evictions": stats.evictions,
            "hot_reads": stats.hot_reads,
            "cold_reads": stats.cold_reads,
            "read_failures": stats.read_failures,
            "recovery_scans": stats.recovery_scans,
            "recovered_hot_only": stats.recovered_hot_only,
            "recovered_duplicates": stats.recovered_duplicates,
            "soft_state_drops": stats.soft_state_drops,
            "inflight_demotions": self.inflight_demotions,
            "hot_spaces": len(self._hot_spaces),
            "cold_spaces": len(self._cold_spaces),
        }
