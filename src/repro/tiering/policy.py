"""Access-recency promotion/demotion policy (segmented LRU).

The tiering layer must decide which cold objects deserve a hot-tier
copy using nothing but what the gateway can observe — the stream of
object accesses.  There is no metadata database to consult and none is
built here: the policy is a bounded in-memory sketch, fully soft
state, rebuilt empty after a crash (a cache that re-warms).

Classic segmented LRU over object uids:

* first access of a cold object lands it in the bounded **probation**
  segment;
* a second access while still on probation **promotes** it — the
  caller copies the object into the hot tier and the uid moves to the
  **protected** segment;
* protected entries idle past ``idle_seconds`` (or evicted by
  capacity pressure, LRU first) are handed back as **demotion
  candidates** — the hot copy is dropped, the cold copy was always
  authoritative, so demotion is free.

Everything is deterministic: plain ``OrderedDict`` recency order, no
randomness, no wall clock.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List

from repro.units import SimSeconds

__all__ = ["SegmentedLruPolicy"]


class SegmentedLruPolicy:
    """Bounded segmented-LRU promotion filter over object uids."""

    def __init__(
        self,
        protected_capacity: int = 64,
        probation_capacity: int = 512,
        idle_seconds: SimSeconds = SimSeconds(120.0),
    ) -> None:
        if protected_capacity < 1 or probation_capacity < 1:
            raise ValueError("segment capacities must be positive")
        if idle_seconds <= 0:
            raise ValueError("idle_seconds must be positive")
        self.protected_capacity = protected_capacity
        self.probation_capacity = probation_capacity
        self.idle_seconds = idle_seconds
        #: uid -> last access time, oldest first (LRU order).
        self._probation: "OrderedDict[str, float]" = OrderedDict()
        self._protected: "OrderedDict[str, float]" = OrderedDict()

    # -- accesses ---------------------------------------------------------

    def record_access(self, uid: str, now: float) -> bool:
        """Feed one observed access; True means "promote this uid now".

        The caller owns the actual data movement — a True return only
        moves the uid into the protected segment.  Accesses to already
        protected uids refresh their recency and never re-promote.
        """
        if uid in self._protected:
            self._protected.move_to_end(uid)
            self._protected[uid] = now
            return False
        if uid in self._probation:
            del self._probation[uid]
            self._protected[uid] = now
            return True
        self._probation[uid] = now
        while len(self._probation) > self.probation_capacity:
            self._probation.popitem(last=False)
        return False

    # -- demotion ---------------------------------------------------------

    def demotion_candidates(self, now: float) -> List[str]:
        """Protected uids to drop: idle past the window, then LRU overflow.

        Removes the returned uids from the protected segment — the
        caller is expected to drop the corresponding hot copies.
        """
        victims: List[str] = []
        for uid in list(self._protected):
            if now - self._protected[uid] >= self.idle_seconds:
                victims.append(uid)
                del self._protected[uid]
        while len(self._protected) > self.protected_capacity:
            uid, _ = self._protected.popitem(last=False)
            victims.append(uid)
        return victims

    def forget(self, uid: str) -> None:
        """Drop any record of ``uid`` (object deleted or force-demoted)."""
        self._probation.pop(uid, None)
        self._protected.pop(uid, None)

    def reset(self) -> None:
        """Lose all soft state, as a crash of the tiering node would."""
        self._probation.clear()
        self._protected.clear()

    # -- introspection ----------------------------------------------------

    def is_protected(self, uid: str) -> bool:
        return uid in self._protected

    def sizes(self) -> Dict[str, int]:
        return {
            "probation": len(self._probation),
            "protected": len(self._protected),
        }
