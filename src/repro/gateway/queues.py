"""Per-tenant weighted-fair queues with bounded admission.

Start-time fair queuing over bytes: each admitted request gets a
virtual *fair tag* ``max(V, last_finish[tenant]) + size/weight`` where
``V`` is the queue's virtual time (advanced to the largest dispatched
tag).  Draining in tag order gives each backlogged tenant service in
proportion to its weight, measured in bytes, while an idle tenant's
unused share is redistributed rather than banked.

Admission is a hard per-tenant depth bound checked before tagging, so
a misbehaving tenant overflows its own queue (typed
:class:`~repro.gateway.request.QueueFullError`) instead of growing the
gateway without bound — the open-loop generator keeps offering load
regardless, which is exactly the saturation regime the bound exists
for.

Everything here is plain data structures; iteration orders are the
tenant registration order and explicit sort keys only, keeping the
queue safe to use from event-scheduling code (the DET003 contract).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.gateway.request import GatewayRequest, QueueFullError, UnknownTenantError
from repro.gateway.tenants import TenantSpec

__all__ = ["PendingDisk", "WeightedFairQueue"]


@dataclass(frozen=True)
class PendingDisk:
    """Summary of one disk's queued work, as the scheduler sees it."""

    disk_id: str
    count: int
    earliest_arrival: float
    earliest_deadline: float
    oldest_request_id: int
    min_fair_tag: float


class WeightedFairQueue:
    """Bounded per-tenant FIFOs drained in weighted-fair tag order."""

    def __init__(self, tenants: Mapping[str, TenantSpec]) -> None:
        if not tenants:
            raise ValueError("weighted-fair queue needs at least one tenant")
        self._specs: Dict[str, TenantSpec] = dict(tenants)
        self._queues: Dict[str, List[GatewayRequest]] = {
            name: [] for name in tenants
        }
        self._virtual_time = 0.0
        self._last_finish: Dict[str, float] = {name: 0.0 for name in tenants}

    # -- admission ---------------------------------------------------------

    def push(self, request: GatewayRequest) -> None:
        """Admit one request or raise a typed admission error."""
        spec = self._specs.get(request.tenant)
        if spec is None:
            raise UnknownTenantError(request.tenant)
        pending = self._queues[request.tenant]
        if len(pending) >= spec.max_queue_depth:
            raise QueueFullError(request.tenant, len(pending), spec.max_queue_depth)
        start = max(self._virtual_time, self._last_finish[request.tenant])
        finish = start + float(request.size) / spec.weight
        request.fair_tag = finish
        self._last_finish[request.tenant] = finish
        pending.append(request)

    # -- introspection -----------------------------------------------------

    def depth(self, tenant: str) -> int:
        return len(self._queues.get(tenant, ()))

    def total_depth(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def depths(self) -> Dict[str, int]:
        return {name: len(queue) for name, queue in self._queues.items()}

    def pending_by_disk(self) -> List[PendingDisk]:
        """Queued work grouped by target disk, sorted by disk id."""
        summary: Dict[str, List[GatewayRequest]] = {}
        for name in self._queues:
            for request in self._queues[name]:
                summary.setdefault(request.disk_id, []).append(request)
        pending: List[PendingDisk] = []
        for disk_id in sorted(summary):
            requests = summary[disk_id]
            pending.append(
                PendingDisk(
                    disk_id=disk_id,
                    count=len(requests),
                    earliest_arrival=min(r.arrival for r in requests),
                    earliest_deadline=min(r.deadline for r in requests),
                    oldest_request_id=min(r.request_id for r in requests),
                    min_fair_tag=min(r.fair_tag for r in requests),
                )
            )
        return pending

    # -- extraction --------------------------------------------------------

    def take_for_disk(self, disk_id: str, limit: int) -> List[GatewayRequest]:
        """Remove up to ``limit`` of the disk's requests in fair-tag order."""
        if limit < 1:
            return []
        matching: List[Tuple[float, int, GatewayRequest]] = []
        for name in self._queues:
            for request in self._queues[name]:
                if request.disk_id == disk_id:
                    matching.append((request.fair_tag, request.request_id, request))
        matching.sort(key=lambda item: (item[0], item[1]))
        taken = [request for _, _, request in matching[:limit]]
        for request in taken:
            self._queues[request.tenant].remove(request)
            if request.fair_tag > self._virtual_time:
                self._virtual_time = request.fair_tag
        return taken

    def take_oldest(self) -> Optional[GatewayRequest]:
        """Remove the globally oldest request (strict FIFO; ignores tags)."""
        oldest: Optional[GatewayRequest] = None
        for name in self._queues:
            queue = self._queues[name]
            if not queue:
                continue
            head = queue[0]
            if oldest is None or (head.arrival, head.request_id) < (
                oldest.arrival,
                oldest.request_id,
            ):
                oldest = head
        if oldest is not None:
            self._queues[oldest.tenant].remove(oldest)
            if oldest.fair_tag > self._virtual_time:
                self._virtual_time = oldest.fair_tag
        return oldest
