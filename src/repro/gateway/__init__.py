"""repro.gateway — the multi-tenant request tier in front of the cluster.

The layer the paper assumes but never draws: between "millions of
archival users" and the 16-disk deploy unit sits a gateway that admits,
queues and schedules requests.  Modules:

* :mod:`repro.gateway.request` — typed requests and admission errors;
* :mod:`repro.gateway.tenants` — tenant specs and the open-loop
  (Poisson / trace-driven) traffic generator;
* :mod:`repro.gateway.queues` — bounded per-tenant weighted-fair queues;
* :mod:`repro.gateway.scheduler` — the power-budgeted cold-read batch
  scheduler and the naive FIFO baseline;
* :mod:`repro.gateway.gateway` — the gateway itself, dispatching
  batches through the ClientLib mount path.

See DESIGN.md §9 and the ``gateway_slo`` experiment.
"""

from repro.gateway.gateway import (  # noqa: F401
    Gateway,
    GatewayConfig,
    GatewayObject,
    GatewayStats,
    TenantStats,
    mount_gateway_spaces,
)
from repro.gateway.queues import PendingDisk, WeightedFairQueue  # noqa: F401
from repro.gateway.request import (  # noqa: F401
    AdmissionError,
    GatewayError,
    GatewayRequest,
    QueueFullError,
    RequestState,
    UnknownTenantError,
)
from repro.gateway.scheduler import (  # noqa: F401
    ColdReadBatchScheduler,
    FifoScheduler,
    PowerAccountant,
    Scheduler,
    make_scheduler,
)
from repro.gateway.tenants import (  # noqa: F401
    OpenLoopTrafficGenerator,
    TenantSpec,
    TraceArrival,
)

__all__ = [
    "AdmissionError",
    "ColdReadBatchScheduler",
    "FifoScheduler",
    "Gateway",
    "GatewayConfig",
    "GatewayError",
    "GatewayObject",
    "GatewayRequest",
    "GatewayStats",
    "OpenLoopTrafficGenerator",
    "PendingDisk",
    "PowerAccountant",
    "QueueFullError",
    "RequestState",
    "Scheduler",
    "TenantSpec",
    "TenantStats",
    "TraceArrival",
    "UnknownTenantError",
    "WeightedFairQueue",
    "make_scheduler",
    "mount_gateway_spaces",
]
