"""repro.gateway — the multi-tenant request tier in front of the cluster.

The layer the paper assumes but never draws: between "millions of
archival users" and the 16-disk deploy unit sits a gateway that admits,
queues and schedules requests.  Modules:

* :mod:`repro.gateway.request` — typed requests and admission errors;
* :mod:`repro.gateway.tenants` — tenant specs and the open-loop
  (Poisson / trace-driven) traffic generator;
* :mod:`repro.gateway.queues` — bounded per-tenant weighted-fair queues;
* :mod:`repro.gateway.scheduler` — the power-budgeted cold-read batch
  scheduler and the naive FIFO baseline;
* :mod:`repro.gateway.gateway` — the gateway itself, dispatching
  batches through the ClientLib mount path.

See DESIGN.md §9 and the ``gateway_slo`` experiment.

The request surface is object-level (DESIGN.md §12): callers build an
:class:`ObjectRef` and submit :class:`ReadObject` / :class:`WriteObject`
/ :class:`ReadRange` ops; the legacy positional
``submit(tenant, space_id, offset, size)`` shape survives behind a
``DeprecationWarning`` shim.  Everything callers need — the op types
and the typed error hierarchy included — is importable from this
package root.
"""

from repro.gateway.api import (  # noqa: F401
    GatewayOp,
    ObjectRef,
    ReadObject,
    ReadRange,
    WriteObject,
    resolve_op,
)
from repro.gateway.gateway import (  # noqa: F401
    Gateway,
    GatewayConfig,
    GatewayObject,
    GatewayStats,
    TenantStats,
    mount_gateway_spaces,
)
from repro.gateway.queues import PendingDisk, WeightedFairQueue  # noqa: F401
from repro.gateway.request import (  # noqa: F401
    AdmissionError,
    GatewayError,
    GatewayRequest,
    QueueFullError,
    RequestState,
    UnknownTenantError,
)
from repro.gateway.scheduler import (  # noqa: F401
    ColdReadBatchScheduler,
    DiskPass,
    FifoScheduler,
    PowerAccountant,
    Scheduler,
    coalesce_batch,
    make_scheduler,
)
from repro.gateway.tenants import (  # noqa: F401
    OpenLoopTrafficGenerator,
    TenantSpec,
    TraceArrival,
)

__all__ = [
    "AdmissionError",
    "ColdReadBatchScheduler",
    "DiskPass",
    "FifoScheduler",
    "Gateway",
    "GatewayConfig",
    "GatewayError",
    "GatewayObject",
    "GatewayOp",
    "GatewayRequest",
    "GatewayStats",
    "ObjectRef",
    "OpenLoopTrafficGenerator",
    "PendingDisk",
    "PowerAccountant",
    "QueueFullError",
    "ReadObject",
    "ReadRange",
    "RequestState",
    "Scheduler",
    "TenantSpec",
    "TenantStats",
    "TraceArrival",
    "UnknownTenantError",
    "WeightedFairQueue",
    "WriteObject",
    "coalesce_batch",
    "make_scheduler",
    "mount_gateway_spaces",
    "resolve_op",
]
