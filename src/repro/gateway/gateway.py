"""The gateway: admission, fair queuing, power-budgeted dispatch.

One :class:`Gateway` fronts a set of mounted UStore spaces (one per
backing disk).  Requests arrive via :meth:`Gateway.submit` — admission
control and SLO tagging happen synchronously at the door — and are
drained by a single dispatcher process that consults the configured
scheduler strategy (:mod:`repro.gateway.scheduler`) and the power
accountant before spawning one serving process per disk batch.

I/O goes through the existing ClientLib mount path
(:class:`~repro.cluster.clientlib.MountedSpace`), so endpoint failures
surface exactly as they do for any UStore client: a ``SessionError``
inside the space triggers a transparent remount and the I/O retries
against the failed-over host.  The gateway issues each queued request
to the space exactly once (``attempts`` counts gateway-level issues,
not ClientLib-internal retries); a request is marked failed only when
the ClientLib exhausts its remount budget.

Spin-*down* is delegated to :mod:`repro.power.policy` — the gateway
runs a ``run_policy`` loop over its disks — plus a reclaim step: when
queued work cannot be dispatched within the wattage budget, the
dispatcher spins down the least-recently-used idle disk to free watts
instead of waiting out the policy's idle timeout.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Generator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.cluster.clientlib import MountedSpace, StorageUnavailableError
from repro.cluster.namespace import parse_space_id
from repro.disk.device import SimulatedDisk
from repro.disk.states import DiskPowerState
from repro.obs import DEFAULT_DEPTH_BUCKETS
from repro.power.policy import AdaptiveTimeoutPolicy, FixedTimeoutPolicy, run_policy
from repro.sim import Event, Simulator
from repro.units import SimSeconds, Watts

from repro.gateway.api import (
    GATEWAY_OP_TYPES,
    GatewayOp,
    ObjectRef,
    ReadObject,
    WriteObject,
    resolve_op,
)
from repro.gateway.queues import WeightedFairQueue
from repro.gateway.request import GatewayError, GatewayRequest, RequestState
from repro.gateway.scheduler import (
    DiskPass,
    HostLookup,
    PowerAccountant,
    coalesce_batch,
    make_scheduler,
)
from repro.gateway.tenants import TenantSpec

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.cluster.deployment import Deployment

__all__ = [
    "Gateway",
    "GatewayConfig",
    "GatewayObject",
    "GatewayStats",
    "TenantStats",
    "mount_gateway_spaces",
]


@dataclass(frozen=True)
class GatewayConfig:
    """Gateway tuning knobs; defaults model a 3-disk power envelope."""

    #: Wattage ceiling over all gateway-managed disks (24 W ≈ three
    #: USB-profile disks at active draw).
    power_budget_watts: Watts = Watts(24.0)
    #: Per-disk budget charge; ``None`` derives the active draw from the
    #: first attached disk's power profile.
    watts_per_disk: Optional[Watts] = None
    scheduler: str = "batch"
    max_batch: int = 64
    #: Dispatcher back-off while budget-blocked with nothing in flight.
    poll_interval: SimSeconds = SimSeconds(1.0)
    #: Idle timeout handed to the spin-down policy loop.
    spin_down_idle_seconds: SimSeconds = SimSeconds(12.0)
    policy_check_interval: SimSeconds = SimSeconds(2.0)
    run_spin_down_policy: bool = True
    #: Use §IV-F's thrash-adaptive policy instead of the fixed timeout.
    adaptive_spin_down: bool = False
    #: Sub-block coalescing window: reads in the same space whose
    #: extents fall within this many bytes of each other share one
    #: disk pass (0 merges only overlapping/adjacent extents).  The
    #: shardstore sets this to the shard capacity so every same-shard
    #: retrieval in a batch rides one sequential pass.
    coalesce_gap_bytes: int = 0
    #: Always-spinning (hot-tier) disks: exempt from the spin-down
    #: policy loop and from budget reclaim.  They still draw watts in
    #: the power accountant, so the hot tier lives *inside* the same
    #: power envelope as cold work.
    pinned_disks: Tuple[str, ...] = ()


@dataclass(frozen=True)
class GatewayObject:
    """One addressable storage region behind the gateway."""

    space_id: str
    disk_id: str
    region_bytes: int


@dataclass
class TenantStats:
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    slo_misses: int = 0
    latencies: List[float] = field(default_factory=list)


@dataclass
class GatewayStats:
    """Exact (non-bucketed) request accounting for experiment anchors."""

    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    completed: int = 0
    failed: int = 0
    slo_misses: int = 0
    batches: int = 0
    reclaim_spin_downs: int = 0
    #: Physical media operations issued (after sub-block coalescing).
    disk_passes: int = 0
    #: Read requests served as passengers of another request's pass.
    coalesced_reads: int = 0
    latencies: List[float] = field(default_factory=list)
    per_tenant: Dict[str, TenantStats] = field(default_factory=dict)


def _percentile(values: Sequence[float], q: float) -> float:
    """Exact nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil((q / 100.0) * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


class Gateway:
    """Multi-tenant request tier over a set of mounted spaces."""

    def __init__(
        self,
        sim: Simulator,
        tenants: Sequence[TenantSpec],
        config: GatewayConfig = GatewayConfig(),
    ) -> None:
        if not tenants:
            raise ValueError("gateway needs at least one tenant")
        self.sim = sim
        self.config = config
        self._tenants: Dict[str, TenantSpec] = {}
        for spec in tenants:
            if spec.name in self._tenants:
                raise ValueError(f"duplicate tenant {spec.name!r}")
            self._tenants[spec.name] = spec
        self.queue = WeightedFairQueue(self._tenants)
        self.stats = GatewayStats()
        for name in self._tenants:
            self.stats.per_tenant[name] = TenantStats()
        self._scheduler = make_scheduler(config.scheduler, config.max_batch)
        self._objects: List[GatewayObject] = []
        self._spaces: Dict[str, MountedSpace] = {}
        self._disk_of_space: Dict[str, str] = {}
        self._disks: Dict[str, SimulatedDisk] = {}
        self._host_of: HostLookup = lambda disk_id: None
        self._power: Optional[PowerAccountant] = None
        self._in_flight: Dict[str, List[GatewayRequest]] = {}
        self._kick: Optional[Event] = None
        self._next_request_id = 0
        self._started = False
        # Request tracing: fetched once; per-disk marks of when the
        # power budget first refused a spin-up, so dispatch can split
        # each request's wait into queue_wait vs power_wait.
        self._tracer = sim.tracer
        self._power_blocked_since: Dict[str, float] = {}
        self._baseline_spin_ups = 0
        self._baseline_energy = 0.0
        # Obs instruments, fetched once (no-ops on the null registry).
        metrics = sim.metrics
        self._m_submitted = metrics.counter("gateway.submitted")
        self._m_admitted = metrics.counter("gateway.admitted")
        self._m_rejected = metrics.counter("gateway.rejected")
        self._m_completed = metrics.counter("gateway.completed")
        self._m_failed = metrics.counter("gateway.failed")
        self._m_slo_miss = metrics.counter("gateway.slo_miss")
        self._m_batches = metrics.counter("gateway.batches")
        self._m_disk_passes = metrics.counter("gateway.disk_passes")
        self._m_coalesced = metrics.counter("gateway.coalesced_reads")
        self._m_reclaims = metrics.counter("gateway.reclaim_spin_downs")
        self._m_latency = metrics.histogram("gateway.latency_seconds")
        self._m_queue_wait = metrics.histogram("gateway.queue_wait_seconds")
        self._m_batch_size = metrics.histogram(
            "gateway.batch_size", DEFAULT_DEPTH_BUCKETS
        )
        self._m_depth_total = metrics.gauge("gateway.queue_depth.total")
        self._m_depth = {
            name: metrics.gauge(f"gateway.queue_depth.{name}")
            for name in self._tenants
        }
        self._m_tenant_latency = {
            name: metrics.histogram(f"gateway.latency_seconds.{name}")
            for name in self._tenants
        }

    # -- configuration ----------------------------------------------------

    def tenant(self, name: str) -> TenantSpec:
        spec = self._tenants.get(name)
        if spec is None:
            raise GatewayError(f"unknown tenant {name!r}")
        return spec

    def tenant_specs(self) -> List[TenantSpec]:
        return list(self._tenants.values())

    def objects(self) -> List[GatewayObject]:
        return self._objects

    @property
    def power_accountant(self) -> PowerAccountant:
        """The attached budget bookkeeper (background tiers consult it)."""
        if self._power is None:
            raise GatewayError("attach() the gateway before reading power state")
        return self._power

    def attach(
        self,
        objects: Sequence[GatewayObject],
        spaces: Mapping[str, MountedSpace],
        disks: Mapping[str, SimulatedDisk],
        host_of: Optional[HostLookup] = None,
    ) -> None:
        """Bind the gateway to its mounted spaces and backing disks."""
        if self._started:
            raise GatewayError("cannot attach after start()")
        if not objects:
            raise GatewayError("gateway needs at least one object")
        self._objects = sorted(objects, key=lambda o: o.space_id)
        for obj in self._objects:
            if obj.space_id not in spaces:
                raise GatewayError(f"object {obj.space_id!r} has no mounted space")
            if obj.disk_id not in disks:
                raise GatewayError(f"object {obj.space_id!r} names unknown disk")
            self._spaces[obj.space_id] = spaces[obj.space_id]
            self._disk_of_space[obj.space_id] = obj.disk_id
            self._disks[obj.disk_id] = disks[obj.disk_id]
        if host_of is not None:
            self._host_of = host_of
        for disk_id in self.config.pinned_disks:
            if disk_id not in self._disks:
                raise GatewayError(f"pinned disk {disk_id!r} is not attached")
        watts = self.config.watts_per_disk
        if watts is None:
            first = self._disks[sorted(self._disks)[0]]
            watts = Watts(first.default_power_profile().active)
        self._power = PowerAccountant(
            self._disks, self.config.power_budget_watts, watts
        )

    def start(self) -> Event:
        """Snapshot power baselines and spawn the dispatcher (+ policy)."""
        if self._power is None:
            raise GatewayError("attach() the gateway before start()")
        if self._started:
            raise GatewayError("gateway already started")
        self._started = True
        self._baseline_spin_ups = self._total_spin_ups()
        self._baseline_energy = self._total_energy()
        if self.config.run_spin_down_policy:
            if self.config.adaptive_spin_down:
                policy: object = AdaptiveTimeoutPolicy(
                    idle_timeout=self.config.spin_down_idle_seconds
                )
            else:
                policy = FixedTimeoutPolicy(
                    idle_timeout=self.config.spin_down_idle_seconds
                )
            pinned = set(self.config.pinned_disks)
            policy_disks = {
                disk_id: disk
                for disk_id, disk in self._disks.items()
                if disk_id not in pinned
            }
            if policy_disks:
                run_policy(
                    self.sim,
                    policy_disks,
                    policy,
                    check_interval=self.config.policy_check_interval,
                )
        return self.sim.process(self._dispatcher())

    # -- admission --------------------------------------------------------

    def submit(
        self,
        request: Union[GatewayOp, str, None] = None,
        space_id: Optional[str] = None,
        offset: Optional[int] = None,
        size: Optional[int] = None,
        is_read: bool = True,
        *,
        tenant: Optional[str] = None,
    ) -> GatewayRequest:
        """Admit one typed op (or raise a typed admission error).

        The supported call shape is a single :class:`ReadObject`,
        :class:`WriteObject` or :class:`ReadRange`.  The legacy
        positional shape ``submit(tenant, space_id, offset, size,
        is_read)`` (and its keyword spelling with ``tenant=``) still
        works but emits a :class:`DeprecationWarning` and adapts onto
        the typed path.
        """
        if isinstance(request, GATEWAY_OP_TYPES):
            if space_id is not None or offset is not None or size is not None:
                raise TypeError(
                    "submit() takes a single typed op; positional block "
                    "coordinates cannot be combined with it"
                )
            op = request
        else:
            legacy_tenant = tenant if tenant is not None else request
            if (
                not isinstance(legacy_tenant, str)
                or space_id is None
                or offset is None
                or size is None
            ):
                raise TypeError(
                    "submit() expects a ReadObject/WriteObject/ReadRange "
                    "(or the deprecated tenant/space_id/offset/size shape)"
                )
            warnings.warn(
                "Gateway.submit(tenant, space_id, offset, size, is_read) is "
                "deprecated; submit a ReadObject/WriteObject/ReadRange "
                "carrying an ObjectRef instead",
                DeprecationWarning,
                stacklevel=2,
            )
            ref = ObjectRef(space_id=space_id, offset=offset, size=size)
            if is_read:
                op = ReadObject(tenant=legacy_tenant, ref=ref)
            else:
                op = WriteObject(tenant=legacy_tenant, ref=ref)
        return self.submit_op(op)

    def submit_op(self, op: GatewayOp) -> GatewayRequest:
        """Admit one typed op (the non-overloaded entry point)."""
        op_space, op_offset, op_size, op_is_read = resolve_op(op)
        op_tenant = op.tenant
        self.stats.submitted += 1
        self._m_submitted.inc()
        spec = self._tenants.get(op_tenant)
        disk_id = self._disk_of_space.get(op_space)
        if disk_id is None:
            raise GatewayError(f"unknown space {op_space!r}")
        now = self.sim.now
        request = GatewayRequest(
            request_id=self._next_request_id,
            tenant=op_tenant,
            space_id=op_space,
            disk_id=disk_id,
            offset=op_offset,
            size=op_size,
            is_read=op_is_read,
            arrival=now,
            deadline=now + (spec.slo_seconds if spec is not None else 0.0),
            ref=op.ref,
        )
        if self._tracer.enabled:
            request.trace = self._tracer.start(
                "gateway.request",
                kind="request",
                tenant=op_tenant,
                request_id=request.request_id,
                space_id=op_space,
                disk_id=disk_id,
                size=op_size,
                is_read=op_is_read,
                deadline=request.deadline,
                object_id=op.ref.object_id,
            )
        try:
            self.queue.push(request)
        except GatewayError as exc:
            self.stats.rejected += 1
            self._m_rejected.inc()
            if spec is not None:
                self.stats.per_tenant[op_tenant].rejected += 1
            request.trace.event("admission.rejected", reason=str(exc))
            request.trace.finish("rejected")
            raise
        self._next_request_id += 1
        self.stats.admitted += 1
        self._m_admitted.inc()
        self._update_depth_gauges()
        self._wake()
        return request

    # -- dispatch loop ----------------------------------------------------

    def outstanding(self) -> int:
        """Requests admitted but not yet completed or failed."""
        in_flight = sum(len(batch) for batch in self._in_flight.values())
        return self.queue.total_depth() + in_flight

    def drained(self) -> bool:
        return self.outstanding() == 0

    def _wake(self) -> None:
        kick = self._kick
        if kick is not None and not kick.triggered:
            kick.succeed()

    def _poll(self, kick: Event) -> None:
        """Deferred poll: wake the dispatcher iff it still waits on ``kick``.

        Scheduled through :meth:`Simulator.defer`, so a budget-blocked
        dispatcher costs one queued callable per poll interval instead
        of a Timeout plus an ``any_of`` composite.  A stale poll (the
        dispatcher already moved on to a newer kick) is a no-op.
        """
        if self._kick is kick and not kick.triggered:
            kick.succeed()

    def _dispatcher(self) -> Generator[Event, None, None]:
        while True:
            kick = self.sim.event()
            self._kick = kick
            dispatched = self._dispatch_ready()
            if self.queue.total_depth() > 0 and not dispatched:
                if self._reclaim_idle():
                    continue  # freed watts; try to dispatch again now
                if not self._in_flight:
                    # Budget-blocked with nothing running: poll so the
                    # spin-down policy's progress is eventually seen.
                    self.sim.defer(
                        self.config.poll_interval,
                        lambda kick=kick: self._poll(kick),
                    )
            yield kick

    def _dispatch_ready(self) -> bool:
        """Grant batches while the budget allows; True if any started."""
        power = self._power
        assert power is not None  # start() guarantees attach() ran
        pending = [
            entry
            for entry in self.queue.pending_by_disk()
            if entry.disk_id not in self._in_flight
        ]
        if not pending:
            return False
        busy_hosts: List[str] = []
        for disk_id in sorted(self._in_flight):
            host = self._host_of(disk_id)
            if host is not None:
                busy_hosts.append(host)
        dispatched = False
        tracing = self._tracer.enabled
        for entry in self._scheduler.order(pending, busy_hosts, self._host_of):
            if not power.can_afford(entry.disk_id):
                if tracing:
                    # First refusal marks when the budget became the
                    # binding constraint for this disk's queued work.
                    self._power_blocked_since.setdefault(
                        entry.disk_id, self.sim.now
                    )
                if self._scheduler.head_of_line:
                    break  # the naive baseline stalls behind its head
                continue  # already-spinning disks may still be free
            batch = self.queue.take_for_disk(
                entry.disk_id, self._scheduler.batch_limit(entry)
            )
            if not batch:
                continue
            power.grant(entry.disk_id)
            blocked_since = self._power_blocked_since.pop(entry.disk_id, None)
            self._in_flight[entry.disk_id] = batch
            now = self.sim.now
            for request in batch:
                request.state = RequestState.DISPATCHED
                request.dispatched_at = now
                request.attempts += 1
                self._m_queue_wait.observe(now - request.arrival)
                if tracing:
                    # queue_wait runs from arrival until the budget
                    # became binding (or until now if it never was);
                    # the rest of the wait is power_wait.
                    if blocked_since is None:
                        queue_end = now
                    else:
                        queue_end = min(max(request.arrival, blocked_since), now)
                    request.trace.phase_at("queue_wait", queue_end)
                    request.trace.phase("power_wait")
            self.stats.batches += 1
            self._m_batches.inc()
            self._m_batch_size.observe(float(len(batch)))
            self.sim.process(self._serve_batch(entry.disk_id, batch))
            dispatched = True
        if dispatched:
            self._update_depth_gauges()
        return dispatched

    def _serve_batch(
        self, disk_id: str, batch: List[GatewayRequest]
    ) -> Generator[Event, None, None]:
        try:
            passes = coalesce_batch(batch, self.config.coalesce_gap_bytes)
            for disk_pass in passes:
                yield from self._serve_pass(disk_pass)
        finally:
            self._in_flight.pop(disk_id, None)
            power = self._power
            if power is not None:
                power.release(disk_id)
            self._wake()

    def _serve_pass(self, disk_pass: DiskPass) -> Generator[Event, None, None]:
        """Issue one physical media operation; complete every member.

        Single-member passes go through the plain read/write path (the
        legacy behaviour, byte for byte).  Multi-member read passes
        issue one vectored read over the members' extents — the lead
        (first-sorted) request's trace rides the wire; passenger
        requests get their post-queue time attributed to ``transfer``
        once the shared pass lands.
        """
        space = self._spaces[disk_pass.space_id]
        members = disk_pass.requests
        self.stats.disk_passes += 1
        self._m_disk_passes.inc()
        for request in members:
            # Time spent behind earlier passes of the same batch.
            request.trace.phase("batch_wait")
        try:
            if len(members) == 1:
                request = members[0]
                if request.is_read:
                    yield from space.read(
                        request.offset, request.size, trace=request.trace
                    )
                else:
                    yield from space.write(
                        request.offset, request.size, trace=request.trace
                    )
            else:
                self.stats.coalesced_reads += len(members) - 1
                self._m_coalesced.inc(len(members) - 1)
                lead = members[0]
                extents = [
                    (request.offset, request.size) for request in members
                ]
                yield from space.readv(extents, trace=lead.trace)
                for request in members[1:]:
                    request.trace.event(
                        "gateway.coalesced",
                        lead_request_id=lead.request_id,
                        pass_offset=disk_pass.offset,
                        pass_size=disk_pass.size,
                    )
                    request.trace.phase("transfer")
        except StorageUnavailableError as exc:
            for request in members:
                self._finish(request, failure=str(exc))
        else:
            for request in members:
                self._finish(request, failure=None)

    def _finish(self, request: GatewayRequest, failure: Optional[str]) -> None:
        request.completed_at = self.sim.now
        tenant = self.stats.per_tenant.get(request.tenant)
        if failure is not None:
            request.state = RequestState.FAILED
            request.failure = failure
            self.stats.failed += 1
            self._m_failed.inc()
            if tenant is not None:
                tenant.failed += 1
            request.trace.annotate(slo_missed=request.missed_slo())
            request.trace.finish("failed")
            self._run_completion(request)
            return
        request.state = RequestState.COMPLETED
        latency = request.completed_at - request.arrival
        self.stats.completed += 1
        self.stats.latencies.append(latency)
        self._m_completed.inc()
        self._m_latency.observe(latency)
        if tenant is not None:
            tenant.completed += 1
            tenant.latencies.append(latency)
            self._m_tenant_latency[request.tenant].observe(latency)
        missed = request.missed_slo()
        if missed:
            self.stats.slo_misses += 1
            self._m_slo_miss.inc()
            if tenant is not None:
                tenant.slo_misses += 1
        request.trace.annotate(slo_missed=missed)
        request.trace.finish("ok")
        self._run_completion(request)

    def _run_completion(self, request: GatewayRequest) -> None:
        """Fire the request's completion hook exactly once."""
        hook = request.on_complete
        if hook is None:
            return
        request.on_complete = None
        hook(request)

    def _reclaim_idle(self) -> bool:
        """Spin down one idle disk to free budget for queued work.

        Prefers idle disks with no queued requests (spinning them down
        costs nothing), then least-recently-used among the rest — the
        classic trade of one extra spin cycle for forward progress.
        """
        queued_disks = {entry.disk_id for entry in self.queue.pending_by_disk()}
        pinned = set(self.config.pinned_disks)
        candidates: List[Tuple[int, float, str]] = []
        for disk_id in sorted(self._disks):
            if disk_id in self._in_flight or disk_id in pinned:
                continue
            power = self._power
            if power is not None and power.granted(disk_id):
                continue
            disk = self._disks[disk_id]
            if disk.power_state is not DiskPowerState.IDLE:
                continue
            candidates.append(
                (1 if disk_id in queued_disks else 0, disk.idle_since, disk_id)
            )
        if not candidates:
            return False
        candidates.sort()
        _, _, victim = candidates[0]
        self._disks[victim].spin_down()
        self.stats.reclaim_spin_downs += 1
        self._m_reclaims.inc()
        return True

    def _update_depth_gauges(self) -> None:
        depths = self.queue.depths()
        for name in self._m_depth:
            self._m_depth[name].set(float(depths.get(name, 0)))
        self._m_depth_total.set(float(sum(depths.values())))

    # -- accounting -------------------------------------------------------

    def _total_spin_ups(self) -> int:
        return sum(
            self._disks[disk_id].states.spin_up_count
            for disk_id in sorted(self._disks)
        )

    def _total_energy(self) -> float:
        return sum(
            self._disks[disk_id].energy_joules() for disk_id in sorted(self._disks)
        )

    def spin_ups(self) -> int:
        """Disk spin-ups since :meth:`start` across gateway disks."""
        return self._total_spin_ups() - self._baseline_spin_ups

    def energy_joules(self) -> float:
        """Disk energy since :meth:`start` across gateway disks."""
        return self._total_energy() - self._baseline_energy

    def summary(self) -> Dict[str, object]:
        """Exact request/power accounting for experiments and benches."""
        stats = self.stats
        per_tenant: Dict[str, Dict[str, float]] = {}
        for name in stats.per_tenant:
            tenant = stats.per_tenant[name]
            per_tenant[name] = {
                "completed": float(tenant.completed),
                "failed": float(tenant.failed),
                "rejected": float(tenant.rejected),
                "slo_misses": float(tenant.slo_misses),
                "latency_p50": _percentile(tenant.latencies, 50.0),
                "latency_p99": _percentile(tenant.latencies, 99.0),
            }
        mean = (
            sum(stats.latencies) / len(stats.latencies) if stats.latencies else 0.0
        )
        return {
            "scheduler": self._scheduler.name,
            "power_budget_watts": self.config.power_budget_watts,
            "submitted": stats.submitted,
            "admitted": stats.admitted,
            "rejected": stats.rejected,
            "completed": stats.completed,
            "failed": stats.failed,
            "slo_misses": stats.slo_misses,
            "batches": stats.batches,
            "disk_passes": stats.disk_passes,
            "coalesced_reads": stats.coalesced_reads,
            "reclaim_spin_downs": stats.reclaim_spin_downs,
            "latency_mean": mean,
            "latency_p50": _percentile(stats.latencies, 50.0),
            "latency_p99": _percentile(stats.latencies, 99.0),
            "spin_ups": self.spin_ups(),
            "energy_joules": self.energy_joules(),
            "per_tenant": per_tenant,
        }


def mount_gateway_spaces(
    deployment: "Deployment",
    space_bytes: int,
    client_name: str = "gateway0",
    service: str = "gateway",
    max_spaces: Optional[int] = None,
) -> Tuple[List[GatewayObject], Dict[str, MountedSpace]]:
    """Allocate and mount one space per distinct disk for a gateway.

    Runs the allocation conversation synchronously on the deployment's
    simulator (call after :meth:`Deployment.settle`).  Returns
    ``(objects, spaces)`` ready for :meth:`Gateway.attach`; allocation
    uses ``exclude_disks`` so every object lands on its own spindle.
    """
    client = deployment.new_client(client_name, service=service)
    limit = len(deployment.disks) if max_spaces is None else max_spaces
    objects: List[GatewayObject] = []
    spaces: Dict[str, MountedSpace] = {}

    def setup() -> Generator[Event, None, None]:
        used_disks: List[str] = []
        for _ in range(limit):
            info = yield from client.allocate(
                space_bytes, exclude_disks=list(used_disks)
            )
            space = yield from client.mount(info["space_id"])
            _, disk_id, _ = parse_space_id(info["space_id"])
            used_disks.append(disk_id)
            objects.append(
                GatewayObject(
                    space_id=info["space_id"],
                    disk_id=disk_id,
                    region_bytes=space_bytes,
                )
            )
            spaces[info["space_id"]] = space

    deployment.sim.run_until_event(deployment.sim.process(setup()))
    return objects, spaces
