"""Power-aware cold-read batch scheduling (and the naive baseline).

The gateway's core bet is the paper's (§IV-F): spinning a cold disk up
costs 8 s and peak current, so the scheduler should (a) never have more
disks drawing power than a configured wattage budget allows, and
(b) once it pays for a spin-up, drain *every* queued request for that
disk in one batch, amortizing the spin-up across the burst.

:class:`PowerAccountant` tracks the budget.  A disk "draws power" when
its spin state is anything but SPUN_DOWN/POWERED_OFF; disks the
scheduler has granted a batch to but that have not yet left SPUN_DOWN
are carried in a grant set so two same-timestamp grants cannot
oversubscribe the budget.

:class:`ColdReadBatchScheduler` orders candidate disks by (failure
unit not already busy, earliest deadline, earliest arrival, disk id):
spreading concurrent batches across failure units first means a single
endpoint death strands at most one in-flight batch, then
earliest-deadline-first keeps SLO misses down.

:class:`FifoScheduler` is the deliberately naive baseline the
benchmark compares against: strict global arrival order, one request
per dispatch, head-of-line blocking when the budget is exhausted — the
behaviour of a request tier with no power awareness at all.

:func:`coalesce_batch` is the sub-block pass planner: once a batch is
granted, read requests landing in the same space whose extents overlap
(or fall within a configured gap) are merged into one :class:`DiskPass`
— one sequential media operation serving many object reads.  This is
what makes shardstore retrievals cheap: N objects packed in one shard
cost one disk pass, not N seeks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.disk.device import SimulatedDisk
from repro.disk.states import DiskPowerState

from repro.gateway.queues import PendingDisk
from repro.gateway.request import GatewayRequest
from repro.units import Watts

__all__ = [
    "ColdReadBatchScheduler",
    "DiskPass",
    "FifoScheduler",
    "PowerAccountant",
    "Scheduler",
    "coalesce_batch",
    "make_scheduler",
]

#: Spin states that draw meaningful power (budget-relevant).
_DRAWING_STATES = (
    DiskPowerState.SPINNING_UP,
    DiskPowerState.IDLE,
    DiskPowerState.ACTIVE,
)

HostLookup = Callable[[str], Optional[str]]


class PowerAccountant:
    """Watts bookkeeping for a set of gateway-managed disks."""

    def __init__(
        self,
        disks: Mapping[str, SimulatedDisk],
        budget_watts: Watts,
        watts_per_disk: Watts,
    ) -> None:
        if budget_watts <= 0 or watts_per_disk <= 0:
            raise ValueError("power budget and per-disk watts must be positive")
        self.disks = dict(disks)
        self.budget_watts = budget_watts
        self.watts_per_disk = watts_per_disk
        # Disks granted a batch while still spun down: they will draw
        # power as soon as the batch's first I/O lands, so their watts
        # stay reserved until the state machine confirms the spin-up.
        self._granted: Dict[str, Watts] = {}

    def drawing(self, disk_id: str) -> bool:
        """Whether the disk currently draws (budget-relevant) power."""
        return self.disks[disk_id].power_state in _DRAWING_STATES

    def in_use_watts(self) -> Watts:
        """Watts consumed by spinning disks plus outstanding grants."""
        watts = 0.0
        for disk_id in sorted(self.disks):
            if self.drawing(disk_id):
                watts += self.watts_per_disk
                self._granted.pop(disk_id, None)
        return Watts(watts + sum(self._granted.values()))

    def cost_of(self, disk_id: str) -> Watts:
        """Marginal watts of dispatching to ``disk_id`` right now."""
        if self.drawing(disk_id) or disk_id in self._granted:
            return Watts(0.0)
        return self.watts_per_disk

    def can_afford(self, disk_id: str) -> bool:
        return self.in_use_watts() + self.cost_of(disk_id) <= self.budget_watts

    def idle_watts(self) -> Watts:
        """Headroom under the budget right now (never negative).

        Background work (tier demotion, compaction) is deadline-free:
        it should dispatch only when this headroom covers its disk, so
        it soaks otherwise-wasted budget instead of queueing against
        foreground cold reads.
        """
        return Watts(max(0.0, self.budget_watts - self.in_use_watts()))

    def grant(self, disk_id: str) -> None:
        """Reserve watts for a still-spun-down disk's imminent batch."""
        if not self.drawing(disk_id):
            self._granted[disk_id] = self.watts_per_disk

    def release(self, disk_id: str) -> None:
        self._granted.pop(disk_id, None)

    def granted(self, disk_id: str) -> bool:
        return disk_id in self._granted


class ColdReadBatchScheduler:
    """Group per-disk batches; spread across failure units, then EDF."""

    name = "batch"
    #: A blocked candidate does not stall later ones (no head-of-line).
    head_of_line = False

    def __init__(self, max_batch: int = 64) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.max_batch = max_batch

    def order(
        self,
        pending: Sequence[PendingDisk],
        busy_hosts: Sequence[str],
        host_of: HostLookup,
    ) -> List[PendingDisk]:
        busy = sorted(set(busy_hosts))

        def key(entry: PendingDisk) -> Tuple[int, float, float, str]:
            host = host_of(entry.disk_id)
            return (
                1 if host in busy else 0,
                entry.earliest_deadline,
                entry.earliest_arrival,
                entry.disk_id,
            )

        return sorted(pending, key=key)

    def batch_limit(self, entry: PendingDisk) -> int:
        return min(entry.count, self.max_batch)


class FifoScheduler:
    """Naive baseline: strict arrival order, one request at a time."""

    name = "fifo"
    head_of_line = True

    def order(
        self,
        pending: Sequence[PendingDisk],
        busy_hosts: Sequence[str],
        host_of: HostLookup,
    ) -> List[PendingDisk]:
        del busy_hosts, host_of  # the baseline is power- and fault-oblivious
        return sorted(pending, key=lambda entry: entry.oldest_request_id)

    def batch_limit(self, entry: PendingDisk) -> int:
        del entry
        return 1


@dataclass
class DiskPass:
    """One physical media operation serving one or more batch requests.

    The envelope ``[offset, offset + size)`` covers every member's
    extent; for multi-member passes the gateway issues a single
    vectored read (``MountedSpace.readv``) over the envelope and
    completes every member from it.
    """

    space_id: str
    offset: int
    size: int
    is_read: bool
    requests: List[GatewayRequest] = field(default_factory=list)

    @property
    def end(self) -> int:
        return self.offset + self.size


def coalesce_batch(
    batch: Sequence[GatewayRequest], gap_bytes: int = 0
) -> List[DiskPass]:
    """Plan the disk passes for one granted batch.

    Reads within the same space are sorted by (offset, request_id) and
    merged whenever the next extent starts within ``gap_bytes`` of the
    running envelope's end (0 merges only overlapping/adjacent
    extents).  Writes are never merged — each is its own pass, in batch
    order.  Pass order follows each pass's earliest member's position
    in the original batch, so a batch with nothing to merge serves in
    exactly the legacy order.
    """
    if gap_bytes < 0:
        raise ValueError("gap_bytes must be >= 0")
    position: Dict[int, int] = {
        request.request_id: index for index, request in enumerate(batch)
    }
    passes: List[DiskPass] = []
    reads_by_space: Dict[str, List[GatewayRequest]] = {}
    for request in batch:
        if request.is_read:
            reads_by_space.setdefault(request.space_id, []).append(request)
        else:
            passes.append(
                DiskPass(
                    space_id=request.space_id,
                    offset=request.offset,
                    size=request.size,
                    is_read=False,
                    requests=[request],
                )
            )
    for space_id in sorted(reads_by_space):
        ordered = sorted(
            reads_by_space[space_id],
            key=lambda request: (request.offset, request.request_id),
        )
        current: Optional[DiskPass] = None
        for request in ordered:
            if current is not None and request.offset <= current.end + gap_bytes:
                new_end = max(current.end, request.offset + request.size)
                current.size = new_end - current.offset
                current.requests.append(request)
                continue
            current = DiskPass(
                space_id=space_id,
                offset=request.offset,
                size=request.size,
                is_read=True,
                requests=[request],
            )
            passes.append(current)
    passes.sort(
        key=lambda p: min(position[request.request_id] for request in p.requests)
    )
    return passes


Scheduler = Union[ColdReadBatchScheduler, FifoScheduler]


def make_scheduler(name: str, max_batch: int = 64) -> Scheduler:
    """Build a scheduler strategy by name (``batch`` or ``fifo``)."""
    if name == "batch":
        return ColdReadBatchScheduler(max_batch=max_batch)
    if name == "fifo":
        return FifoScheduler()
    raise ValueError(f"unknown scheduler {name!r} (expected 'batch' or 'fifo')")
