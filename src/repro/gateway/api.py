"""Object-level request types for the gateway (the typed submit API).

The original gateway spoke raw block coordinates —
``submit(tenant, space_id, offset, size, is_read)`` — which cannot
express the shardstore's object workload: a retrieval is "this object
inside that shard", i.e. a *sub-range* of a larger placed extent, and
the scheduler wants to know two reads share a shard so it can coalesce
them into one disk pass.

The redesigned surface is three small frozen dataclasses, each carrying
an :class:`ObjectRef` (the named, placed extent):

* :class:`ReadObject` / :class:`WriteObject` — whole-extent I/O, the
  typed equivalents of the old positional call;
* :class:`ReadRange` — a sub-range of the referenced extent, the
  shardstore's retrieval primitive (``start``/``length`` are relative
  to the ref, so callers never re-derive absolute disk offsets).

Every op resolves to the physical ``(space_id, offset, size, is_read)``
tuple via :func:`resolve_op`; the gateway keeps the old positional
signature alive behind a ``DeprecationWarning`` shim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

__all__ = [
    "GatewayOp",
    "ObjectRef",
    "ReadObject",
    "ReadRange",
    "WriteObject",
    "resolve_op",
]


@dataclass(frozen=True)
class ObjectRef:
    """A named, placed extent: ``object_id`` at ``(space_id, offset, size)``.

    ``object_id`` is advisory (it labels traces and audit trails); the
    physical placement is authoritative.  The shardstore puts the shard
    name here so a retrieval's trace names the shard it hit.
    """

    space_id: str
    offset: int
    size: int
    object_id: str = ""

    def __post_init__(self) -> None:
        if not self.space_id:
            raise ValueError("ObjectRef needs a space_id")
        if self.offset < 0:
            raise ValueError(f"ObjectRef offset must be >= 0, got {self.offset}")
        if self.size < 1:
            raise ValueError(f"ObjectRef size must be >= 1, got {self.size}")

    @property
    def end(self) -> int:
        return self.offset + self.size


@dataclass(frozen=True)
class ReadObject:
    """Read the whole referenced extent."""

    tenant: str
    ref: ObjectRef


@dataclass(frozen=True)
class WriteObject:
    """Write the whole referenced extent (a shard flush, for example)."""

    tenant: str
    ref: ObjectRef


@dataclass(frozen=True)
class ReadRange:
    """Read ``length`` bytes starting ``start`` bytes into the ref.

    The shardstore retrieval primitive: the ref is the placed shard
    extent, ``start``/``length`` locate one packed object inside it.
    Offsets are *relative to the ref* so callers never handle absolute
    disk coordinates.
    """

    tenant: str
    ref: ObjectRef
    start: int
    length: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"ReadRange start must be >= 0, got {self.start}")
        if self.length < 1:
            raise ValueError(f"ReadRange length must be >= 1, got {self.length}")
        if self.start + self.length > self.ref.size:
            raise ValueError(
                f"ReadRange [{self.start}, {self.start + self.length}) "
                f"exceeds ref size {self.ref.size}"
            )


GatewayOp = Union[ReadObject, WriteObject, ReadRange]

#: isinstance tuple for shim dispatch in :meth:`Gateway.submit`.
GATEWAY_OP_TYPES: Tuple[type, ...] = (ReadObject, WriteObject, ReadRange)


def resolve_op(op: GatewayOp) -> Tuple[str, int, int, bool]:
    """Resolve an op to physical ``(space_id, offset, size, is_read)``."""
    if isinstance(op, ReadRange):
        return (op.ref.space_id, op.ref.offset + op.start, op.length, True)
    if isinstance(op, ReadObject):
        return (op.ref.space_id, op.ref.offset, op.ref.size, True)
    if isinstance(op, WriteObject):
        return (op.ref.space_id, op.ref.offset, op.ref.size, False)
    raise TypeError(f"not a gateway op: {op!r}")
