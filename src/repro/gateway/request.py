"""Typed requests and errors for the gateway tier.

A :class:`GatewayRequest` is one logical client operation flowing
through the request tier: tagged with its tenant, target space/disk,
arrival time and SLO deadline at admission, and carried through the
weighted-fair queue, the batch scheduler and the ClientLib I/O path
unchanged — the object *is* the audit trail (every state transition
stamps it), which is what the exactly-once tests assert against.

Admission failures are typed (:class:`QueueFullError`,
:class:`UnknownTenantError`) so open-loop generators and upper layers
can distinguish "backpressure, shed the request" from "misconfigured
tenant" without string matching.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.obs.trace import NULL_TRACE, TraceContext

from repro.gateway.api import ObjectRef

__all__ = [
    "AdmissionError",
    "GatewayError",
    "GatewayRequest",
    "QueueFullError",
    "RequestState",
    "UnknownTenantError",
]


class GatewayError(Exception):
    """Base class for all gateway-tier errors."""


class AdmissionError(GatewayError):
    """A request was refused at the door (admission control)."""

    def __init__(self, tenant: str, reason: str) -> None:
        super().__init__(f"{tenant}: {reason}")
        self.tenant = tenant
        self.reason = reason


class QueueFullError(AdmissionError):
    """The tenant's queue is at its bounded depth; request rejected."""

    def __init__(self, tenant: str, depth: int, limit: int) -> None:
        super().__init__(tenant, f"queue full ({depth}/{limit})")
        self.depth = depth
        self.limit = limit


class UnknownTenantError(AdmissionError):
    """Request names a tenant the gateway was not configured with."""

    def __init__(self, tenant: str) -> None:
        super().__init__(tenant, "unknown tenant")


class RequestState(enum.Enum):
    QUEUED = "queued"
    DISPATCHED = "dispatched"
    COMPLETED = "completed"
    FAILED = "failed"


@dataclass
class GatewayRequest:
    """One admitted client operation and its lifecycle stamps."""

    request_id: int
    tenant: str
    space_id: str
    disk_id: str
    offset: int
    size: int
    is_read: bool
    arrival: float
    deadline: float
    fair_tag: float = 0.0
    state: RequestState = RequestState.QUEUED
    attempts: int = 0
    dispatched_at: Optional[float] = None
    completed_at: Optional[float] = None
    failure: Optional[str] = field(default=None, repr=False)
    #: The request's causal trace, carried explicitly through the whole
    #: path (gateway -> ClientLib -> iSCSI -> disk).  Defaults to the
    #: shared no-op context, so untraced runs pay nothing.
    trace: TraceContext = field(default=NULL_TRACE, repr=False)
    #: The object-level ref this request resolved from (``None`` for
    #: legacy positional submissions).  ``offset``/``size`` stay the
    #: physical coordinates; the ref preserves the logical extent so
    #: the scheduler can coalesce same-extent sub-reads.
    ref: Optional[ObjectRef] = None
    #: Invoked exactly once from :meth:`Gateway._finish`, after the
    #: request reached COMPLETED or FAILED — the shardstore's ack hook.
    on_complete: Optional[Callable[["GatewayRequest"], None]] = field(
        default=None, repr=False
    )

    @property
    def latency(self) -> Optional[float]:
        """Arrival-to-completion sim seconds; ``None`` while in flight."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.arrival

    @property
    def queue_wait(self) -> Optional[float]:
        """Arrival-to-dispatch sim seconds; ``None`` while queued."""
        if self.dispatched_at is None:
            return None
        return self.dispatched_at - self.arrival

    def missed_slo(self) -> bool:
        """Whether the request completed after its deadline."""
        return self.completed_at is not None and self.completed_at > self.deadline
