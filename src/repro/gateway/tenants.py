"""Tenant specifications and the open-loop traffic generator.

The generator is *open loop*: arrivals are drawn from a per-tenant
Poisson process whose rate is ``users × rate_per_user``, so a tenant
modelling two million archival users costs exactly one simulation
process, not two million.  Closed-loop drivers (``repro.workload
.iometer``) throttle themselves to the storage's service rate and hide
saturation; an open-loop front door keeps offering load while queues
grow, which is how admission control and SLO misses become visible.

Arrivals can also be replayed from an explicit trace
(:class:`TraceArrival` lists), for tests and for feeding recorded
workloads through the same admission path.

All randomness flows through named :class:`~repro.sim.rng.RngRegistry`
streams (``gateway.arrivals.<tenant>``), one per tenant, so adding a
tenant never perturbs another tenant's arrival sequence.

Arrival draws are generated in bulk: :meth:`OpenLoopTrafficGenerator
._draw_arrivals` precomputes :data:`ARRIVAL_BATCH` arrivals per pass in
one tight loop with locally bound RNG methods and a precomputed size-mix
total, instead of paying the attribute-lookup and ``gateway.objects()``
overhead once per event.  The batch makes **exactly the same RNG calls
in exactly the same order** as a per-arrival loop would (gap, object
index, size draw, offset, read/write draw), so a fixed seed yields a
bit-identical arrival sequence — pinned by
``tests/test_tenant_arrivals.py`` against an unbatched reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    Generator,
    List,
    Protocol,
    Sequence,
    Tuple,
    Union,
)

from repro.sim import Event, RngRegistry, Simulator
from repro.workload.specs import MB

from repro.gateway.api import ObjectRef, ReadObject, WriteObject
from repro.gateway.request import AdmissionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.gateway.gateway import Gateway


class _ArrivalStream(Protocol):
    """The slice of a named RNG stream the bulk arrival draw uses."""

    def expovariate(self, lambd: float) -> float: ...

    def randrange(self, stop: int) -> int: ...

    def random(self) -> float: ...

__all__ = ["ARRIVAL_BATCH", "OpenLoopTrafficGenerator", "TenantSpec", "TraceArrival"]

#: Arrivals precomputed per bulk draw.  Large enough to amortize the
#: per-batch setup, small enough that the draws thrown away when a
#: tenant's window ends mid-batch stay negligible.
ARRIVAL_BATCH = 128


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's traffic contract and SLO.

    ``weight`` feeds the weighted-fair queue (share of service when the
    gateway is contended); ``max_queue_depth`` is the admission bound;
    ``slo_seconds`` stamps each request's deadline at arrival.
    ``object_sizes`` is a discrete size mix: ``((size_bytes, weight),
    ...)``.
    """

    name: str
    weight: float = 1.0
    users: int = 1
    rate_per_user: float = 0.0
    read_fraction: float = 1.0
    object_sizes: Tuple[Tuple[int, float], ...] = ((4 * MB, 1.0),)
    slo_seconds: float = 60.0
    max_queue_depth: int = 256

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant needs a name")
        if self.weight <= 0:
            raise ValueError(f"{self.name}: weight must be positive")
        if self.users < 0 or self.rate_per_user < 0:
            raise ValueError(f"{self.name}: negative traffic rate")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError(f"{self.name}: read_fraction outside [0, 1]")
        if self.max_queue_depth < 1:
            raise ValueError(f"{self.name}: max_queue_depth must be >= 1")
        if not self.object_sizes or any(
            size <= 0 or share <= 0 for size, share in self.object_sizes
        ):
            raise ValueError(f"{self.name}: object_sizes must be positive pairs")

    @property
    def arrival_rate(self) -> float:
        """Aggregate offered requests/second across all logical users."""
        return self.users * self.rate_per_user


@dataclass(frozen=True)
class TraceArrival:
    """One trace-driven arrival (times are absolute sim seconds)."""

    time: float
    object_index: int
    size: int
    is_read: bool = True


@dataclass
class _TenantTraffic:
    """Per-tenant bookkeeping the generator exposes for assertions."""

    submitted: int = 0
    rejected: int = 0


class OpenLoopTrafficGenerator:
    """Drive a gateway with Poisson or trace-driven tenant arrivals."""

    def __init__(
        self,
        sim: Simulator,
        gateway: "Gateway",
        rng: RngRegistry,
        load_scale: float = 1.0,
    ) -> None:
        if load_scale < 0:
            raise ValueError("load_scale must be non-negative")
        self.sim = sim
        self.gateway = gateway
        self.rng = rng
        self.load_scale = load_scale
        self.stats: Dict[str, _TenantTraffic] = {}

    # -- arrival processes ------------------------------------------------

    def start(self, duration: float) -> List[Event]:
        """Spawn one Poisson arrival process per gateway tenant.

        Returns the processes (they end once ``duration`` sim seconds of
        arrivals have been offered).
        """
        processes: List[Event] = []
        end = self.sim.now + duration
        for spec in self.gateway.tenant_specs():
            self.stats.setdefault(spec.name, _TenantTraffic())
            if spec.arrival_rate * self.load_scale > 0.0:
                processes.append(self.sim.process(self._poisson_loop(spec, end)))
        return processes

    def replay(self, tenant: str, arrivals: Sequence[TraceArrival]) -> Event:
        """Spawn a process replaying an explicit arrival trace."""
        spec = self.gateway.tenant(tenant)
        self.stats.setdefault(spec.name, _TenantTraffic())
        ordered = sorted(arrivals, key=lambda a: (a.time, a.object_index))
        return self.sim.process(self._replay_loop(spec, ordered))

    def _poisson_loop(
        self, spec: TenantSpec, end: float
    ) -> Generator[Event, None, None]:
        rand = self.rng.stream(f"gateway.arrivals.{spec.name}")
        rate = spec.arrival_rate * self.load_scale
        sim = self.sim
        batch: List[Tuple[float, str, int, int, bool]] = []
        index = 0
        while True:
            if index >= len(batch):
                batch = self._draw_arrivals(rand, spec, rate, ARRIVAL_BATCH)
                index = 0
            gap, space_id, offset, size, is_read = batch[index]
            index += 1
            if sim.now + gap > end:
                return
            yield sim.timeout(gap)
            self._submit(spec, space_id, offset, size, is_read)

    def _draw_arrivals(
        self, rand: _ArrivalStream, spec: TenantSpec, rate: float, count: int
    ) -> List[Tuple[float, str, int, int, bool]]:
        """Precompute ``count`` arrivals: ``(gap, space_id, offset, size, is_read)``.

        The RNG calls per arrival — exponential gap, object index, size
        draw, block offset, read/write draw — happen in exactly the
        order the unbatched per-event loop made them, so the stream
        state after ``k`` consumed arrivals is identical and the arrival
        sequence for a fixed seed is bit-for-bit unchanged.  (Draws for
        arrivals past the end of the window are wasted, but the stream
        is exclusive to this tenant so nothing observes the difference.)

        The gateway's object table is fixed at deployment-attach time,
        so reading it once per batch instead of once per arrival is
        safe.
        """
        objects = self.gateway.objects()
        n_objects = len(objects)
        expovariate = rand.expovariate
        randrange = rand.randrange
        random_draw = rand.random
        sizes = spec.object_sizes
        total_share = sum(share for _, share in sizes)
        fallback_size = sizes[-1][0]
        read_fraction = spec.read_fraction
        batch: List[Tuple[float, str, int, int, bool]] = []
        append = batch.append
        for _ in range(count):
            gap = expovariate(rate)
            obj = objects[randrange(n_objects)]
            threshold = random_draw() * total_share
            cumulative = 0.0
            size = fallback_size
            for candidate, share in sizes:
                cumulative += share
                if threshold <= cumulative:
                    size = candidate
                    break
            region = obj.region_bytes
            blocks = max(1, region // size)
            offset = randrange(blocks) * size
            if offset + size > region:
                offset = max(0, region - size)
            append((gap, obj.space_id, offset, size, random_draw() < read_fraction))
        return batch

    def _replay_loop(
        self, spec: TenantSpec, arrivals: Sequence[TraceArrival]
    ) -> Generator[Event, None, None]:
        for arrival in arrivals:
            if arrival.time > self.sim.now:
                yield self.sim.timeout(arrival.time - self.sim.now)
            objects = self.gateway.objects()
            obj = objects[arrival.object_index % len(objects)]
            size = min(arrival.size, obj.region_bytes)
            self._submit(spec, obj.space_id, 0, size, arrival.is_read)

    def _submit(
        self, spec: TenantSpec, space_id: str, offset: int, size: int, is_read: bool
    ) -> None:
        traffic = self.stats[spec.name]
        ref = ObjectRef(space_id=space_id, offset=offset, size=size)
        op: Union[ReadObject, WriteObject]
        if is_read:
            op = ReadObject(tenant=spec.name, ref=ref)
        else:
            op = WriteObject(tenant=spec.name, ref=ref)
        try:
            self.gateway.submit(op)
        except AdmissionError:
            traffic.rejected += 1
        else:
            traffic.submitted += 1

    @staticmethod
    def _draw_size(spec: TenantSpec, u: float) -> int:
        """Map a uniform draw onto the tenant's discrete size mix."""
        total = sum(share for _, share in spec.object_sizes)
        threshold = u * total
        cumulative = 0.0
        for size, share in spec.object_sizes:
            cumulative += share
            if threshold <= cumulative:
                return size
        return spec.object_sizes[-1][0]
