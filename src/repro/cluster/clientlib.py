"""The UStore ClientLib (§IV-D): storage management for upper layers.

Provides the paper's client-side API: apply for new storage space,
mount allocated storage, simple directory lookup (space → host IP), and
status-change notifications.  Mounted storage behaves like a local
block device; when a failover moves the backing disk to another host,
the ClientLib retrieves the new location from the Master and remounts
automatically — the application only observes a temporarily slow I/O.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Tuple

from repro.coord.client import CoordSession
from repro.net.iscsi import IscsiInitiator, IscsiSession, SessionError
from repro.net.network import Network
from repro.net.rpc import RemoteError, RpcTimeout
from repro.obs.trace import NULL_TRACE, TraceContext
from repro.sim import Event, Simulator

__all__ = ["ClientLib", "MountedSpace", "StorageUnavailableError"]

MASTER_POINTER = "/ustore/master"


class StorageUnavailableError(Exception):
    """Remount attempts exhausted; the space is not currently servable."""


@dataclass
class IoStats:
    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    remounts: int = 0
    errors_seen: int = 0
    #: Vectored range reads issued (each serves >= 1 extents).
    readv_passes: int = 0


class MountedSpace:
    """A mounted UStore space: a remotely attached block device."""

    def __init__(self, client: "ClientLib", space_id: str, session: IscsiSession):
        self.client = client
        self.space_id = space_id
        self.session = session
        self.stats = IoStats()

    @property
    def current_host(self) -> str:
        return self.session.host_address

    def read(
        self, offset: int, size: int, trace: TraceContext = NULL_TRACE
    ) -> Generator[Event, None, dict]:
        return self._io(offset, size, is_read=True, trace=trace)

    def write(
        self, offset: int, size: int, trace: TraceContext = NULL_TRACE
    ) -> Generator[Event, None, dict]:
        return self._io(offset, size, is_read=False, trace=trace)

    def readv(
        self,
        extents: Sequence[Tuple[int, int]],
        trace: TraceContext = NULL_TRACE,
    ) -> Generator[Event, None, dict]:
        """Vectored range read: serve many ``(offset, size)`` extents.

        The extents travel as one request and the target serves their
        covering envelope in a single sequential media pass — the
        transport for the gateway's sub-block coalescing.  Failover
        behaves exactly like :meth:`read`: a ``SessionError`` triggers
        a transparent remount and the whole vector retries.
        """
        if not extents:
            raise ValueError("readv needs at least one extent")
        attempts = 0
        while True:
            scope = trace.scope()
            try:
                result = yield from self.session.readv(list(extents), scope)
                self.stats.reads += len(extents)
                self.stats.readv_passes += 1
                self.stats.bytes_read += sum(size for _, size in extents)
                return result
            except SessionError as exc:
                trace.invalidate_scopes()
                if trace.enabled:
                    trace.event(
                        "iscsi.session_error",
                        host=self.session.host_address,
                        attempt=attempts + 1,
                        error=str(exc),
                    )
                self.stats.errors_seen += 1
                attempts += 1
                if attempts > self.client.max_remount_attempts:
                    trace.phase("failover")
                    raise StorageUnavailableError(self.space_id)
                yield from self._remount(trace)

    def _io(
        self,
        offset: int,
        size: int,
        is_read: bool,
        trace: TraceContext = NULL_TRACE,
    ) -> Generator[Event, None, dict]:
        attempts = 0
        while True:
            # Fresh epoch-stamped scope per attempt: if this attempt is
            # abandoned (timeout -> remount), invalidate_scopes makes
            # any stale server-side holder of it inert.
            scope = trace.scope()
            try:
                if is_read:
                    result = yield from self.session.read(offset, size, scope)
                    self.stats.reads += 1
                    self.stats.bytes_read += size
                else:
                    result = yield from self.session.write(offset, size, scope)
                    self.stats.writes += 1
                    self.stats.bytes_written += size
                return result
            except SessionError as exc:
                trace.invalidate_scopes()
                if trace.enabled:
                    trace.event(
                        "iscsi.session_error",
                        host=self.session.host_address,
                        attempt=attempts + 1,
                        error=str(exc),
                    )
                self.stats.errors_seen += 1
                attempts += 1
                if attempts > self.client.max_remount_attempts:
                    trace.phase("failover")
                    raise StorageUnavailableError(self.space_id)
                yield from self._remount(trace)

    def _remount(
        self, trace: TraceContext = NULL_TRACE
    ) -> Generator[Event, None, None]:
        """§IV-D: fetch the new host from the Master and remount."""
        self.client._notify(self.space_id, "remounting")
        deadline = self.client.sim.now + self.client.remount_deadline
        while self.client.sim.now < deadline:
            try:
                info = yield from self.client._lookup(self.space_id)
                session = yield from self.client.initiator.login(
                    info["address"], info["target"]
                )
                self.session = session
                self.stats.remounts += 1
                self.client._notify(self.space_id, "remounted")
                if trace.enabled:
                    trace.event("clientlib.remounted", host=session.host_address)
                # Everything since the doomed attempt's last boundary —
                # the dead time plus the remount conversation — is
                # failover cost.
                trace.phase("failover")
                return
            except (SessionError, RpcTimeout, RemoteError):
                yield self.client.sim.timeout(self.client.remount_retry_interval)
        self.client._notify(self.space_id, "unavailable")
        trace.phase("failover")
        raise StorageUnavailableError(self.space_id)


class ClientLib:
    """Client-side library for allocating and mounting UStore storage."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        address: str,
        coord_servers: List[str],
        service: str = "default",
        max_remount_attempts: int = 3,
        remount_retry_interval: float = 0.5,
        remount_deadline: float = 60.0,
        io_timeout: float = 3.0,
    ):
        self.sim = sim
        self.network = network
        self.address = address
        self.service = service
        self.max_remount_attempts = max_remount_attempts
        self.remount_retry_interval = remount_retry_interval
        self.remount_deadline = remount_deadline
        self.initiator = IscsiInitiator(sim, network, address, io_timeout=io_timeout)
        self.coord = CoordSession(sim, network, f"{address}.coord", coord_servers)
        self._coord_started = False
        self._master_address: Optional[str] = None
        self._callbacks: List[Callable[[str, str], None]] = []
        self.mounted: Dict[str, MountedSpace] = {}

    # -- notifications (§IV-D) ------------------------------------------------

    def on_status_change(self, callback: Callable[[str, str], None]) -> None:
        """Register ``callback(space_id, event)`` for status changes."""
        self._callbacks.append(callback)

    def _notify(self, space_id: str, event: str) -> None:
        for callback in self._callbacks:
            callback(space_id, event)

    # -- master discovery -------------------------------------------------------

    def _ensure_coord(self) -> Generator[Event, None, None]:
        if not self._coord_started:
            yield from self.coord.start()
            self._coord_started = True

    def _discover_master(self, force: bool = False) -> Generator[Event, None, str]:
        yield from self._ensure_coord()
        if self._master_address is None or force:
            self._master_address = yield from self.coord.get_data(MASTER_POINTER)
        return self._master_address

    def _master_call(self, method: str, *args: Any, **kwargs: Any) -> Generator[Event, None, Any]:
        last: Optional[Exception] = None
        for attempt in range(4):
            try:
                master = yield from self._discover_master(force=attempt > 0)
            except (RpcTimeout, RemoteError) as exc:
                last = exc
                yield self.sim.timeout(0.5)
                continue
            try:
                result = yield from self.initiator.rpc.call(
                    master, method, *args, timeout=10.0, **kwargs
                )
                return result
            except (RpcTimeout, RemoteError) as exc:
                message = str(exc)
                if "standby" not in message and not isinstance(exc, RpcTimeout):
                    raise
                last = exc
                yield self.sim.timeout(0.5)
        raise last or RpcTimeout(method)

    def _lookup(self, space_id: str) -> Generator[Event, None, dict]:
        result = yield from self._master_call("master.lookup", space_id)
        return result

    # -- public API --------------------------------------------------------------

    def allocate(
        self,
        length: int,
        locality_hint: Optional[str] = None,
        exclude_disks: Optional[List[str]] = None,
    ) -> Generator[Event, None, dict]:
        """Apply for new storage space; returns the placement info.

        ``exclude_disks`` lets replication-aware services (like the HDFS
        overlay) force their replicas onto distinct spindles.
        """
        result = yield from self._master_call(
            "master.allocate", length, self.service, locality_hint, exclude_disks
        )
        return result

    def mount(self, space_id: str) -> Generator[Event, None, MountedSpace]:
        """Mount an allocated space as a remotely attached block device."""
        info = yield from self._lookup(space_id)
        session = yield from self.initiator.login(info["address"], info["target"])
        space = MountedSpace(self, space_id, session)
        self.mounted[space_id] = space
        return space

    def unmount(self, space_id: str) -> Generator[Event, None, None]:
        space = self.mounted.pop(space_id, None)
        if space is not None:
            yield from space.session.logout()

    def release(self, space_id: str) -> Generator[Event, None, bool]:
        """Return the space to the pool (reclaiming, §IV-A)."""
        yield from self.unmount(space_id)
        result = yield from self._master_call("master.release", space_id)
        return result

    def lookup_host(self, space_id: str) -> Generator[Event, None, str]:
        """Directory lookup: the host IP currently serving a space."""
        info = yield from self._lookup(space_id)
        return info["address"]

    def set_disk_power(self, space_id: str, action: str) -> Generator[Event, None, Any]:
        """Spin the backing disk up/down (requires exclusive ownership)."""
        result = yield from self._master_call(
            "master.set_disk_power", space_id, action, self.service
        )
        return result
