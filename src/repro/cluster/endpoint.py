"""The UStore EndPoint: one per host connected to a deploy unit (§IV-B).

Responsibilities, per the paper:

* monitor the host's status and send heartbeats (host health, visible
  disks, workload) to the Master;
* maintain liveness via an ephemeral znode in the coordination service;
* report the locally observed USB tree so the Controller can assemble
  its view of the interconnect fabric;
* expose allocated storage spaces to the network as iSCSI targets;
* run the default power policy: spin an idle disk down after a
  configurable interval, and back that interval off for disks that
  thrash (§IV-F).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

from repro.cluster.metadata import SpaceRecord
from repro.cluster.namespace import target_name
from repro.coord.client import CoordSession
from repro.disk.device import SimulatedDisk
from repro.disk.states import DiskPowerState
from repro.net.iscsi import IscsiTargetServer, StorageVolume
from repro.net.network import Network
from repro.net.rpc import RemoteError, RpcClient, RpcTimeout
from repro.sim import Event, Simulator
from repro.usbsim.bus import UsbBus

__all__ = ["EndPoint", "EndPointConfig"]

HOSTS_ROOT = "/ustore/hosts"
MASTER_POINTER = "/ustore/master"


@dataclass(frozen=True)
class EndPointConfig:
    heartbeat_interval: float = 0.5
    # §IV-F default power policy.
    spin_down_idle_seconds: float = 300.0
    power_policy_enabled: bool = False
    # Adaptive backoff: if a disk spins up more than ``thrash_limit``
    # times within ``thrash_window`` seconds, double its idle timeout.
    thrash_limit: int = 3
    thrash_window: float = 3600.0


class EndPoint:
    """Host-side agent: heartbeats, USB monitoring, target exposure."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        host_id: str,
        address: str,
        bus: UsbBus,
        disks: Dict[str, SimulatedDisk],
        coord_servers: List[str],
        config: EndPointConfig = EndPointConfig(),
    ):
        self.sim = sim
        self.network = network
        self.host_id = host_id
        self.address = address
        self.bus = bus
        self.disks = disks
        self.config = config
        self.alive = True

        self.targets = IscsiTargetServer(sim, network, address)
        self.rpc_client = RpcClient(sim, network, f"{address}.client")
        self.coord = CoordSession(sim, network, f"{address}.coord", coord_servers)
        self._master_address: Optional[str] = None
        self._exposed: Dict[str, SpaceRecord] = {}  # target name -> record
        self.expose_log: List[tuple] = []  # (time, target name)
        self._idle_timeout: Dict[str, float] = {}
        self._spin_up_times: Dict[str, List[float]] = {}
        self.heartbeats_sent = 0

        self.targets.rpc.register("endpoint.expose", self._on_expose)
        self.targets.rpc.register("endpoint.withdraw", self._on_withdraw)
        self.targets.rpc.register("endpoint.usb_view", self._on_usb_view)
        self.targets.rpc.register("endpoint.set_disk_power", self._on_set_disk_power)
        self.targets.rpc.register("endpoint.exposed_targets", self._on_exposed_targets)
        bus.register_listener(host_id, self)

        sim.process(self._startup())
        sim.process(self._heartbeat_loop())
        if config.power_policy_enabled:
            sim.process(self._power_policy_loop())

    # -- lifecycle ----------------------------------------------------------

    def crash(self) -> None:
        """Take the host down (network-wise); its disks become orphans."""
        self.alive = False
        self.network.set_alive(self.address, False)
        self.network.set_alive(f"{self.address}.client", False)
        self.network.set_alive(f"{self.address}.coord", False)

    def recover(self) -> None:
        self.alive = True
        self.network.set_alive(self.address, True)
        self.network.set_alive(f"{self.address}.client", True)
        self.network.set_alive(f"{self.address}.coord", True)
        self._master_address = None
        if self.coord.expired:
            # The cluster expired our session while we were dark; a real
            # host would reconnect with a fresh ZooKeeper session.  The
            # old coord node address is reused, so retire it first.
            self.network.set_alive(f"{self.address}.coord", False)
            self._coord_generation = getattr(self, "_coord_generation", 0) + 1
            self.coord = CoordSession(
                self.sim,
                self.network,
                f"{self.address}.coord{self._coord_generation}",
                self.coord.servers,
            )
            self.sim.process(self._startup())

    def _startup(self) -> Generator[Event, None, None]:
        yield from self.coord.start()
        for path in ("/ustore", HOSTS_ROOT):
            try:
                yield from self.coord.create(path)
            except RemoteError:
                pass  # someone else created it first
        try:
            yield from self.coord.create(
                f"{HOSTS_ROOT}/{self.host_id}", data=self.address, ephemeral=True
            )
        except RemoteError:
            pass

    # -- hot-plug listener ----------------------------------------------------

    def on_attach(self, disk_id: str) -> None:
        """A disk appeared: nothing to expose until the Master says so."""

    def on_detach(self, disk_id: str) -> None:
        """A disk vanished: withdraw its targets so sessions fail fast."""
        stale = [t for t, rec in self._exposed.items() if rec.disk_id == disk_id]
        for target in stale:
            self.targets.withdraw(target)
            del self._exposed[target]

    # -- heartbeats ------------------------------------------------------------

    def _disk_report(self) -> Dict[str, str]:
        report = {}
        for disk_id in self.bus.os_view(self.host_id):
            disk = self.disks.get(disk_id)
            if disk is None:
                continue
            if disk.failed:
                state = "failed"
            elif disk.power_state is DiskPowerState.SPUN_DOWN:
                state = "spun_down"
            elif disk.power_state is DiskPowerState.POWERED_OFF:
                state = "powered_off"
            else:
                state = "online"
            report[disk_id] = state
        return report

    def _heartbeat_loop(self) -> Generator[Event, None, None]:
        while True:
            yield self.sim.timeout(self.config.heartbeat_interval)
            if not self.alive:
                continue
            master = yield from self._discover_master()
            if master is None:
                continue
            payload = {
                "host_id": self.host_id,
                "address": self.address,
                "disks": self._disk_report(),
                "exposed": len(self._exposed),
            }
            try:
                yield from self.rpc_client.call(
                    master, "master.heartbeat", payload, timeout=1.0
                )
                self.heartbeats_sent += 1
            except (RpcTimeout, RemoteError):
                self._master_address = None  # re-discover next round

    def _discover_master(self) -> Generator[Event, None, Optional[str]]:
        if self._master_address is not None:
            return self._master_address
        try:
            exists = yield from self.coord.exists(MASTER_POINTER)
            if exists:
                self._master_address = yield from self.coord.get_data(MASTER_POINTER)
        except (RpcTimeout, RemoteError):
            return None
        return self._master_address

    # -- RPC handlers ---------------------------------------------------------

    def _on_expose(self, record_dict: dict) -> str:
        record = SpaceRecord.from_dict(record_dict)
        if record.disk_id not in self.bus.os_view(self.host_id):
            raise RuntimeError(f"{self.host_id} does not see {record.disk_id}")
        name = target_name(record.space_id)
        if name not in self.targets.exposed_targets():
            volume = StorageVolume(
                volume_id=record.space_id,
                disk=self.disks[record.disk_id],
                offset=record.offset,
                length=record.length,
            )
            self.targets.expose(name, volume)
            self.expose_log.append((self.sim.now, name))
        self._exposed[name] = record
        return name

    def _on_withdraw(self, space_id: str) -> bool:
        name = target_name(space_id)
        self.targets.withdraw(name)
        return self._exposed.pop(name, None) is not None

    def _on_usb_view(self) -> List[str]:
        return sorted(self.bus.os_view(self.host_id))

    def _on_exposed_targets(self) -> List[str]:
        return sorted(self._exposed)

    def _on_set_disk_power(self, disk_id: str, action: str):
        """Disk power interface for upper-layer services (§IV-F)."""
        disk = self.disks.get(disk_id)
        if disk is None or disk_id not in self.bus.os_view(self.host_id):
            raise RuntimeError(f"{self.host_id} does not control {disk_id}")
        if action == "spin_down":
            disk.spin_down()
            return True
        if action == "spin_up":
            def wait() -> Generator[Event, None, bool]:
                yield disk.spin_up()
                self._record_spin_up(disk_id)
                return True

            return wait()
        raise ValueError(f"unknown power action {action!r}")

    # -- default power policy (§IV-F) -----------------------------------------

    def _record_spin_up(self, disk_id: str) -> None:
        window = self._spin_up_times.setdefault(disk_id, [])
        window.append(self.sim.now)
        cutoff = self.sim.now - self.config.thrash_window
        window[:] = [t for t in window if t >= cutoff]
        if len(window) > self.config.thrash_limit:
            current = self._idle_timeout.get(
                disk_id, self.config.spin_down_idle_seconds
            )
            self._idle_timeout[disk_id] = current * 2

    def idle_timeout_of(self, disk_id: str) -> float:
        return self._idle_timeout.get(disk_id, self.config.spin_down_idle_seconds)

    def _power_policy_loop(self) -> Generator[Event, None, None]:
        check = max(1.0, self.config.spin_down_idle_seconds / 10)
        while True:
            yield self.sim.timeout(check)
            if not self.alive:
                continue
            for disk_id in self.bus.os_view(self.host_id):
                disk = self.disks.get(disk_id)
                if disk is None or disk.power_state is not DiskPowerState.IDLE:
                    continue
                if self.sim.now - disk.idle_since >= self.idle_timeout_of(disk_id):
                    was_spun_up = disk.states.spin_up_count
                    disk.spin_down()
                    # Track wake-ups triggered by later I/O for adaptivity.
                    self._watch_for_thrash(disk_id, was_spun_up)

    def _watch_for_thrash(self, disk_id: str, spin_up_count: int) -> None:
        disk = self.disks[disk_id]

        def check() -> None:
            if disk.states.spin_up_count > spin_up_count:
                self._record_spin_up(disk_id)

        self.sim.call_in(self.config.spin_down_idle_seconds / 2, check)
