"""The Master's three metadata families (§IV-A).

* :class:`SysConf` — static system configuration: deploy units, their
  hosts and disks, and the mappings between them.
* :class:`SysStat` — real-time status: host/disk states and the current
  disk→host mapping.  Kept only in memory, reconstructed by
  interrogating the hosts.
* storage allocation (StorAlloc) — persisted synchronously through the
  coordination service; see :mod:`repro.cluster.namespace` for the
  global space naming and :class:`SpaceRecord` for the stored value.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["DiskStatus", "HostStatus", "SpaceRecord", "SysConf", "SysStat"]


class HostStatus(enum.Enum):
    ONLINE = "online"
    SUSPECTED = "suspected"
    CRASHED = "crashed"


class DiskStatus(enum.Enum):
    ONLINE = "online"
    SPUN_DOWN = "spun_down"
    POWERED_OFF = "powered_off"
    FAILED = "failed"


@dataclass
class SysConf:
    """Static configuration of the whole UStore system."""

    deploy_units: List[str] = field(default_factory=list)
    hosts_of_unit: Dict[str, List[str]] = field(default_factory=dict)
    disks_of_unit: Dict[str, List[str]] = field(default_factory=dict)
    host_addresses: Dict[str, str] = field(default_factory=dict)
    controller_hosts: Dict[str, List[str]] = field(default_factory=dict)

    def unit_of_disk(self, disk_id: str) -> Optional[str]:
        for unit, disks in self.disks_of_unit.items():
            if disk_id in disks:
                return unit
        return None

    def unit_of_host(self, host_id: str) -> Optional[str]:
        for unit, hosts in self.hosts_of_unit.items():
            if host_id in hosts:
                return unit
        return None

    def validate(self) -> None:
        for unit in self.deploy_units:
            if unit not in self.hosts_of_unit or unit not in self.disks_of_unit:
                raise ValueError(f"deploy unit {unit!r} lacks hosts or disks")
        for unit, hosts in self.hosts_of_unit.items():
            for host in hosts:
                if host not in self.host_addresses:
                    raise ValueError(f"host {host!r} has no network address")


@dataclass
class SysStat:
    """In-memory live view; rebuilt from heartbeats and USB reports."""

    host_status: Dict[str, HostStatus] = field(default_factory=dict)
    disk_status: Dict[str, DiskStatus] = field(default_factory=dict)
    disk_to_host: Dict[str, Optional[str]] = field(default_factory=dict)
    last_heartbeat: Dict[str, float] = field(default_factory=dict)
    host_load: Dict[str, int] = field(default_factory=dict)  # exposed targets

    def disks_on_host(self, host_id: str) -> List[str]:
        return sorted(d for d, h in self.disk_to_host.items() if h == host_id)

    def online_hosts(self) -> List[str]:
        return sorted(
            h for h, s in self.host_status.items() if s is HostStatus.ONLINE
        )


@dataclass(frozen=True)
class SpaceRecord:
    """One allocated storage space (the StorAlloc value)."""

    space_id: str  # global name: /unit/disk/space (namespace module)
    unit_id: str
    disk_id: str
    offset: int
    length: int
    service: str  # owning upper-layer service

    def as_dict(self) -> dict:
        return {
            "space_id": self.space_id,
            "unit_id": self.unit_id,
            "disk_id": self.disk_id,
            "offset": self.offset,
            "length": self.length,
            "service": self.service,
        }

    @staticmethod
    def from_dict(data: dict) -> "SpaceRecord":
        return SpaceRecord(**data)
