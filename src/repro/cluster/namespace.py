"""The global storage namespace: ``/DeployUnitID/DiskID/SpaceID`` (§IV-A)."""

from __future__ import annotations

from typing import Tuple

__all__ = ["format_space_id", "parse_space_id", "space_znode_path", "target_name"]

#: Root of the StorAlloc subtree in the coordination namespace.
STORALLOC_ROOT = "/ustore/storalloc"


def format_space_id(unit_id: str, disk_id: str, space_index: int) -> str:
    """Build the global space name, e.g. ``/unit0/disk3/space5``."""
    for part in (unit_id, disk_id):
        if "/" in part or not part:
            raise ValueError(f"invalid name component {part!r}")
    if space_index < 0:
        raise ValueError(f"negative space index {space_index}")
    return f"/{unit_id}/{disk_id}/space{space_index}"


def parse_space_id(space_id: str) -> Tuple[str, str, int]:
    """Inverse of :func:`format_space_id`."""
    parts = space_id.strip("/").split("/")
    if len(parts) != 3 or not parts[2].startswith("space"):
        raise ValueError(f"malformed space id {space_id!r}")
    try:
        index = int(parts[2][len("space"):])
    except ValueError as exc:
        raise ValueError(f"malformed space id {space_id!r}") from exc
    return parts[0], parts[1], index


def space_znode_path(space_id: str) -> str:
    """Where a space's record lives in the coordination namespace."""
    unit, disk, index = parse_space_id(space_id)
    return f"{STORALLOC_ROOT}/{unit}_{disk}_space{index}"


def target_name(space_id: str) -> str:
    """iSCSI target name for a space (IQN-flavoured)."""
    unit, disk, index = parse_space_id(space_id)
    return f"iqn.ustore:{unit}.{disk}.space{index}"
