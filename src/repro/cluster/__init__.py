"""UStore management stack: Master, Controller, EndPoint, ClientLib."""

from repro.cluster.clientlib import ClientLib, MountedSpace, StorageUnavailableError
from repro.cluster.controller import CommandFailed, Controller, ControllerConfig
from repro.cluster.deployment import Deployment, DeploymentConfig, build_deployment
from repro.cluster.endpoint import EndPoint, EndPointConfig
from repro.cluster.master import AllocationError, Master, MasterConfig
from repro.cluster.metadata import DiskStatus, HostStatus, SpaceRecord, SysConf, SysStat
from repro.cluster.multiunit import (
    DeployUnit,
    MultiUnitDeployment,
    build_multi_unit_deployment,
)
from repro.cluster.namespace import (
    format_space_id,
    parse_space_id,
    space_znode_path,
    target_name,
)

__all__ = [
    "AllocationError",
    "ClientLib",
    "CommandFailed",
    "Controller",
    "ControllerConfig",
    "DeployUnit",
    "Deployment",
    "DeploymentConfig",
    "DiskStatus",
    "MultiUnitDeployment",
    "build_multi_unit_deployment",
    "EndPoint",
    "EndPointConfig",
    "HostStatus",
    "Master",
    "MasterConfig",
    "MountedSpace",
    "SpaceRecord",
    "StorageUnavailableError",
    "SysConf",
    "SysStat",
    "build_deployment",
    "format_space_id",
    "parse_space_id",
    "space_znode_path",
    "target_name",
]
