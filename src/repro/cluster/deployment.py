"""Wiring a complete UStore deployment in one call.

A :class:`Deployment` assembles every layer of Figure 3: the fabric
with its simulated disks and USB buses, the hardware control plane, the
coordination cluster, master candidates, per-host EndPoints, the two
Controllers, and a factory for ClientLibs.  Tests, benchmarks and the
examples all build on this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.controller import Controller, ControllerConfig
from repro.cluster.clientlib import ClientLib
from repro.cluster.endpoint import EndPoint, EndPointConfig
from repro.cluster.master import Master, MasterConfig
from repro.cluster.metadata import SysConf
from repro.coord import CoordConfig, CoordReplica, build_cluster
from repro.disk.device import SimulatedDisk
from repro.disk.specs import ConnectionType
from repro.fabric.builders import prototype_fabric
from repro.fabric.topology import Fabric
from repro.hardware.microcontroller import ControlPlane
from repro.hardware.relays import RelayBank
from repro.net.network import Network
from repro.obs import MetricsRegistry, RequestTracer
from repro.sim import RngRegistry, Simulator
from repro.usbsim.bus import UsbBus
from repro.usbsim.params import UsbQuirks, UsbTimingParams

__all__ = ["Deployment", "DeploymentConfig", "build_deployment"]


@dataclass(frozen=True)
class DeploymentConfig:
    unit_id: str = "unit0"
    num_coord_replicas: int = 3
    num_masters: int = 2
    seed: int = 7
    # Opt-in same-timestamp race detection (repro.analysis.races).
    detect_races: bool = False
    usb_timing: UsbTimingParams = UsbTimingParams()
    usb_quirks: UsbQuirks = UsbQuirks()
    endpoint: EndPointConfig = EndPointConfig()
    master: MasterConfig = MasterConfig()
    controller: ControllerConfig = ControllerConfig()
    coord: CoordConfig = CoordConfig()


@dataclass
class Deployment:
    """Handles to every component of a running UStore system."""

    sim: Simulator
    rng: RngRegistry
    network: Network
    fabric: Fabric
    disks: Dict[str, SimulatedDisk]
    bus: UsbBus
    control_plane: ControlPlane
    relays: RelayBank
    coord_replicas: List[CoordReplica]
    sysconf: SysConf
    masters: List[Master]
    endpoints: Dict[str, EndPoint]
    controllers: List[Controller]
    config: DeploymentConfig
    clients: List[ClientLib] = field(default_factory=list)

    @property
    def coord_servers(self) -> List[str]:
        return [r.address for r in self.coord_replicas]

    @property
    def metrics(self) -> MetricsRegistry:
        """The obs registry every component of this deployment reports to
        (the shared null registry unless one was passed at build time)."""
        return self.sim.metrics

    def active_master(self) -> Optional[Master]:
        for master in self.masters:
            if master.active and master.alive:
                return master
        return None

    def new_client(self, name: str, service: str = "default", **kwargs) -> ClientLib:
        client = ClientLib(
            self.sim,
            self.network,
            name,
            self.coord_servers,
            service=service,
            **kwargs,
        )
        self.clients.append(client)
        return client

    def settle(self, duration: float = 12.0) -> None:
        """Run the simulation until the control plane is in steady state
        (coordination leader elected, master active, boot enumeration
        finished, first heartbeats delivered)."""
        self.sim.run(until=self.sim.now + duration)

    def host_of_disk(self, disk_id: str) -> Optional[str]:
        return self.fabric.attached_host(disk_id)

    def crash_host(self, host_id: str) -> None:
        """Kill a host: endpoint silent, its targets unreachable."""
        self.endpoints[host_id].crash()

    def recover_host(self, host_id: str) -> None:
        self.endpoints[host_id].recover()


def build_deployment(
    fabric: Optional[Fabric] = None,
    config: DeploymentConfig = DeploymentConfig(),
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[RequestTracer] = None,
) -> Deployment:
    """Assemble a full UStore system around ``fabric`` (default: the
    16-disk, 4-host prototype of §V-B).

    Passing a :class:`~repro.obs.MetricsRegistry` arms the obs layer on
    every component; the same registry may be reused across sequential
    deployments to aggregate a whole experiment (the clock rebinds to
    each new simulator).  Passing a
    :class:`~repro.obs.RequestTracer` likewise arms causal request
    tracing on every instrumented component (clock rebinds the same
    way).
    """
    sim = Simulator(detect_races=config.detect_races, metrics=metrics, tracer=tracer)
    rng = RngRegistry(config.seed)
    network = Network(sim, rng=rng)
    fabric = fabric or prototype_fabric()

    disks = {
        node.node_id: SimulatedDisk(
            sim, node.node_id, connection=ConnectionType.HUB_AND_SWITCH
        )
        for node in fabric.disks
    }
    bus = UsbBus(sim, fabric, rng=rng, timing=config.usb_timing, quirks=config.usb_quirks)
    control_plane = ControlPlane(fabric)
    relays = RelayBank(sim, disks, bus=bus)

    coord_replicas = build_cluster(
        sim, network, size=config.num_coord_replicas, rng=rng, config=config.coord
    )
    coord_servers = [r.address for r in coord_replicas]

    hosts = fabric.hosts()
    host_addresses = {h: f"{h}.endpoint" for h in hosts}
    controller_hosts = [f"{config.unit_id}.controller0", f"{config.unit_id}.controller1"]
    sysconf = SysConf(
        deploy_units=[config.unit_id],
        hosts_of_unit={config.unit_id: list(hosts)},
        disks_of_unit={config.unit_id: sorted(disks)},
        host_addresses=host_addresses,
        controller_hosts={config.unit_id: controller_hosts},
    )
    sysconf.validate()

    endpoints = {
        host: EndPoint(
            sim,
            network,
            host,
            host_addresses[host],
            bus,
            disks,
            coord_servers,
            config=config.endpoint,
        )
        for host in hosts
    }

    controllers = [
        Controller(
            sim,
            network,
            controller_hosts[i],
            fabric,
            bus,
            control_plane,
            host_addresses,
            is_primary=(i == 0),
            config=config.controller,
        )
        for i in range(2)
    ]

    masters = [
        Master(
            sim,
            network,
            f"master{i}",
            coord_servers,
            sysconf,
            disk_capacities={d: disks[d].spec.capacity_bytes for d in disks},
            config=config.master,
        )
        for i in range(config.num_masters)
    ]

    bus.sync()  # boot enumeration
    return Deployment(
        sim=sim,
        rng=rng,
        network=network,
        fabric=fabric,
        disks=disks,
        bus=bus,
        control_plane=control_plane,
        relays=relays,
        coord_replicas=coord_replicas,
        sysconf=sysconf,
        masters=masters,
        endpoints=endpoints,
        controllers=controllers,
        config=config,
    )
