"""The UStore Controller (§IV-C): executes topology commands.

Two Controllers run on two controlling hosts of each deploy unit in a
primary/backup arrangement.  The Master sends explicit scheduling
commands such as "connect disk A to host H1"; the Controller plans the
switch turns with Algorithm 1 (:func:`repro.fabric.switching.plan_switches`),
drives them through its microcontroller, then verifies within a
timeout — by asking the involved EndPoints for their USB views — that
the expected connections materialized, rolling the switches back
otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from repro.fabric.switching import SwitchConflict, plan_switches
from repro.fabric.topology import Fabric, SwitchSetting
from repro.hardware.microcontroller import ControlPlane
from repro.net.network import Network
from repro.net.rpc import RemoteError, RpcClient, RpcServer, RpcTimeout
from repro.sim import Event, Resource, Simulator
from repro.usbsim.bus import UsbBus

__all__ = ["Controller", "ControllerConfig", "CommandFailed"]


class CommandFailed(Exception):
    """A scheduling command could not be executed (conflict or timeout)."""


@dataclass(frozen=True)
class ControllerConfig:
    # §IV-C step 3: pre-set verification timeout ("e.g., 30s").
    verify_timeout: float = 30.0
    verify_poll_interval: float = 0.5


class Controller:
    """One Controller instance (primary or backup)."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        address: str,
        fabric: Fabric,
        bus: UsbBus,
        control_plane: ControlPlane,
        host_addresses: Dict[str, str],
        is_primary: bool = True,
        config: ControllerConfig = ControllerConfig(),
    ):
        self.sim = sim
        self.network = network
        self.address = address
        self.fabric = fabric
        self.bus = bus
        self.control_plane = control_plane
        self.host_addresses = host_addresses
        self.is_primary = is_primary
        self.config = config
        self.alive = True
        self.commands_executed = 0
        self.commands_failed = 0
        self.rollbacks = 0
        self._m_commands = sim.metrics.counter("controller.commands")
        self._m_failed = sim.metrics.counter("controller.commands_failed")
        self._m_rollbacks = sim.metrics.counter("controller.rollbacks")
        self._m_turns = sim.metrics.counter("controller.switch_turns")

        # §IV-C step 1: the fabric is locked per command.
        self._lock = Resource(sim, capacity=1, name=f"fabric-lock:{address}")
        self.rpc = RpcServer(sim, network, address)
        self.rpc_client = RpcClient(sim, network, f"{address}.client")
        self.rpc.register("controller.execute", self._on_execute)
        self.rpc.register("controller.reachable_hosts", self._on_reachable_hosts)
        self.rpc.register("controller.attachment_map", self._on_attachment_map)

    def crash(self) -> None:
        self.alive = False
        self.network.set_alive(self.address, False)
        self.network.set_alive(f"{self.address}.client", False)

    def recover(self) -> None:
        self.alive = True
        self.network.set_alive(self.address, True)
        self.network.set_alive(f"{self.address}.client", True)
        if not self.is_primary:
            # §III-B: the backup's microcontroller takes over the signals.
            self.control_plane.failover_to_backup()

    def take_over_control_plane(self) -> None:
        """Power the backup microcontroller when the primary is lost."""
        self.control_plane.failover_to_backup()

    # -- RPC handlers ----------------------------------------------------------

    def _on_reachable_hosts(self, disk_id: str) -> List[str]:
        return self.fabric.reachable_hosts(disk_id)

    def _on_attachment_map(self) -> Dict[str, Optional[str]]:
        return self.fabric.attachment_map()

    def _on_execute(self, pairs: List[Tuple[str, str]]):
        """Plan, turn, verify; generator so the RPC replies when done."""
        return self._execute(pairs)

    def _execute(self, pairs: List[Tuple[str, str]]) -> Generator[Event, None, dict]:
        pairs = [tuple(p) for p in pairs]
        yield self._lock.request()
        self._m_commands.inc()
        try:
            with self.sim.metrics.span("controller.execute"):
                # Step 2: determine the switches to turn (Algorithm 1).
                try:
                    plan = plan_switches(self.fabric, pairs)
                except SwitchConflict as exc:
                    self.commands_failed += 1
                    self._m_failed.inc()
                    raise CommandFailed(f"conflict: {exc} (victims: {exc.victims})")
                previous = {
                    setting.switch_id: self.fabric.node(setting.switch_id).state
                    for setting in plan.turns
                }
                # Step 3: drive the microcontroller, one switch at a time.
                for setting in plan.turns:
                    self.control_plane.set_switch(setting.switch_id, setting.state)
                self._m_turns.inc(len(plan.turns))
                self.bus.sync()
                verified = yield from self._verify(pairs)
                if not verified:
                    # Roll back to the original states and report failure.
                    for switch_id, state in previous.items():
                        self.control_plane.set_switch(switch_id, state)
                    self.bus.sync()
                    self.rollbacks += 1
                    self.commands_failed += 1
                    self._m_rollbacks.inc()
                    self._m_failed.inc()
                    if self.sim.tracer.enabled:
                        self.sim.tracer.instant(
                            "controller.rollback",
                            controller=self.address,
                            pairs=len(pairs),
                            turns=len(plan.turns),
                        )
                    raise CommandFailed(
                        f"verification timed out after {self.config.verify_timeout}s; "
                        f"rolled back {len(previous)} switch(es)"
                    )
                self.commands_executed += 1
                if self.sim.tracer.enabled:
                    self.sim.tracer.instant(
                        "controller.execute",
                        controller=self.address,
                        pairs=len(pairs),
                        turns=len(plan.turns),
                    )
                return {
                    "turned": [(s.switch_id, s.state) for s in plan.turns],
                    "already_satisfied": list(plan.already_satisfied),
                }
        finally:
            self._lock.release()

    def _verify(self, pairs: List[Tuple[str, str]]) -> Generator[Event, None, bool]:
        """Poll involved EndPoints until every disk shows up, or timeout."""
        deadline = self.sim.now + self.config.verify_timeout
        remaining = dict(pairs)
        while remaining and self.sim.now < deadline:
            yield self.sim.timeout(self.config.verify_poll_interval)
            satisfied = []
            for disk_id, host_id in remaining.items():
                address = self.host_addresses.get(host_id)
                if address is None:
                    continue
                try:
                    view = yield from self.rpc_client.call(
                        address, "endpoint.usb_view", timeout=1.0
                    )
                except (RpcTimeout, RemoteError):
                    continue
                if disk_id in view:
                    satisfied.append(disk_id)
            for disk_id in satisfied:
                del remaining[disk_id]
        return not remaining
