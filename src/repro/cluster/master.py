"""The UStore Master (§IV-A): centralized control and scheduling.

Master candidates run in active-standby mode, elected through the
coordination service (ephemeral sequential znodes, as the prototype
does with ZooKeeper, §V-B).  The active master:

* maintains SysConf (static), SysStat (in-memory, rebuilt by
  interrogating the hosts) and StorAlloc (persisted synchronously in
  the coordination namespace);
* allocates storage spaces, applying the paper's two placement rules —
  same-service disk affinity and client locality;
* monitors host heartbeats and, on an extended silence, declares the
  host crashed and moves its disks to healthy hosts through the
  Controller, re-exposing the affected targets (§IV-E).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional

from repro.cluster.metadata import DiskStatus, HostStatus, SpaceRecord, SysConf, SysStat
from repro.cluster.namespace import (
    STORALLOC_ROOT,
    format_space_id,
    parse_space_id,
    space_znode_path,
    target_name,
)
from repro.coord.client import CoordSession
from repro.net.network import Network
from repro.net.rpc import RemoteError, RpcClient, RpcServer, RpcTimeout
from repro.obs.trace import NULL_TRACE
from repro.sim import Event, Simulator

__all__ = ["AllocationError", "Master", "MasterConfig"]

ELECTION_ROOT = "/ustore/master-election"
MASTER_POINTER = "/ustore/master"


class AllocationError(Exception):
    """No disk satisfies an allocation request."""


@dataclass(frozen=True)
class MasterConfig:
    # Hosts are suspected after this much heartbeat silence, §IV-E.
    heartbeat_timeout: float = 2.0
    failure_check_interval: float = 0.5
    election_poll_interval: float = 1.0
    default_disk_capacity: int = 3 * 10**12


class Master:
    """One master candidate; becomes active if it wins the election."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        address: str,
        coord_servers: List[str],
        sysconf: SysConf,
        disk_capacities: Optional[Dict[str, int]] = None,
        config: MasterConfig = MasterConfig(),
    ):
        self.sim = sim
        self.network = network
        self.address = address
        self.sysconf = sysconf
        self.config = config
        self.disk_capacities = disk_capacities or {}
        self.sysstat = SysStat()
        self.records: Dict[str, SpaceRecord] = {}  # space_id -> record
        self._space_counters: Dict[str, int] = {}  # disk -> next index
        self.active = False
        self.alive = True
        self.failovers_completed = 0
        self._m_heartbeats = sim.metrics.counter("master.heartbeats")
        self._m_allocations = sim.metrics.counter("master.allocations")
        self._m_failovers = sim.metrics.counter("master.failovers")
        self._m_failover_seconds = sim.metrics.histogram("master.failover_seconds")

        self.coord = CoordSession(sim, network, f"{address}.coord", coord_servers)
        self.rpc = RpcServer(sim, network, address)
        self.rpc_client = RpcClient(sim, network, f"{address}.client")
        self.rpc.register("master.heartbeat", self._on_heartbeat)
        self.rpc.register("master.allocate", self._on_allocate)
        self.rpc.register("master.lookup", self._on_lookup)
        self.rpc.register("master.release", self._on_release)
        self.rpc.register("master.set_disk_power", self._on_set_disk_power)
        self.rpc.register("master.status", self._on_status)
        self.rpc.register("master.migrate_disk", self._on_migrate_disk)
        self.rpc.register("master.migrate_batch", self._on_migrate_batch)
        sim.process(self._candidate_loop())

    # -- lifecycle -------------------------------------------------------------

    def crash(self) -> None:
        self.alive = False
        self.active = False
        self.network.set_alive(self.address, False)
        self.network.set_alive(f"{self.address}.client", False)
        self.network.set_alive(f"{self.address}.coord", False)

    # -- election ----------------------------------------------------------------

    def _candidate_loop(self) -> Generator[Event, None, None]:
        yield from self.coord.start()
        for path in ("/ustore", ELECTION_ROOT, STORALLOC_ROOT):
            try:
                yield from self.coord.create(path)
            except RemoteError:
                pass
        my_node = yield from self.coord.create(
            f"{ELECTION_ROOT}/c-", data=self.address, ephemeral=True, sequential=True
        )
        my_name = my_node.rsplit("/", 1)[-1]
        while self.alive:
            try:
                children = yield from self.coord.get_children(ELECTION_ROOT)
            except (RpcTimeout, RemoteError):
                yield self.sim.timeout(self.config.election_poll_interval)
                continue
            if children and min(children) == my_name:
                if not self.active:
                    yield from self._activate()
            yield self.sim.timeout(self.config.election_poll_interval)

    def _activate(self) -> Generator[Event, None, None]:
        # Publish the active master's address.
        try:
            exists = yield from self.coord.exists(MASTER_POINTER)
            if exists:
                yield from self.coord.set_data(MASTER_POINTER, self.address)
            else:
                yield from self.coord.create(MASTER_POINTER, data=self.address)
        except (RpcTimeout, RemoteError):
            return
        # Load StorAlloc from the coordination namespace.
        yield from self._load_records()
        # Rebuild SysStat by interrogating every host (§IV-A: SysStat is
        # memory-only and reconstructible).
        yield from self._interrogate_hosts()
        self.active = True
        self.sim.process(self._failure_detector())

    def _load_records(self) -> Generator[Event, None, None]:
        self.records.clear()
        self._space_counters.clear()
        try:
            children = yield from self.coord.get_children(STORALLOC_ROOT)
        except (RpcTimeout, RemoteError):
            return
        for child in children:
            try:
                data = yield from self.coord.get_data(f"{STORALLOC_ROOT}/{child}")
            except (RpcTimeout, RemoteError):
                continue
            record = SpaceRecord.from_dict(data)
            self.records[record.space_id] = record
            _, _, index = parse_space_id(record.space_id)
            current = self._space_counters.get(record.disk_id, 0)
            self._space_counters[record.disk_id] = max(current, index + 1)

    def _interrogate_hosts(self) -> Generator[Event, None, None]:
        for host_id, address in self.sysconf.host_addresses.items():
            try:
                view = yield from self.rpc_client.call(
                    address, "endpoint.usb_view", timeout=1.0
                )
            except (RpcTimeout, RemoteError):
                self.sysstat.host_status[host_id] = HostStatus.SUSPECTED
                continue
            self.sysstat.host_status[host_id] = HostStatus.ONLINE
            self.sysstat.last_heartbeat[host_id] = self.sim.now
            for disk_id in view:
                self.sysstat.disk_to_host[disk_id] = host_id
                self.sysstat.disk_status[disk_id] = DiskStatus.ONLINE

    # -- RPC handlers ---------------------------------------------------------

    def _require_active(self) -> None:
        if not self.active:
            raise RuntimeError(f"master {self.address} is standby")

    def _on_heartbeat(self, payload: dict) -> bool:
        self._require_active()
        self._m_heartbeats.inc()
        host_id = payload["host_id"]
        self.sysstat.last_heartbeat[host_id] = self.sim.now
        self.sysstat.host_status[host_id] = HostStatus.ONLINE
        self.sysstat.host_load[host_id] = payload.get("exposed", 0)
        for disk_id, state in payload.get("disks", {}).items():
            self.sysstat.disk_to_host[disk_id] = host_id
            self.sysstat.disk_status[disk_id] = DiskStatus(state)
        return True

    def _capacity_of(self, disk_id: str) -> int:
        return self.disk_capacities.get(disk_id, self.config.default_disk_capacity)

    def _allocated_on(self, disk_id: str) -> int:
        return sum(r.length for r in self.records.values() if r.disk_id == disk_id)

    def _next_offset(self, disk_id: str) -> int:
        end = 0
        for record in self.records.values():
            if record.disk_id == disk_id:
                end = max(end, record.offset + record.length)
        return end

    def _score_disk(self, disk_id: str, service: str, locality_hint: Optional[str]) -> tuple:
        """Smaller tuples are better: (affinity, locality, usage)."""
        services_on_disk = {
            r.service for r in self.records.values() if r.disk_id == disk_id
        }
        if not services_on_disk:
            affinity = 1  # empty disk: fine
        elif services_on_disk == {service}:
            affinity = 0  # paper rule 1: same-service disk preferred
        else:
            affinity = 2  # mixing services hinders power management
        host = self.sysstat.disk_to_host.get(disk_id)
        locality = 0 if (locality_hint and host == locality_hint) else 1
        return (affinity, locality, self._allocated_on(disk_id))

    def _on_allocate(
        self,
        length: int,
        service: str,
        locality_hint: Optional[str] = None,
        exclude_disks: Optional[List[str]] = None,
    ) -> dict:
        self._require_active()
        if length <= 0:
            raise AllocationError(f"invalid length {length}")
        excluded = set(exclude_disks or ())
        candidates = []
        for disk_id, host in self.sysstat.disk_to_host.items():
            if host is None or disk_id in excluded:
                continue
            if self.sysstat.host_status.get(host) is not HostStatus.ONLINE:
                continue
            if self.sysstat.disk_status.get(disk_id) is DiskStatus.FAILED:
                continue
            if self._next_offset(disk_id) + length > self._capacity_of(disk_id):
                continue
            candidates.append(disk_id)
        if not candidates:
            raise AllocationError("no disk with sufficient free space is online")
        best = min(
            candidates, key=lambda d: self._score_disk(d, service, locality_hint)
        )
        unit = self.sysconf.unit_of_disk(best) or "unit0"
        index = self._space_counters.get(best, 0)
        self._space_counters[best] = index + 1
        space_id = format_space_id(unit, best, index)
        record = SpaceRecord(
            space_id=space_id,
            unit_id=unit,
            disk_id=best,
            offset=self._next_offset(best),
            length=length,
            service=service,
        )

        def commit() -> Generator[Event, None, dict]:
            # StorAlloc is persisted synchronously before the reply (§IV-A).
            yield from self.coord.create(space_znode_path(space_id), record.as_dict())
            self.records[space_id] = record
            self._m_allocations.inc()
            host_id = self.sysstat.disk_to_host[best]
            address = self.sysconf.host_addresses[host_id]
            yield from self.rpc_client.call(
                address, "endpoint.expose", record.as_dict(), timeout=2.0
            )
            return {
                "space_id": space_id,
                "host_id": host_id,
                "address": address,
                "target": target_name(space_id),
            }

        return commit()

    def _on_lookup(self, space_id: str) -> dict:
        self._require_active()
        record = self.records.get(space_id)
        if record is None:
            raise KeyError(f"unknown space {space_id!r}")
        host_id = self.sysstat.disk_to_host.get(record.disk_id)
        if host_id is None:
            raise RuntimeError(f"disk {record.disk_id!r} is not attached anywhere")
        return {
            "space_id": space_id,
            "host_id": host_id,
            "address": self.sysconf.host_addresses[host_id],
            "target": target_name(space_id),
        }

    def _on_release(self, space_id: str):
        self._require_active()
        record = self.records.pop(space_id, None)
        if record is None:
            return False

        def commit() -> Generator[Event, None, bool]:
            try:
                yield from self.coord.delete(space_znode_path(space_id))
            except RemoteError:
                pass
            host_id = self.sysstat.disk_to_host.get(record.disk_id)
            if host_id is not None:
                address = self.sysconf.host_addresses[host_id]
                try:
                    yield from self.rpc_client.call(
                        address, "endpoint.withdraw", space_id, timeout=2.0
                    )
                except (RpcTimeout, RemoteError):
                    pass
            return True

        return commit()

    def _on_set_disk_power(self, space_id: str, action: str, service: str):
        """§IV-F: services control the power of disks they own."""
        self._require_active()
        record = self.records.get(space_id)
        if record is None:
            raise KeyError(f"unknown space {space_id!r}")
        if record.service != service:
            raise PermissionError(
                f"space {space_id!r} belongs to {record.service!r}, not {service!r}"
            )
        owners = {
            r.service for r in self.records.values() if r.disk_id == record.disk_id
        }
        if owners != {service}:
            raise PermissionError(
                f"disk {record.disk_id!r} is shared by {sorted(owners)}; "
                "power control requires exclusive ownership"
            )
        host_id = self.sysstat.disk_to_host.get(record.disk_id)
        if host_id is None:
            raise RuntimeError(f"disk {record.disk_id!r} is detached")
        address = self.sysconf.host_addresses[host_id]

        def forward() -> Generator[Event, None, Any]:
            result = yield from self.rpc_client.call(
                address,
                "endpoint.set_disk_power",
                record.disk_id,
                action,
                timeout=30.0,
            )
            return result

        return forward()

    def _on_migrate_disk(self, disk_id: str, target_host: str):
        """Explicit topology scheduling (§IV-C): move one disk, keeping
        its exposed targets reachable at the new host."""
        self._require_active()
        unit = self.sysconf.unit_of_disk(disk_id)
        if unit is None:
            raise KeyError(f"unknown disk {disk_id!r}")
        if target_host not in self.sysconf.host_addresses:
            raise KeyError(f"unknown host {target_host!r}")
        controllers = self._controller_addresses(unit)

        def run() -> Generator[Event, None, dict]:
            watcher = self.sim.process(self._re_expose({disk_id: target_host}))
            last_error: Optional[Exception] = None
            for controller in controllers:
                try:
                    result = yield from self.rpc_client.call(
                        controller,
                        "controller.execute",
                        [(disk_id, target_host)],
                        timeout=40.0,
                    )
                    break
                except (RpcTimeout, RemoteError) as exc:
                    last_error = exc
            else:
                if watcher.is_alive:
                    watcher.interrupt("command failed")
                watcher.defuse()
                raise last_error or RuntimeError("no controller reachable")
            yield watcher
            return {"disk_id": disk_id, "host": target_host, "turned": result["turned"]}

        return run()

    def _on_migrate_batch(self, pairs: List):
        """Batch topology command: several disks switched as one turn
        set and one enumeration batch (how Figure 6 switches N disks)."""
        self._require_active()
        pairs = [tuple(p) for p in pairs]
        if not pairs:
            raise ValueError("empty migration batch")
        unit = self.sysconf.unit_of_disk(pairs[0][0])
        if unit is None:
            raise KeyError(f"unknown disk {pairs[0][0]!r}")
        controllers = self._controller_addresses(unit)

        def run() -> Generator[Event, None, dict]:
            # Watchers re-expose each disk the moment it appears on its
            # new host, concurrently with the switch command.
            watcher = self.sim.process(self._re_expose({d: h for d, h in pairs}))
            last_error: Optional[Exception] = None
            for controller in controllers:
                try:
                    result = yield from self.rpc_client.call(
                        controller, "controller.execute", pairs, timeout=60.0
                    )
                    break
                except (RpcTimeout, RemoteError) as exc:
                    last_error = exc
            else:
                if watcher.is_alive:
                    watcher.interrupt("command failed")
                watcher.defuse()
                raise last_error or RuntimeError("no controller reachable")
            yield watcher
            return {"moved": len(pairs), "turned": result["turned"]}

        return run()

    def _on_status(self) -> dict:
        self._require_active()
        return {
            "hosts": {h: s.value for h, s in self.sysstat.host_status.items()},
            "disk_to_host": dict(self.sysstat.disk_to_host),
            "spaces": len(self.records),
        }

    # -- failure detection and failover (§IV-E) ---------------------------------

    def _failure_detector(self) -> Generator[Event, None, None]:
        while self.alive and self.active:
            yield self.sim.timeout(self.config.failure_check_interval)
            now = self.sim.now
            for host_id in list(self.sysconf.host_addresses):
                status = self.sysstat.host_status.get(host_id)
                last = self.sysstat.last_heartbeat.get(host_id)
                if status is not HostStatus.ONLINE or last is None:
                    continue
                if now - last > self.config.heartbeat_timeout:
                    self.sysstat.host_status[host_id] = HostStatus.CRASHED
                    self.sim.process(self._fail_over_host(host_id))

    def _controller_addresses(self, unit: str) -> List[str]:
        return list(self.sysconf.controller_hosts.get(unit, []))

    def _fail_over_host(self, dead_host: str) -> Generator[Event, None, None]:
        unit = self.sysconf.unit_of_host(dead_host)
        if unit is None:
            return
        orphans = self.sysstat.disks_on_host(dead_host)
        if not orphans:
            return
        controllers = self._controller_addresses(unit)
        load: Dict[str, int] = {
            h: len(self.sysstat.disks_on_host(h))
            for h in self.sysstat.online_hosts()
            if h != dead_host
        }
        started = self.sim.now
        moved: Dict[str, str] = {}
        tracer = self.sim.tracer
        ctx = (
            tracer.start(
                "master.failover",
                kind="system",
                host=dead_host,
                orphans=len(orphans),
            )
            if tracer.enabled
            else NULL_TRACE
        )
        with self.sim.metrics.span("master.failover"):
            for controller in controllers:
                try:
                    moved = yield from self._fail_over_via(
                        controller, orphans, dict(load)
                    )
                    if moved:
                        ctx.event("failover.controller_ok", controller=controller)
                        break
                except (RpcTimeout, RemoteError):
                    # Primary controller unreachable: try the backup.
                    ctx.event("failover.controller_unreachable", controller=controller)
                    continue
            ctx.phase("failover")
            yield from self._re_expose(moved)
            ctx.phase("network")
        if moved:
            self.failovers_completed += 1
            self._m_failovers.inc()
            self._m_failover_seconds.observe(self.sim.now - started)
            ctx.annotate(moved=len(moved))
            ctx.finish("ok")
        else:
            ctx.finish("failed")

    def _fail_over_via(
        self, controller: str, orphans: List[str], load: Dict[str, int]
    ) -> Generator[Event, None, Dict[str, str]]:
        """Move ``orphans`` using one Controller; returns disk -> new host.

        Strategy: first try a single batched command that sends every
        orphan to one host (the fast path behind the paper's ~5.8 s
        recovery — one switch turn set, one enumeration batch).  If the
        batch conflicts, fall back to per-disk greedy placement, trying
        each disk's reachable hosts from least- to most-loaded and
        skipping targets that Algorithm 1 reports as conflicting.
        """
        moved: Dict[str, str] = {}
        # Hosts every orphan can reach.
        common: Optional[set] = None
        reachable_of: Dict[str, List[str]] = {}
        for disk_id in orphans:
            reachable = yield from self.rpc_client.call(
                controller, "controller.reachable_hosts", disk_id, timeout=2.0
            )
            options = [h for h in reachable if h in load]
            reachable_of[disk_id] = options
            common = set(options) if common is None else (common & set(options))
        for target in sorted(common or (), key=lambda h: (load[h], h)):
            try:
                yield from self.rpc_client.call(
                    controller,
                    "controller.execute",
                    [(d, target) for d in orphans],
                    timeout=40.0,
                )
            except RemoteError:
                continue  # conflict: try another absorber or fall back
            for disk_id in orphans:
                moved[disk_id] = target
            return moved
        # Fall back: place disks one at a time.
        for disk_id in orphans:
            for target in sorted(reachable_of[disk_id], key=lambda h: (load[h], h)):
                try:
                    yield from self.rpc_client.call(
                        controller, "controller.execute", [(disk_id, target)], timeout=40.0
                    )
                except RemoteError:
                    continue
                moved[disk_id] = target
                load[target] += 1
                break
        return moved

    def _re_expose(self, moved: Dict[str, str]) -> Generator[Event, None, None]:
        """Re-expose every space living on a moved disk at its new home.

        Runs one watcher per disk, concurrently: each exposes the disk's
        targets the moment the new host's USB view reports the disk —
        so in a batched switch the first disks come back on the network
        while the later ones are still enumerating (what a udev-driven
        EndPoint does on real hardware, and why the paper's Figure 6
        part-2 delay does not grow with the batch size).
        """
        watchers = [
            self.sim.process(self._expose_when_visible(disk_id, new_host))
            for disk_id, new_host in moved.items()
        ]
        if watchers:
            yield self.sim.all_of(watchers)

    def _expose_when_visible(
        self, disk_id: str, new_host: str, deadline_seconds: float = 60.0
    ) -> Generator[Event, None, None]:
        address = self.sysconf.host_addresses[new_host]
        deadline = self.sim.now + deadline_seconds
        while self.sim.now < deadline:
            try:
                view = yield from self.rpc_client.call(
                    address, "endpoint.usb_view", timeout=1.0
                )
            except (RpcTimeout, RemoteError):
                view = []
            if disk_id in view:
                break
            yield self.sim.timeout(0.2)
        else:
            return
        self.sysstat.disk_to_host[disk_id] = new_host
        for record in self.records.values():
            if record.disk_id != disk_id:
                continue
            try:
                yield from self.rpc_client.call(
                    address, "endpoint.expose", record.as_dict(), timeout=5.0
                )
            except (RpcTimeout, RemoteError):
                pass
