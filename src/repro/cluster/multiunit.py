"""Multi-unit deployments: one Master, several deploy units (§IV).

"A typical UStore deployment is composed of one Master and a number of
deploy units, each of which is connected to multiple hosts" — this
module scales the single-unit builder up: each unit gets its own
fabric, USB buses, control plane and Controller pair, while the
coordination cluster and the master candidates are shared.  The Master
allocates across all units (its placement rules and failover logic are
unit-aware through SysConf).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.clientlib import ClientLib
from repro.cluster.controller import Controller
from repro.cluster.deployment import DeploymentConfig
from repro.cluster.endpoint import EndPoint
from repro.cluster.master import Master
from repro.cluster.metadata import SysConf
from repro.coord import CoordReplica, build_cluster
from repro.disk.device import SimulatedDisk
from repro.disk.specs import ConnectionType
from repro.fabric.builders import ring_fabric
from repro.fabric.topology import Fabric
from repro.hardware.microcontroller import ControlPlane
from repro.hardware.relays import RelayBank
from repro.net.network import Network
from repro.sim import RngRegistry, Simulator
from repro.usbsim.bus import UsbBus

__all__ = ["DeployUnit", "MultiUnitDeployment", "build_multi_unit_deployment"]


@dataclass
class DeployUnit:
    """Everything physical to one deploy unit."""

    unit_id: str
    fabric: Fabric
    disks: Dict[str, SimulatedDisk]
    bus: UsbBus
    control_plane: ControlPlane
    relays: RelayBank
    endpoints: Dict[str, EndPoint]
    controllers: List[Controller]


@dataclass
class MultiUnitDeployment:
    """One Master domain spanning several deploy units."""

    sim: Simulator
    rng: RngRegistry
    network: Network
    coord_replicas: List[CoordReplica]
    sysconf: SysConf
    masters: List[Master]
    units: Dict[str, DeployUnit]
    config: DeploymentConfig
    clients: List[ClientLib] = field(default_factory=list)

    @property
    def coord_servers(self) -> List[str]:
        return [r.address for r in self.coord_replicas]

    def active_master(self) -> Optional[Master]:
        for master in self.masters:
            if master.active and master.alive:
                return master
        return None

    def all_disks(self) -> Dict[str, SimulatedDisk]:
        merged: Dict[str, SimulatedDisk] = {}
        for unit in self.units.values():
            merged.update(unit.disks)
        return merged

    def unit_of_host(self, host_id: str) -> DeployUnit:
        unit_id = self.sysconf.unit_of_host(host_id)
        if unit_id is None:
            raise KeyError(f"unknown host {host_id!r}")
        return self.units[unit_id]

    def unit_of_disk(self, disk_id: str) -> DeployUnit:
        unit_id = self.sysconf.unit_of_disk(disk_id)
        if unit_id is None:
            raise KeyError(f"unknown disk {disk_id!r}")
        return self.units[unit_id]

    def new_client(self, name: str, service: str = "default", **kwargs) -> ClientLib:
        client = ClientLib(
            self.sim, self.network, name, self.coord_servers, service=service, **kwargs
        )
        self.clients.append(client)
        return client

    def settle(self, duration: float = 12.0) -> None:
        self.sim.run(until=self.sim.now + duration)

    def crash_host(self, host_id: str) -> None:
        self.unit_of_host(host_id).endpoints[host_id].crash()

    def recover_host(self, host_id: str) -> None:
        self.unit_of_host(host_id).endpoints[host_id].recover()


def build_multi_unit_deployment(
    num_units: int = 2,
    config: DeploymentConfig = DeploymentConfig(),
    hosts_per_unit: int = 4,
    disks_per_leaf: int = 2,
) -> MultiUnitDeployment:
    """Assemble ``num_units`` prototype-style units under one Master."""
    if num_units < 1:
        raise ValueError("need at least one deploy unit")
    sim = Simulator()
    rng = RngRegistry(config.seed)
    network = Network(sim, rng=rng)
    coord_replicas = build_cluster(
        sim, network, size=config.num_coord_replicas, rng=rng, config=config.coord
    )
    coord_servers = [r.address for r in coord_replicas]

    sysconf = SysConf()
    units: Dict[str, DeployUnit] = {}
    all_capacities: Dict[str, int] = {}
    for index in range(num_units):
        unit_id = f"unit{index}"
        prefix = f"{unit_id}."
        fabric = ring_fabric(
            num_hosts=hosts_per_unit, disks_per_leaf=disks_per_leaf, prefix=prefix
        )
        disks = {
            node.node_id: SimulatedDisk(
                sim, node.node_id, connection=ConnectionType.HUB_AND_SWITCH
            )
            for node in fabric.disks
        }
        bus = UsbBus(
            sim, fabric, rng=rng, timing=config.usb_timing, quirks=config.usb_quirks
        )
        control_plane = ControlPlane(fabric)
        relays = RelayBank(sim, disks, bus=bus)
        hosts = fabric.hosts()
        host_addresses = {h: f"{h}.endpoint" for h in hosts}
        controller_addresses = [f"{unit_id}.controller0", f"{unit_id}.controller1"]

        sysconf.deploy_units.append(unit_id)
        sysconf.hosts_of_unit[unit_id] = list(hosts)
        sysconf.disks_of_unit[unit_id] = sorted(disks)
        sysconf.host_addresses.update(host_addresses)
        sysconf.controller_hosts[unit_id] = controller_addresses

        endpoints = {
            host: EndPoint(
                sim,
                network,
                host,
                host_addresses[host],
                bus,
                disks,
                coord_servers,
                config=config.endpoint,
            )
            for host in hosts
        }
        controllers = [
            Controller(
                sim,
                network,
                controller_addresses[i],
                fabric,
                bus,
                control_plane,
                host_addresses,
                is_primary=(i == 0),
                config=config.controller,
            )
            for i in range(2)
        ]
        for disk_id, disk in disks.items():
            all_capacities[disk_id] = disk.spec.capacity_bytes
        bus.sync()
        units[unit_id] = DeployUnit(
            unit_id=unit_id,
            fabric=fabric,
            disks=disks,
            bus=bus,
            control_plane=control_plane,
            relays=relays,
            endpoints=endpoints,
            controllers=controllers,
        )

    sysconf.validate()
    masters = [
        Master(
            sim,
            network,
            f"master{i}",
            coord_servers,
            sysconf,
            disk_capacities=all_capacities,
            config=config.master,
        )
        for i in range(config.num_masters)
    ]
    return MultiUnitDeployment(
        sim=sim,
        rng=rng,
        network=network,
        coord_replicas=coord_replicas,
        sysconf=sysconf,
        masters=masters,
        units=units,
        config=config,
    )
