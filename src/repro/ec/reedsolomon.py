"""Systematic Reed-Solomon erasure coding over GF(2^8).

``RSCode(k, m)`` splits data into ``k`` shards and computes ``m``
parity shards such that *any* ``k`` of the ``k+m`` shards reconstruct
the original data.  Parity rows come from a Cauchy matrix, whose every
square submatrix is invertible, so combined with the identity rows any
``k``-row selection of the generator matrix is invertible — the
property erasure decoding relies on.

This is the real algorithm (byte-exact encode/decode), not a model:
upper-layer services like Azure-style EC (cited by the paper, §VIII)
can run on UStore unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.ec import gf256 as gf

__all__ = ["DecodeError", "RSCode"]


class DecodeError(Exception):
    """Not enough shards, or inconsistent shard sizes."""


def _cauchy_parity_matrix(k: int, m: int) -> List[List[int]]:
    """m x k Cauchy matrix with x_i = i, y_j = m + j (all distinct)."""
    return [
        [gf.inv(gf.add(i, m + j)) for j in range(k)]
        for i in range(m)
    ]


def _mat_mul_vec(matrix: Sequence[Sequence[int]], vector: Sequence[int]) -> List[int]:
    out = []
    for row in matrix:
        acc = 0
        for coeff, value in zip(row, vector):
            acc = gf.add(acc, gf.mul(coeff, value))
        out.append(acc)
    return out


def _invert(matrix: List[List[int]]) -> List[List[int]]:
    """Gauss-Jordan inversion over GF(2^8)."""
    n = len(matrix)
    work = [list(row) + [1 if i == j else 0 for j in range(n)] for i, row in enumerate(matrix)]
    for col in range(n):
        pivot_row = next(
            (r for r in range(col, n) if work[r][col] != 0), None
        )
        if pivot_row is None:
            raise DecodeError("singular decode matrix")
        work[col], work[pivot_row] = work[pivot_row], work[col]
        pivot_inv = gf.inv(work[col][col])
        work[col] = [gf.mul(v, pivot_inv) for v in work[col]]
        for r in range(n):
            if r != col and work[r][col] != 0:
                factor = work[r][col]
                work[r] = [
                    gf.add(v, gf.mul(factor, p)) for v, p in zip(work[r], work[col])
                ]
    return [row[n:] for row in work]


class RSCode:
    """A (k+m, k) systematic Reed-Solomon code."""

    def __init__(self, k: int, m: int):
        if k < 1 or m < 0:
            raise ValueError(f"invalid code parameters k={k}, m={m}")
        if k + m > 255:
            raise ValueError("k + m must be <= 255 for GF(2^8)")
        self.k = k
        self.m = m
        self._parity = _cauchy_parity_matrix(k, m)

    @property
    def total_shards(self) -> int:
        return self.k + self.m

    # -- shard geometry -----------------------------------------------------

    def shard_size(self, data_length: int) -> int:
        return (data_length + self.k - 1) // self.k if data_length else 0

    def split(self, data: bytes) -> List[bytes]:
        """Pad and split ``data`` into k equal-size shards."""
        size = self.shard_size(len(data))
        padded = data.ljust(self.k * size, b"\0")
        return [padded[i * size : (i + 1) * size] for i in range(self.k)]

    # -- encode ---------------------------------------------------------------

    def encode(self, data: bytes) -> List[bytes]:
        """All k+m shards (data shards first, byte-exact systematic)."""
        shards = self.split(data)
        size = len(shards[0]) if shards else 0
        parities = [bytearray(size) for _ in range(self.m)]
        for offset in range(size):
            column = [shard[offset] for shard in shards]
            for row_index, value in enumerate(_mat_mul_vec(self._parity, column)):
                parities[row_index][offset] = value
        return shards + [bytes(p) for p in parities]

    # -- decode ---------------------------------------------------------------

    def decode(self, shards: Dict[int, bytes], data_length: int) -> bytes:
        """Reconstruct the original data from any k shards.

        ``shards`` maps shard index (0..k+m-1) to its bytes.
        """
        if len(shards) < self.k:
            raise DecodeError(
                f"need {self.k} shards, got {len(shards)}"
            )
        sizes = {len(v) for v in shards.values()}
        if len(sizes) > 1:
            raise DecodeError(f"inconsistent shard sizes: {sorted(sizes)}")
        indices = sorted(shards)[: self.k]
        # Fast path: all data shards present.
        if indices == list(range(self.k)):
            data = b"".join(shards[i] for i in range(self.k))
            return data[:data_length]
        # Build the k x k generator submatrix for the available rows.
        rows = []
        for index in indices:
            if index < self.k:
                rows.append([1 if j == index else 0 for j in range(self.k)])
            else:
                rows.append(list(self._parity[index - self.k]))
        inverse = _invert(rows)
        size = len(next(iter(shards.values())))
        recovered = [bytearray(size) for _ in range(self.k)]
        for offset in range(size):
            column = [shards[i][offset] for i in indices]
            for j, value in enumerate(_mat_mul_vec(inverse, column)):
                recovered[j][offset] = value
        return b"".join(bytes(r) for r in recovered)[:data_length]

    def reconstruct_shard(self, shards: Dict[int, bytes], target: int, data_length: int) -> bytes:
        """Rebuild one missing shard from any k survivors."""
        data = self.decode(shards, self.k * self.shard_size(data_length))
        return self.encode(data)[target]
