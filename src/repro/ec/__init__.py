"""Reed-Solomon erasure coding and the striped store overlay."""

from repro.ec.reedsolomon import DecodeError, RSCode
from repro.ec.store import StripedObject, StripedStore

__all__ = ["DecodeError", "RSCode", "StripedObject", "StripedStore"]
