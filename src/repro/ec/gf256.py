"""GF(2^8) arithmetic for Reed-Solomon coding.

The field is built over the AES-style primitive polynomial
``x^8 + x^4 + x^3 + x^2 + 1`` (0x11d) with generator 2; multiplication
uses log/antilog tables, addition is XOR.
"""

from __future__ import annotations

from typing import List

__all__ = ["add", "div", "exp", "inv", "log", "mul"]

_PRIMITIVE_POLY = 0x11D

_EXP: List[int] = [0] * 512
_LOG: List[int] = [0] * 256


def _build_tables() -> None:
    value = 1
    for power in range(255):
        _EXP[power] = value
        _LOG[value] = power
        value <<= 1
        if value & 0x100:
            value ^= _PRIMITIVE_POLY
    for power in range(255, 512):
        _EXP[power] = _EXP[power - 255]


_build_tables()


def add(a: int, b: int) -> int:
    """Addition (and subtraction) in GF(2^8) is XOR."""
    return a ^ b


def mul(a: int, b: int) -> int:
    if a == 0 or b == 0:
        return 0
    return _EXP[_LOG[a] + _LOG[b]]


def inv(a: int) -> int:
    if a == 0:
        raise ZeroDivisionError("0 has no inverse in GF(2^8)")
    return _EXP[255 - _LOG[a]]


def div(a: int, b: int) -> int:
    if b == 0:
        raise ZeroDivisionError("division by zero in GF(2^8)")
    if a == 0:
        return 0
    return _EXP[(_LOG[a] - _LOG[b]) % 255]


def exp(power: int) -> int:
    return _EXP[power % 255]


def log(a: int) -> int:
    if a == 0:
        raise ValueError("log(0) undefined")
    return _LOG[a]
