"""An erasure-coded block store striped across UStore spaces.

Stripes each object over ``k`` data + ``m`` parity shards, one shard
per UStore space (and thus per spindle, when provisioned with disk
exclusion).  Reads prefer the data shards; if any shard's space is
unavailable (disk failed, host down beyond remount), the store degrades
to any ``k`` reachable shards and decodes.  ``repair`` rebuilds a lost
shard onto a replacement space — the recovery workload whose network
cost §IV-E's fabric trick reduces.

The shard bytes are real: what you read back is byte-identical to what
you wrote, through actual RS encode/decode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from repro.cluster.clientlib import MountedSpace, StorageUnavailableError
from repro.ec.reedsolomon import DecodeError, RSCode
from repro.net.iscsi import SessionError
from repro.sim import Event, Simulator

__all__ = ["StripedObject", "StripedStore"]


@dataclass
class StripedObject:
    name: str
    data_length: int
    shard_size: int
    offset: int  # within every shard space


@dataclass
class StripedStore:
    """k+m erasure-coded store over mounted UStore spaces."""

    sim: Simulator
    code: RSCode
    spaces: List[MountedSpace]
    space_bytes: int
    objects: Dict[str, StripedObject] = field(default_factory=dict)
    _shard_bytes: Dict[tuple, bytes] = field(default_factory=dict)
    _next_offset: int = 0
    degraded_reads: int = 0

    def __post_init__(self) -> None:
        if len(self.spaces) != self.code.total_shards:
            raise ValueError(
                f"need {self.code.total_shards} spaces, got {len(self.spaces)}"
            )

    # -- write -------------------------------------------------------------

    def put(self, name: str, data: bytes) -> Generator[Event, None, StripedObject]:
        if name in self.objects:
            raise ValueError(f"object {name!r} exists")
        shards = self.code.encode(data)
        shard_size = len(shards[0]) if shards[0] else 0
        if self._next_offset + shard_size > self.space_bytes:
            raise RuntimeError("striped store out of space")
        obj = StripedObject(
            name=name,
            data_length=len(data),
            shard_size=shard_size,
            offset=self._next_offset,
        )
        self._next_offset += max(shard_size, 1)
        for index, shard in enumerate(shards):
            if shard_size:
                yield from self.spaces[index].write(obj.offset, shard_size)
            self._shard_bytes[(name, index)] = shard
        self.objects[name] = obj
        return obj

    # -- read ----------------------------------------------------------------

    def _read_shard(
        self, obj: StripedObject, index: int
    ) -> Generator[Event, None, Optional[bytes]]:
        try:
            if obj.shard_size:
                yield from self.spaces[index].read(obj.offset, obj.shard_size)
        except (SessionError, StorageUnavailableError):
            return None
        return self._shard_bytes.get((obj.name, index))

    def get(self, name: str) -> Generator[Event, None, bytes]:
        obj = self.objects.get(name)
        if obj is None:
            raise KeyError(name)
        if obj.data_length == 0:
            return b""
        collected: Dict[int, bytes] = {}
        # Data shards first, then parity, until k succeed.
        for index in range(self.code.total_shards):
            shard = yield from self._read_shard(obj, index)
            if shard is not None:
                collected[index] = shard
            if len(collected) == self.code.k:
                break
        if len(collected) < self.code.k:
            raise DecodeError(
                f"{name}: only {len(collected)} of {self.code.k} required shards readable"
            )
        if sorted(collected) != list(range(self.code.k)):
            self.degraded_reads += 1
        return self.code.decode(collected, obj.data_length)

    # -- repair -----------------------------------------------------------------

    def repair(
        self, shard_index: int, replacement: MountedSpace
    ) -> Generator[Event, None, int]:
        """Rebuild every object's ``shard_index`` onto ``replacement``.

        Returns the number of shards rebuilt.  This is the read-k,
        recompute, write-1 traffic pattern of erasure-coded recovery.
        """
        rebuilt = 0
        for name, obj in self.objects.items():
            collected: Dict[int, bytes] = {}
            for index in range(self.code.total_shards):
                if index == shard_index:
                    continue
                shard = yield from self._read_shard(obj, index)
                if shard is not None:
                    collected[index] = shard
                if len(collected) == self.code.k:
                    break
            if len(collected) < self.code.k:
                raise DecodeError(f"{name}: cannot rebuild shard {shard_index}")
            shard = self.code.reconstruct_shard(
                collected, shard_index, obj.data_length
            )
            if obj.shard_size:
                yield from replacement.write(obj.offset, obj.shard_size)
            self._shard_bytes[(name, shard_index)] = shard
            rebuilt += 1
        self.spaces[shard_index] = replacement
        return rebuilt
