"""The benchmark suite: wall-clock measurements of the simulation stack.

Three kinds of benchmark share one record schema (the ``BENCH_*.json``
history files at the repo root):

* ``alloc_scale`` — max-min bandwidth allocation over rack-scale
  fabrics (16 / 240 / 1920 disks, i.e. 1 / 15 / 120 ring pods),
  comparing the incremental allocator against the retained naive
  baseline (:meth:`repro.fabric.bandwidth.BandwidthModel.allocate_naive`)
  and recording the speedup;
* ``kernel_throughput`` — raw events/sec of the discrete-event kernel
  with instrumentation off (the fast path) and on (metrics + digest),
  via self-rescheduling timer callbacks.  The fast path drives
  :meth:`~repro.sim.kernel.Simulator.defer` (the allocation-free hot
  path); a separate ``eventpath`` figure retains the legacy
  ``call_in``/Event route, and a ``scheduler_comparison`` leg times the
  heap reference against the calendar queue at 16/240/1920 concurrent
  timers (the alloc_scale disk counts);
* ``gateway`` — the request tier's offered-load sweep: both gateway
  schedulers (power-aware batch vs naive FIFO) at several load scales,
  recording latency percentiles, spin-ups and disk energy per point
  (``smoke`` restricts to one load point at a shorter duration for the
  CI perf gate);
* ``shardstore`` — small-object ingest/retrieval throughput of the
  packed shard tier vs the naive object-per-request layout
  (simulated objects per wall second, plus the spin-up/latency/energy
  outcomes the ``shardstore_small_objects`` experiment asserts on);
* any registered experiment name (e.g. ``figure5``) — wall time of a
  full experiment run; experiments that declare a ``settle_seconds``
  parameter are run with a nonzero settle so the simulator actually
  executes events and the ``sim.events`` counter is meaningful.

Wall-clock use is deliberate and local to this module: benchmarks
measure the simulator, they never feed timestamps into it.  The module
is listed in the determinism linter's wall-clock exemptions for exactly
that reason.

Records are kept diff-friendly: headline ``wall_seconds`` is the
**median** over repeats (robust to one noisy run, so a committed
refresh under identical code moves as little as possible), the best run
is retained as ``wall_seconds_best``, and the ``recorded_at`` timestamp
is provenance only — no perf gate compares it.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from statistics import median
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments import EXPERIMENTS
from repro.fabric.bandwidth import BandwidthModel, Flow
from repro.fabric.builders import rack_fabric
from repro.obs.metrics import MetricsRegistry
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import EventDigest

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BENCHMARKS",
    "append_record",
    "available_benchmarks",
    "run_benchmark",
]

#: v2: ``wall_seconds`` became the median over repeats (was the best
#: run, now kept as ``wall_seconds_best``) and kernel_throughput grew
#: the defer fast path plus the ``scheduler_comparison`` leg.
BENCH_SCHEMA_VERSION = 2

#: Pod counts for the allocation scale sweep: one deploy unit (the
#: paper's 16-disk prototype), a 15-pod rack (240 disks) and a 120-pod
#: row (1920 disks).
ALLOC_SCALE_PODS: Tuple[int, ...] = (1, 15, 120)

#: Distinct demand levels drawn for alloc_scale flows.  Enough levels
#: that progressive filling takes many rounds (the regime the
#: incremental allocator is built for) while keeping the naive baseline
#: comfortably under the suite's 5 s wall budget at 1920 disks.
_DEMAND_LEVELS = 32

#: Simulated settle time handed to experiments that support it, so the
#: benchmarked run executes real simulator events.
EXPERIMENT_SETTLE_SECONDS = 12.0

KERNEL_EVENTS_FULL = 200_000
KERNEL_EVENTS_SMOKE = 20_000


def _timestamp() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def _base_record(name: str, repeat: int) -> Dict:
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "experiment": name,
        "recorded_at": _timestamp(),
        "repeat": repeat,
    }


def _finish_record(
    record: Dict, wall_times: List[float], sim_events: float, counters: Dict
) -> Dict:
    median_wall = median(wall_times)
    record.update(
        {
            "wall_seconds": round(median_wall, 4),
            "wall_seconds_best": round(min(wall_times), 4),
            "wall_seconds_all": [round(t, 4) for t in wall_times],
            "sim_events": sim_events,
            "sim_events_per_wall_second": (
                round(sim_events / median_wall, 1) if median_wall > 0 else None
            ),
            "counters": {k: v for k, v in sorted(counters.items())},
        }
    )
    return record


def _rack_flows(num_disks_sorted: Sequence[str], seed: int) -> List[Flow]:
    """Deterministic pseudo-random flows: mixed direction, many demand levels."""
    rng = RngRegistry(seed).stream("bench.alloc_scale")
    levels = [rng.uniform(20e6, 180e6) for _ in range(_DEMAND_LEVELS)]
    return [
        Flow(f"f{i}", disk_id, rng.choice(levels), rng.random() < 0.5)
        for i, disk_id in enumerate(num_disks_sorted)
    ]


def bench_alloc_scale(
    repeat: int = 2, seed: int = 42, smoke: bool = False
) -> Dict:
    """Incremental vs naive progressive filling across fabric sizes.

    Per size, times the optimized allocator cold (first call: path walks
    plus skeleton build) and warm (epoch caches hot), runs the naive
    baseline once, and cross-checks the two allocations.  ``smoke``
    restricts the sweep to the 16-disk size for the CI perf gate.
    """
    pods = ALLOC_SCALE_PODS[:1] if smoke else ALLOC_SCALE_PODS
    record = _base_record("alloc_scale", repeat)
    record["seed"] = seed
    sizes: List[Dict] = []
    total_wall = 0.0
    allocations = 0
    started_total = time.perf_counter()
    for pod_count in pods:
        fabric = rack_fabric(pod_count)
        disks = sorted(disk.node_id for disk in fabric.disks)
        flows = _rack_flows(disks, seed)
        model = BandwidthModel(fabric)

        t0 = time.perf_counter()
        optimized = model.allocate(flows)
        cold_seconds = time.perf_counter() - t0
        warm_times: List[float] = []
        for _ in range(max(1, repeat)):
            t0 = time.perf_counter()
            optimized = model.allocate(flows)
            warm_times.append(time.perf_counter() - t0)
            allocations += 1
        t0 = time.perf_counter()
        naive = model.allocate_naive(flows)
        naive_seconds = time.perf_counter() - t0

        max_rel_diff = 0.0
        for flow_id, rate in optimized.rates.items():
            other = naive.rates[flow_id]
            scale = max(abs(rate), abs(other), 1.0)
            diff = abs(rate - other) / scale
            if diff > max_rel_diff:
                max_rel_diff = diff
        warm_seconds = min(warm_times)
        sizes.append(
            {
                "pods": pod_count,
                "disks": len(disks),
                "flows": len(flows),
                "opt_cold_seconds": round(cold_seconds, 5),
                "opt_warm_seconds": round(warm_seconds, 5),
                "naive_seconds": round(naive_seconds, 5),
                "speedup_cold": round(naive_seconds / cold_seconds, 1)
                if cold_seconds > 0
                else None,
                "speedup_warm": round(naive_seconds / warm_seconds, 1)
                if warm_seconds > 0
                else None,
                "flows_per_second_warm": round(len(flows) / warm_seconds, 1)
                if warm_seconds > 0
                else None,
                "max_rel_diff_vs_naive": max_rel_diff,
            }
        )
    total_wall = time.perf_counter() - started_total
    record["sizes"] = sizes
    return _finish_record(
        record,
        [total_wall],
        0.0,
        {"fabric.allocations": float(allocations)},
    )


def _drive_kernel(sim: Simulator, total_events: int) -> None:
    """Run ``total_events`` call_in timers (the legacy Event path)."""
    remaining = [total_events]

    def tick() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.call_in(1.0, tick)

    fan_out = min(16, total_events)
    for i in range(fan_out):
        sim.call_in(float(i % 3), tick)
    sim.run()


def _drive_kernel_defer(sim: Simulator, total_events: int, fan_out: int) -> None:
    """Run ``total_events`` self-rescheduling :meth:`Simulator.defer`
    timers while keeping ``fan_out`` of them pending — the scheduler
    holds ~``fan_out`` items throughout, so the fan models queue depth
    (one pending timer per simulated disk)."""
    remaining = [total_events]
    defer = sim.defer

    def tick() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            defer(1.0, tick)

    fan_out = min(fan_out, total_events)
    for i in range(fan_out):
        defer(float(i % 3), tick)
    sim.run()


#: Concurrent-timer fans for the scheduler comparison: queue depths
#: matching the alloc_scale sweep's 16 / 240 / 1920 disk counts.
SCHEDULER_COMPARISON_FANS: Tuple[int, ...] = (16, 240, 1920)


def _median_rate(times: List[float], events: int) -> Optional[float]:
    med = median(times)
    return round(events / med, 1) if med > 0 else None


def bench_kernel_throughput(
    repeat: int = 2, seed: int = 42, smoke: bool = False
) -> Dict:
    """Events/sec of the kernel: defer fast path, legacy Event path,
    instrumented path, and heap vs calendar at three queue depths."""
    del seed  # kernel throughput is workload-independent
    total_events = KERNEL_EVENTS_SMOKE if smoke else KERNEL_EVENTS_FULL
    record = _base_record("kernel_throughput", repeat)
    record["events_per_run"] = total_events

    def timed(make_sim, drive) -> List[float]:
        times: List[float] = []
        for _ in range(max(1, repeat)):
            sim = make_sim()
            t0 = time.perf_counter()
            drive(sim)
            times.append(time.perf_counter() - t0)
        return times

    # Headline fast path: allocation-free defer timers, default
    # (calendar) scheduler, 16-wide fan.
    fast_times = timed(
        Simulator, lambda sim: _drive_kernel_defer(sim, total_events, 16)
    )
    # The legacy Event/callback route (Timeout allocation per timer).
    eventpath_times = timed(
        Simulator, lambda sim: _drive_kernel(sim, total_events)
    )

    def instrumented_sim() -> Simulator:
        sim = Simulator(metrics=MetricsRegistry())
        EventDigest().attach(sim)
        return sim

    instrumented_times = timed(
        instrumented_sim, lambda sim: _drive_kernel_defer(sim, total_events, 16)
    )

    record["events_per_second_fast"] = _median_rate(fast_times, total_events)
    record["events_per_second_eventpath"] = _median_rate(
        eventpath_times, total_events
    )
    record["events_per_second_instrumented"] = _median_rate(
        instrumented_times, total_events
    )
    fast_med = median(fast_times)
    record["fast_path_uplift"] = (
        round(median(instrumented_times) / fast_med, 2) if fast_med > 0 else None
    )

    comparison: List[Dict] = []
    for fan_out in SCHEDULER_COMPARISON_FANS:
        point: Dict = {"fan_out": fan_out}
        for scheduler in ("heap", "calendar"):
            times = timed(
                lambda scheduler=scheduler: Simulator(scheduler=scheduler),
                lambda sim: _drive_kernel_defer(sim, total_events, fan_out),
            )
            point[f"{scheduler}_events_per_second"] = _median_rate(
                times, total_events
            )
        heap_rate = point["heap_events_per_second"]
        calendar_rate = point["calendar_events_per_second"]
        point["calendar_uplift"] = (
            round(calendar_rate / heap_rate, 2)
            if heap_rate and calendar_rate
            else None
        )
        comparison.append(point)
    record["scheduler_comparison"] = comparison

    return _finish_record(
        record,
        fast_times,
        float(total_events),
        {"sim.events": float(total_events)},
    )


#: Load multipliers for the gateway sweep (1.0 = the gateway_slo
#: experiment's contended default of ~1.5 req/s offered).
GATEWAY_LOAD_SCALES: Tuple[float, ...] = (0.5, 1.0, 2.0)
GATEWAY_DURATION_FULL = 180.0
GATEWAY_DURATION_SMOKE = 60.0


def bench_gateway(repeat: int = 1, seed: int = 42, smoke: bool = False) -> Dict:
    """Offered load vs latency/power for both gateway schedulers.

    Each sweep point runs :func:`repro.experiments.gateway_slo.run_point`
    on a fresh deployment: open-loop multi-tenant arrivals against 16
    initially spun-down disks under one power budget.  ``smoke`` runs a
    single load point at a short duration so the perf gate stays cheap.
    """
    from repro.experiments import gateway_slo

    load_scales = GATEWAY_LOAD_SCALES[1:2] if smoke else GATEWAY_LOAD_SCALES
    duration = GATEWAY_DURATION_SMOKE if smoke else GATEWAY_DURATION_FULL
    offered_rps = sum(spec.arrival_rate for spec in gateway_slo.TENANTS)
    record = _base_record("gateway", repeat)
    record["seed"] = seed
    record["smoke"] = smoke
    record["duration"] = duration
    sweep: List[Dict] = []
    wall_times: List[float] = []
    registry = MetricsRegistry()
    for _ in range(max(1, repeat)):
        sweep = []
        started_total = time.perf_counter()
        for load_scale in load_scales:
            for scheduler in ("batch", "fifo"):
                t0 = time.perf_counter()
                summary = gateway_slo.run_point(
                    scheduler,
                    seed=seed,
                    duration=duration,
                    load_scale=load_scale,
                    metrics=registry,
                )
                point_wall = time.perf_counter() - t0
                sweep.append(
                    {
                        "load_scale": load_scale,
                        "offered_rps": round(offered_rps * load_scale, 3),
                        "scheduler": scheduler,
                        "completed": summary["completed"],
                        "rejected": summary["rejected"],
                        "slo_misses": summary["slo_misses"],
                        "spin_ups": summary["spin_ups"],
                        "batches": summary["batches"],
                        "latency_p50": round(float(summary["latency_p50"]), 3),
                        "latency_p99": round(float(summary["latency_p99"]), 3),
                        "energy_joules": round(float(summary["energy_joules"]), 1),
                        "wall_seconds": round(point_wall, 4),
                    }
                )
        wall_times.append(time.perf_counter() - started_total)
    record["sweep"] = sweep
    counters = {
        name: counter.value
        for name, counter in registry.counters().items()
        if name.startswith("gateway.") or name == "sim.events"
    }
    return _finish_record(
        record,
        wall_times,
        registry.counter("sim.events").value,
        counters,
    )


SHARDSTORE_OBJECTS_FULL = 1000
SHARDSTORE_OBJECTS_SMOKE = 250
SHARDSTORE_GETS_FULL = 200
SHARDSTORE_GETS_SMOKE = 50


def bench_shardstore(
    repeat: int = 1, seed: int = 42, smoke: bool = False
) -> Dict:
    """Small-object ingest throughput: packed shards vs naive objects.

    Each point runs :func:`repro.experiments.shardstore_small_objects
    .run_point` on a fresh deployment — the packed variant routes every
    object through the shardstore (few large flush writes), the naive
    variant issues one hash-spread gateway request per object — and
    records simulated objects/sec of wall time alongside the spin-up,
    latency and energy outcomes.  ``smoke`` shrinks the object count
    for the CI perf gate.
    """
    from repro.experiments import shardstore_small_objects

    num_objects = SHARDSTORE_OBJECTS_SMOKE if smoke else SHARDSTORE_OBJECTS_FULL
    num_gets = SHARDSTORE_GETS_SMOKE if smoke else SHARDSTORE_GETS_FULL
    record = _base_record("shardstore", repeat)
    record["seed"] = seed
    record["smoke"] = smoke
    record["num_objects"] = num_objects
    record["num_gets"] = num_gets
    points: List[Dict] = []
    wall_times: List[float] = []
    registry = MetricsRegistry()
    for _ in range(max(1, repeat)):
        points = []
        started_total = time.perf_counter()
        for layout in ("packed", "naive"):
            t0 = time.perf_counter()
            summary = shardstore_small_objects.run_point(
                layout,
                seed=seed,
                num_objects=num_objects,
                num_gets=num_gets,
                metrics=registry,
            )
            point_wall = time.perf_counter() - t0
            points.append(
                {
                    "layout": layout,
                    "objects_per_second": round(num_objects / point_wall, 1)
                    if point_wall > 0
                    else None,
                    "exactly_once": summary["exactly_once"],
                    "spin_ups": summary["spin_ups"],
                    "disk_passes": summary["disk_passes"],
                    "coalesced_reads": summary["coalesced_reads"],
                    "spaces_touched": summary["spaces_touched"],
                    "put_p99": round(float(summary["put_p99"]), 3),
                    "get_p99": round(float(summary["get_p99"]), 3),
                    "energy_joules": round(float(summary["energy_joules"]), 1),
                    "wall_seconds": round(point_wall, 4),
                }
            )
        wall_times.append(time.perf_counter() - started_total)
    record["points"] = points
    counters = {
        name: counter.value
        for name, counter in registry.counters().items()
        if name.startswith(("shardstore.", "gateway.")) or name == "sim.events"
    }
    return _finish_record(
        record,
        wall_times,
        registry.counter("sim.events").value,
        counters,
    )


TIERING_WRITES_FULL = 240
TIERING_WRITES_SMOKE = 60
TIERING_READS_FULL = 40
TIERING_READS_SMOKE = 16
TIERING_WINDOW_SMOKE = 240.0
TIERING_TOTAL_SMOKE = 520.0


def bench_tiering(repeat: int = 1, seed: int = 42, smoke: bool = False) -> Dict:
    """Archival write treatment: staged hot tier vs write-through.

    Each point runs :func:`repro.experiments.tiering_staging.run_point`
    on a fresh deployment — the staged variant absorbs writes on the
    pinned hot tier and demotes them in background batches, the
    write-through variant pays each cold home's spin-up in the ack
    path — and records simulated writes/sec of wall time alongside the
    spin-up, latency and energy outcomes.  ``smoke`` shrinks the write
    window for the CI perf gate.
    """
    from repro.experiments import tiering_staging

    num_writes = TIERING_WRITES_SMOKE if smoke else TIERING_WRITES_FULL
    num_cold_reads = TIERING_READS_SMOKE if smoke else TIERING_READS_FULL
    kwargs: Dict[str, float] = {}
    if smoke:
        kwargs["write_seconds"] = TIERING_WINDOW_SMOKE
        kwargs["total_seconds"] = TIERING_TOTAL_SMOKE
    record = _base_record("tiering", repeat)
    record["seed"] = seed
    record["smoke"] = smoke
    record["num_writes"] = num_writes
    record["num_cold_reads"] = num_cold_reads
    points: List[Dict] = []
    wall_times: List[float] = []
    registry = MetricsRegistry()
    for _ in range(max(1, repeat)):
        points = []
        started_total = time.perf_counter()
        for mode in ("staged", "write_through"):
            t0 = time.perf_counter()
            summary = tiering_staging.run_point(
                mode,
                seed=seed,
                num_writes=num_writes,
                num_cold_reads=num_cold_reads,
                metrics=registry,
                **kwargs,
            )
            point_wall = time.perf_counter() - t0
            point = {
                "mode": mode,
                "writes_per_second": round(num_writes / point_wall, 1)
                if point_wall > 0
                else None,
                "exactly_once": summary["exactly_once"],
                "spin_ups": summary["spin_ups"],
                "write_p99": round(float(summary["write_p99"]), 3),
                "cold_read_p99": round(float(summary["cold_read_p99"]), 3),
                "energy_joules": round(float(summary["energy_joules"]), 1),
                "wall_seconds": round(point_wall, 4),
            }
            if "store" in summary:
                point["demotion_batches"] = summary["store"]["demotion_batches"]
                point["demoted"] = summary["store"]["demoted"]
            points.append(point)
        wall_times.append(time.perf_counter() - started_total)
    record["points"] = points
    counters = {
        name: counter.value
        for name, counter in registry.counters().items()
        if name.startswith(("tiering.", "gateway.")) or name == "sim.events"
    }
    return _finish_record(
        record,
        wall_times,
        registry.counter("sim.events").value,
        counters,
    )


#: Pure-suite benchmarks (everything else resolves via EXPERIMENTS).
BENCHMARKS: Dict[str, Callable[..., Dict]] = {
    "alloc_scale": bench_alloc_scale,
    "kernel_throughput": bench_kernel_throughput,
    "gateway": bench_gateway,
    "shardstore": bench_shardstore,
    "tiering": bench_tiering,
}


def available_benchmarks() -> List[str]:
    """Names accepted by :func:`run_benchmark`."""
    return sorted(BENCHMARKS) + [n for n in EXPERIMENTS.names()]


def bench_experiment(name: str, repeat: int = 1, **_ignored: object) -> Dict:
    """Time a registered experiment run; settle when the experiment can.

    Experiments that declare ``settle_seconds`` are run with
    :data:`EXPERIMENT_SETTLE_SECONDS` so the deployments' event loops
    actually execute and ``sim.events`` lands in the record nonzero
    (the default-parameter run — and hence the replay digest checked by
    ``repro check-determinism`` — is untouched).
    """
    experiment = EXPERIMENTS.get(name)
    overrides: Dict[str, float] = {}
    if "settle_seconds" in experiment.params:
        overrides["settle_seconds"] = EXPERIMENT_SETTLE_SECONDS
    wall_times: List[float] = []
    result = None
    for _ in range(max(1, repeat)):
        started = time.perf_counter()
        result = experiment.run(**overrides)
        wall_times.append(time.perf_counter() - started)
    assert result is not None
    obs = result.obs or {}
    counters = obs.get("counters", {})
    record = _base_record(name, repeat)
    if overrides:
        record["params"] = dict(overrides)
    return _finish_record(
        record, wall_times, counters.get("sim.events", 0.0), counters
    )


def run_benchmark(
    name: str, repeat: int = 1, seed: int = 42, smoke: bool = False
) -> Dict:
    """Run one benchmark (suite entry or experiment) and return its record."""
    bench = BENCHMARKS.get(name)
    if bench is not None:
        return bench(repeat=max(1, repeat), seed=seed, smoke=smoke)
    if name in EXPERIMENTS:
        return bench_experiment(name, repeat=max(1, repeat))
    raise KeyError(
        f"unknown benchmark {name!r}; available: {', '.join(available_benchmarks())}"
    )


def append_record(out_dir: Path, record: Dict) -> Path:
    """Append ``record`` to the BENCH history file for its benchmark."""
    Path(out_dir).mkdir(parents=True, exist_ok=True)
    path = Path(out_dir) / f"BENCH_{record['experiment']}.json"
    history: List[Dict] = []
    if path.exists():
        try:
            history = json.loads(path.read_text())
        except (ValueError, OSError):
            history = []
        if not isinstance(history, list):
            history = []
    history.append(record)
    path.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")
    return path
