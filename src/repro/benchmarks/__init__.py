"""Wall-clock benchmark suite (rack-scale allocator + kernel throughput).

See :mod:`repro.benchmarks.suite`.  Records are appended to
``BENCH_<name>.json`` files by ``scripts/run_benchmarks.py`` or the
``repro bench`` CLI subcommand.
"""

from repro.benchmarks.suite import (
    BENCH_SCHEMA_VERSION,
    BENCHMARKS,
    append_record,
    available_benchmarks,
    run_benchmark,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BENCHMARKS",
    "append_record",
    "available_benchmarks",
    "run_benchmark",
]
