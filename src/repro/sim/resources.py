"""Shared-resource primitives for simulation processes.

Provides the classic trio:

* :class:`Resource` — a capacity-limited server with a FIFO queue.
* :class:`Store` — a buffer of Python objects (used for mailboxes).
* :class:`Container` — a continuous quantity (used for power budgets).

All requests are events, so processes compose them with timeouts via
``Simulator.any_of`` for bounded waits.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional

from repro.sim.kernel import Event, SimulationError, Simulator

__all__ = ["Container", "Resource", "Store"]


class Resource:
    """A server with ``capacity`` concurrent slots and a FIFO wait queue.

    Named resources participate in same-timestamp race detection: each
    ``request``/``release`` reports a write-touch to the simulator, so
    ``Simulator(detect_races=True)`` can flag grant orders that are
    decided only by event insertion order.  Anonymous resources are not
    tracked.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: Optional[str] = None) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.users = 0
        self._waiters: Deque[Event] = deque()

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self) -> Event:
        """Event that fires once a slot is held.  Pair with :meth:`release`."""
        if self.name is not None:
            self.sim.touch_resource(self.name, write=True)
        event = self.sim.event()
        if self.users < self.capacity:
            self.users += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Give back one slot, waking the next waiter if any."""
        if self.users <= 0:
            raise SimulationError("release() without a matching request()")
        if self.name is not None:
            self.sim.touch_resource(self.name, write=True)
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self.users -= 1

    def cancel(self, request_event: Event) -> bool:
        """Withdraw a still-queued request; returns False if already granted."""
        try:
            self._waiters.remove(request_event)
            return True
        except ValueError:
            return False


class Store:
    """An unbounded (or bounded) buffer of items; FIFO on both sides.

    As with :class:`Resource`, giving a Store a ``name`` opts it into
    same-timestamp race detection.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: float = float("inf"),
        name: Optional[str] = None,
    ) -> None:
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.items: Deque[Any] = deque()
        self._getters: Deque[tuple[Event, Optional[Callable[[Any], bool]]]] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Event that fires once ``item`` is accepted into the store."""
        if self.name is not None:
            self.sim.touch_resource(self.name, write=True)
        event = self.sim.event()
        if self._getters:
            matched = self._dispatch_to_getter(item)
            if matched:
                event.succeed()
                return event
        if len(self.items) < self.capacity:
            self.items.append(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def get(self, predicate: Optional[Callable[[Any], bool]] = None) -> Event:
        """Event that fires with the next item (matching ``predicate`` if given)."""
        if self.name is not None:
            self.sim.touch_resource(self.name, write=True)
        event = self.sim.event()
        item = self._take_matching(predicate)
        if item is not _NOTHING:
            event.succeed(item)
            self._admit_putter()
        else:
            self._getters.append((event, predicate))
        return event

    def _take_matching(self, predicate: Optional[Callable[[Any], bool]]) -> Any:
        if predicate is None:
            return self.items.popleft() if self.items else _NOTHING
        for i, item in enumerate(self.items):
            if predicate(item):
                del self.items[i]
                return item
        return _NOTHING

    def _dispatch_to_getter(self, item: Any) -> bool:
        for i, (event, predicate) in enumerate(self._getters):
            if predicate is None or predicate(item):
                del self._getters[i]
                event.succeed(item)
                return True
        return False

    def _admit_putter(self) -> None:
        if self._putters and len(self.items) < self.capacity:
            event, item = self._putters.popleft()
            self.items.append(item)
            event.succeed()


_NOTHING = object()


class Container:
    """A continuous quantity with blocking get/put.

    As with :class:`Resource`, naming a Container opts it into
    same-timestamp race detection.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: float = float("inf"),
        init: float = 0.0,
        name: Optional[str] = None,
    ) -> None:
        if init < 0 or init > capacity:
            raise SimulationError(f"init {init} outside [0, {capacity}]")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.level = float(init)
        self._getters: Deque[tuple[Event, float]] = deque()
        self._putters: Deque[tuple[Event, float]] = deque()

    def get(self, amount: float) -> Event:
        if amount < 0:
            raise SimulationError(f"negative get amount {amount}")
        if self.name is not None:
            self.sim.touch_resource(self.name, write=True)
        event = self.sim.event()
        self._getters.append((event, amount))
        self._drain()
        return event

    def put(self, amount: float) -> Event:
        if amount < 0:
            raise SimulationError(f"negative put amount {amount}")
        if self.name is not None:
            self.sim.touch_resource(self.name, write=True)
        event = self.sim.event()
        self._putters.append((event, amount))
        self._drain()
        return event

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters and self.level + self._putters[0][1] <= self.capacity:
                event, amount = self._putters.popleft()
                self.level += amount
                event.succeed()
                progressed = True
            if self._getters and self.level >= self._getters[0][1]:
                event, amount = self._getters.popleft()
                self.level -= amount
                event.succeed()
                progressed = True
