"""Tracing and metric collection for simulations.

A :class:`Tracer` records timestamped events into typed channels; a
:class:`TimeSeries` accumulates (time, value) samples and computes
summary statistics; :class:`Counter` tracks monotonically increasing
counts.  All are plain in-memory structures so tests can assert on them
directly.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterable, List, Optional

if TYPE_CHECKING:
    from repro.sim.kernel import Simulator

__all__ = [
    "Counter",
    "EventDigest",
    "TimeSeries",
    "TraceRecord",
    "Tracer",
    "records_digest",
]


@dataclass(frozen=True)
class TraceRecord:
    time: float
    channel: str
    message: str
    data: Dict[str, Any] = field(default_factory=dict)

    def canonical(self) -> str:
        """A stable one-line serialization for digesting."""
        payload = ",".join(f"{k}={self.data[k]!r}" for k in sorted(self.data))
        return f"{self.time!r}|{self.channel}|{self.message}|{payload}"


def records_digest(records: Iterable[TraceRecord]) -> str:
    """SHA-256 over a canonical serialization of ``records``.

    Two runs are replay-identical iff their digests match byte for
    byte; the replay-determinism regression tests rely on this.
    """
    digest = hashlib.sha256()
    for record in records:
        digest.update(record.canonical().encode())
        digest.update(b"\n")
    return digest.hexdigest()


class EventDigest:
    """Streaming fingerprint of a kernel's event execution order.

    Attach to one or more simulators; every processed event folds its
    ``(time, priority, seq)`` triple into a running SHA-256.  Identical
    digests mean the runs popped exactly the same events in exactly the
    same order — the strongest replay-equality check we have, without
    storing millions of records.
    """

    def __init__(self) -> None:
        self._hash = hashlib.sha256()
        self.events = 0

    def attach(self, sim: "Simulator") -> "EventDigest":
        sim.add_step_hook(self.record)
        return self

    def record(self, time: float, priority: int, seq: int) -> None:
        self._hash.update(f"{time!r}|{priority}|{seq}\n".encode())
        self.events += 1

    def hexdigest(self) -> str:
        return self._hash.hexdigest()


class Tracer:
    """Append-only trace log with per-channel filtering and subscribers."""

    def __init__(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        self.records: List[TraceRecord] = []
        self._subscribers: List[Callable[[TraceRecord], None]] = []
        self.enabled = True

    def emit(self, channel: str, message: str, **data: Any) -> None:
        if not self.enabled:
            return
        record = TraceRecord(self._clock(), channel, message, data)
        self.records.append(record)
        for subscriber in self._subscribers:
            subscriber(record)

    def subscribe(self, fn: Callable[[TraceRecord], None]) -> None:
        self._subscribers.append(fn)

    def channel(self, channel: str) -> List[TraceRecord]:
        return [r for r in self.records if r.channel == channel]

    def since(self, time: float) -> List[TraceRecord]:
        return [r for r in self.records if r.time >= time]

    def digest(self) -> str:
        """Replay fingerprint of everything recorded so far."""
        return records_digest(self.records)

    def clear(self) -> None:
        self.records.clear()


class TimeSeries:
    """(time, value) samples with simple statistics."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def sample(self, time: float, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    @property
    def last(self) -> Optional[float]:
        return self.values[-1] if self.values else None

    def mean(self) -> float:
        if not self.values:
            return 0.0
        return sum(self.values) / len(self.values)

    def stddev(self) -> float:
        n = len(self.values)
        if n < 2:
            return 0.0
        mu = self.mean()
        return math.sqrt(sum((v - mu) ** 2 for v in self.values) / (n - 1))

    def minimum(self) -> float:
        return min(self.values) if self.values else 0.0

    def maximum(self) -> float:
        return max(self.values) if self.values else 0.0

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile, q in [0, 100]."""
        if not self.values:
            return 0.0
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile q must be in [0, 100], got {q}")
        ordered = sorted(self.values)
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100.0) * (len(ordered) - 1)
        lo = int(math.floor(rank))
        hi = int(math.ceil(rank))
        if lo == hi:
            return ordered[lo]
        frac = rank - lo
        return ordered[lo] * (1 - frac) + ordered[hi] * frac

    def time_weighted_mean(self, end_time: Optional[float] = None) -> float:
        """Mean of a step function defined by the samples."""
        if not self.values:
            return 0.0
        if len(self.values) == 1:
            return self.values[0]
        end = end_time if end_time is not None else self.times[-1]
        total = 0.0
        duration = 0.0
        for i in range(len(self.values)):
            t0 = self.times[i]
            t1 = self.times[i + 1] if i + 1 < len(self.times) else end
            span = max(0.0, t1 - t0)
            total += self.values[i] * span
            duration += span
        return total / duration if duration > 0 else self.values[-1]


class Counter:
    """Named monotonically increasing counters."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def incr(self, name: str, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only increase; got {amount}")
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)
