"""Discrete-event simulation kernel.

The kernel is a deterministic event loop: callbacks are ordered by
(time, priority, sequence number), so two simulations configured with the
same seeds replay identically.  Generator-based processes are layered on
top in :mod:`repro.sim.process`.

This module depends only on the standard library and the (equally
stdlib-only) :mod:`repro.obs` metrics layer; every other ``repro``
subsystem is built on it.
"""

from __future__ import annotations

import itertools
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Any, Callable, Iterator, List, Optional, Tuple

from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.trace import NULL_TRACER, RequestTracer

if TYPE_CHECKING:  # avoid an import cycle: analysis only uses stdlib
    from repro.analysis.races import Race, RaceDetector
    from repro.sim.process import Process

__all__ = [
    "Event",
    "Interrupt",
    "SimulationError",
    "Simulator",
    "Timeout",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Raised inside a process that has been interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.sim.process.Process.interrupt`.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


# Event priorities: lower sorts first at equal timestamps.
URGENT = 0
NORMAL = 1
LOW = 2


# Scheduling records are plain tuples ``(time, priority, seq, event)``:
# tuple comparison is implemented in C and the unique ``seq`` guarantees
# ordering is decided before the (incomparable) event is reached.
_ScheduledItem = Tuple[float, int, int, "Event"]


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, becomes *triggered* when it is scheduled
    to fire, and *processed* once its callbacks have run.  Processes wait
    on events by yielding them; arbitrary callbacks can also subscribe.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_processed", "_defused")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        self._defused = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        return self._ok

    @property
    def value(self) -> Any:
        if not self._processed and not self._triggered:
            raise SimulationError("event value is not yet available")
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0, priority: int = NORMAL) -> "Event":
        """Schedule this event to fire successfully with ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self._ok = True
        self.sim._push(self, delay, priority)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0, priority: int = NORMAL) -> "Event":
        """Schedule this event to fire with an exception.

        A failed event raises ``exception`` inside every process waiting
        on it.  If nothing waits, the simulator surfaces the exception at
        processing time unless :meth:`defuse` was called.
        """
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._triggered = True
        self._value = exception
        self._ok = False
        self.sim._push(self, delay, priority)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled even if nobody waits on it."""
        self._defused = True

    def _process(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        for callback in callbacks or ():
            callback(self)
        if not self._ok and not self._defused:
            raise self._value


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._triggered = True
        self._value = value
        sim._push(self, delay, NORMAL)


def _describe_event(event: Event) -> str:
    """Qualified name of the code an event will run, for race reports.

    Called only on the instrumented slow path while a race detector is
    armed, so the ``Race``/``render()`` output can point at source
    (``process:Writer.run``) instead of bare sequence numbers.  Uses
    duck typing on ``generator`` because :class:`repro.sim.process.Process`
    lives downstream of this module.
    """
    generator = getattr(event, "generator", None)
    if generator is not None:
        return f"process:{getattr(generator, '__qualname__', getattr(event, 'name', '?'))}"
    for callback in event.callbacks or ():
        owner = getattr(callback, "__self__", None)
        owner_gen = getattr(owner, "generator", None)
        if owner_gen is not None:
            # Bound Process._resume: the event resumes that process.
            return f"resume:{getattr(owner_gen, '__qualname__', getattr(owner, 'name', '?'))}"
        return f"callback:{getattr(callback, '__qualname__', type(callback).__name__)}"
    return type(event).__name__.lower()


class Simulator:
    """Deterministic discrete-event simulator.

    Typical usage::

        sim = Simulator()
        sim.process(my_generator_function(sim))
        sim.run(until=100.0)

    With ``detect_races=True`` the simulator records, for every
    ``(time, priority)`` bucket holding more than one event, which
    shared resources the callbacks touched (via
    :meth:`touch_resource`), and :attr:`races` reports buckets whose
    ordering was decided only by insertion order while conflicting on a
    resource — see :mod:`repro.analysis.races`.
    """

    def __init__(
        self,
        start_time: float = 0.0,
        detect_races: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[RequestTracer] = None,
    ) -> None:
        self._now = float(start_time)
        self._queue: List[_ScheduledItem] = []
        self._seq = itertools.count()
        self._active = True
        self._step_hooks: List[Callable[[float, int, int], None]] = []
        self._race_detector: Optional["RaceDetector"] = None
        if detect_races:
            from repro.analysis.races import RaceDetector

            self._race_detector = RaceDetector()
        # Metrics are read on the hot path, so the disabled case is the
        # shared null registry whose counter increments are no-ops.
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.metrics.bind_clock(lambda: self._now)
        self._events_counter = self.metrics.counter("sim.events")
        # The request tracer rides alongside the registry: components
        # read ``sim.tracer`` once at construction and per-request
        # contexts are carried explicitly on requests, so the disabled
        # case (the shared null tracer) costs nothing on the hot loop.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.tracer.bind_clock(lambda: self._now)
        # With metrics, race detection and step hooks all off, step()
        # takes a fast branch that just pops and processes.
        self._instrumented = self.metrics.enabled or self._race_detector is not None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- observability ---------------------------------------------------

    def add_step_hook(self, hook: Callable[[float, int, int], None]) -> None:
        """Call ``hook(time, priority, seq)`` before each event runs.

        Used by :class:`repro.sim.trace.EventDigest` to fingerprint the
        execution order for replay-determinism checks.
        """
        self._step_hooks.append(hook)
        self._instrumented = True

    def touch_resource(self, resource: str, write: bool = True) -> None:
        """Record a shared-resource touch for race detection.

        No-op unless the simulator was built with ``detect_races=True``,
        so instrumented resources can call this unconditionally.
        """
        if self._race_detector is not None:
            self._race_detector.touch(resource, write)

    @property
    def races(self) -> "List[Race]":
        """Same-timestamp conflicts observed so far (empty when
        race detection is off)."""
        if self._race_detector is None:
            return []
        return self._race_detector.report()

    # -- event creation ------------------------------------------------

    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def call_at(self, time: float, fn: Callable[[], None], priority: int = NORMAL) -> Event:
        """Run ``fn()`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(f"cannot schedule in the past: {time} < {self._now}")
        return self.call_in(time - self._now, fn, priority)

    def call_in(self, delay: float, fn: Callable[[], None], priority: int = NORMAL) -> Event:
        """Run ``fn()`` after ``delay`` seconds of simulated time."""
        event = self.timeout(delay)
        event.callbacks.append(lambda _ev: fn())
        return event

    def process(self, generator: Iterator[Event]) -> "Process":
        """Start a generator-based process (see :mod:`repro.sim.process`)."""
        from repro.sim.process import Process

        return Process(self, generator)

    def all_of(self, events: list[Event]) -> Event:
        """Event that fires once every event in ``events`` has fired."""
        gate = self.event()
        remaining = len(events)
        if remaining == 0:
            gate.succeed([])
            return gate
        results: list[Any] = [None] * remaining
        state = {"left": remaining, "failed": False}

        def make_callback(index: int) -> Callable[[Event], None]:
            def on_fire(ev: Event) -> None:
                if state["failed"]:
                    return
                if not ev.ok:
                    state["failed"] = True
                    ev.defuse()
                    if not gate.triggered:
                        gate.fail(ev.value)
                    return
                results[index] = ev.value
                state["left"] -= 1
                if state["left"] == 0 and not gate.triggered:
                    gate.succeed(list(results))

            return on_fire

        for i, ev in enumerate(events):
            if ev.processed:
                make_callback(i)(ev)
            else:
                ev.callbacks.append(make_callback(i))
        return gate

    def any_of(self, events: list[Event]) -> Event:
        """Event that fires as soon as any event in ``events`` fires."""
        gate = self.event()
        if not events:
            gate.succeed(None)
            return gate

        def on_fire(ev: Event) -> None:
            if gate.triggered:
                if not ev.ok:
                    ev.defuse()
                return
            if ev.ok:
                gate.succeed(ev.value)
            else:
                ev.defuse()
                gate.fail(ev.value)

        for ev in events:
            if ev.processed:
                on_fire(ev)
            else:
                ev.callbacks.append(on_fire)
        return gate

    # -- scheduling internals -------------------------------------------

    def _push(self, event: Event, delay: float, priority: int) -> None:
        heappush(self._queue, (self._now + delay, priority, next(self._seq), event))

    # -- running ---------------------------------------------------------

    def step(self) -> None:
        """Process the single next scheduled event."""
        if not self._queue:
            raise SimulationError("no scheduled events")
        item = heappop(self._queue)
        self._now = item[0]
        if not self._instrumented:
            item[3]._process()
            return
        self._events_counter.inc()
        for hook in self._step_hooks:
            hook(item[0], item[1], item[2])
        detector = self._race_detector
        if detector is None:
            item[3]._process()
            return
        detector.begin_event(item[0], item[1], item[2], _describe_event(item[3]))
        try:
            item[3]._process()
        finally:
            detector.end_event()

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Run until the queue drains, or until simulated time ``until``.

        Returns the simulated time at which the run stopped.  The
        ``max_events`` guard turns accidental infinite event loops into a
        loud error instead of a hang.
        """
        queue = self._queue
        pop = heappop
        processed = 0
        while queue:
            if until is not None and queue[0][0] > until:
                self._now = until
                return self._now
            # Inlined fast path; _instrumented is re-read every iteration
            # because a callback may attach a step hook mid-run.
            if self._instrumented:
                self.step()
            else:
                item = pop(queue)
                self._now = item[0]
                item[3]._process()
            processed += 1
            if processed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; possible runaway event loop"
                )
        if until is not None:
            self._now = max(self._now, until)
        return self._now

    def run_until_event(self, event: Event, limit: float = float("inf")) -> Any:
        """Run until ``event`` is processed; return its value.

        Raises :class:`SimulationError` if the queue drains or ``limit``
        is reached before the event fires.
        """
        while not event.processed:
            if not self._queue:
                raise SimulationError("event queue drained before target event fired")
            if self._queue[0][0] > limit:
                raise SimulationError(f"time limit {limit} reached before target event fired")
            self.step()
        if not event.ok:
            raise event.value
        return event.value
