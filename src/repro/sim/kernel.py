"""Discrete-event simulation kernel.

The kernel is a deterministic event loop: callbacks are ordered by
(time, priority, sequence number), so two simulations configured with the
same seeds replay identically.  Generator-based processes are layered on
top in :mod:`repro.sim.process`.

Two interchangeable schedulers implement that total order (see
DESIGN.md §13):

* :class:`CalendarQueue` (the default) — a calendar/ladder structure
  that keeps the near future as one lazily sorted window and everything
  beyond the window horizon as an unsorted spill list, so pushes are
  plain appends on the hot path;
* :class:`HeapScheduler` — the retained ``heapq`` reference
  implementation, selectable via ``Simulator(scheduler="heap")`` or
  :func:`set_default_scheduler`, and the oracle the property tests
  compare the calendar queue against.

Both pop scheduled items in exactly the same ``(time, priority, seq)``
order, so :class:`repro.sim.trace.EventDigest` replay fingerprints are
byte-identical whichever scheduler runs a simulation.

This module depends only on the standard library and the (equally
stdlib-only) :mod:`repro.obs` metrics layer; every other ``repro``
subsystem is built on it.
"""

from __future__ import annotations

import itertools
from bisect import insort
from contextlib import contextmanager
from heapq import heappop, heappush
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.trace import NULL_TRACER, RequestTracer

if TYPE_CHECKING:  # avoid an import cycle: analysis only uses stdlib
    from repro.analysis.races import Race, RaceDetector
    from repro.sim.process import Process

__all__ = [
    "CalendarQueue",
    "Event",
    "HeapScheduler",
    "Interrupt",
    "SCHEDULERS",
    "SimulationError",
    "Simulator",
    "Timeout",
    "default_scheduler",
    "set_default_scheduler",
    "use_scheduler",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Raised inside a process that has been interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.sim.process.Process.interrupt`.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


# Event priorities: lower sorts first at equal timestamps.
URGENT = 0
NORMAL = 1
LOW = 2


# Scheduling records are plain tuples ``(time, priority, seq, run)``
# where ``run`` is the zero-argument callable that processes the entry
# (an ``Event._process`` bound method, or a raw deferred callback from
# :meth:`Simulator.defer`): tuple comparison is implemented in C and the
# unique ``seq`` guarantees ordering is decided before the
# (incomparable) callable is reached.
_ScheduledItem = Tuple[float, int, int, Callable[[], None]]

_INFINITY = float("inf")


class HeapScheduler:
    """Reference scheduler: one global binary heap (``heapq``).

    ``push``/``pop`` are O(log n).  Kept both as the oracle for the
    calendar-queue property tests and as a fallback selectable with
    ``Simulator(scheduler="heap")``.
    """

    __slots__ = ("_heap",)

    name = "heap"

    def __init__(self) -> None:
        self._heap: List[_ScheduledItem] = []

    def push(self, item: _ScheduledItem) -> None:
        heappush(self._heap, item)

    def pop(self) -> _ScheduledItem:
        """Smallest item by ``(time, priority, seq)``.

        Raises :class:`IndexError` when empty (matching ``list.pop``);
        the simulator relies on that to detect a drained queue without
        a per-event emptiness check.
        """
        return heappop(self._heap)

    def peek_time(self) -> float:
        return self._heap[0][0] if self._heap else _INFINITY

    def __len__(self) -> int:
        return len(self._heap)


class CalendarQueue:
    """Calendar/ladder event scheduler: sorted window + unsorted future.

    The structure keeps two tiers:

    * ``_cur`` — every pending item with ``time < _horizon``, held as one
      ascending-sorted list consumed through an index pointer (``_idx``)
      instead of repeated ``list.pop(0)`` shifts;
    * ``_fut`` — every item at or beyond the horizon, completely
      unsorted, so the common push (a timer strictly in the future) is a
      plain C-speed ``list.append``.

    When the window drains, :meth:`_advance` jumps the horizon to
    ``min(_fut).time + _width``, partitions ``_fut``, and sorts the new
    window once (Timsort, C).  Pops therefore cost an index bump; pushes
    cost an append, or a ``bisect.insort`` bounded to the unconsumed
    suffix when a new item lands inside the open window.

    **Ordering contract**: pops follow the exact ``(time, priority,
    seq)`` tuple order — the invariant that every ``_fut`` item's time
    is ``>= _horizon`` while every pending ``_cur`` item's is below it
    means the global minimum always lives in the window, and the sorted
    window plus suffix-bounded insorts keep ties (same time, same
    priority) resolved by the unique ``seq`` exactly as the heap
    reference resolves them.  The property tests in
    ``tests/test_calendar_queue.py`` pin this equivalence across seeds.

    **Resize policy**: the window width adapts multiplicatively to the
    observed event density — a window that arrives with fewer than
    ``widen_below`` items doubles the width (amortizing the per-window
    partition/sort overhead over more events) and one with more than
    ``halve_above`` items halves it (bounding the insort suffix and the
    batch sort).  Width never drops below ``1e-12`` seconds so repeated
    halving cannot collapse it to zero.
    """

    __slots__ = ("_cur", "_idx", "_fut", "_horizon", "_width", "_len",
                 "_widen_below", "_halve_above")

    name = "calendar"

    #: Window occupancy targets for the multiplicative resize policy.
    WIDEN_BELOW = 16
    HALVE_ABOVE = 8192
    MIN_WIDTH = 1e-12

    def __init__(
        self,
        initial_width: float = 1.0,
        widen_below: int = WIDEN_BELOW,
        halve_above: int = HALVE_ABOVE,
    ) -> None:
        if initial_width <= 0.0:
            raise ValueError(f"window width must be positive: {initial_width!r}")
        if widen_below >= halve_above:
            raise ValueError("widen_below must be smaller than halve_above")
        self._cur: List[_ScheduledItem] = []
        self._idx = 0
        self._fut: List[_ScheduledItem] = []
        self._horizon = -_INFINITY
        self._width = initial_width
        self._len = 0
        self._widen_below = widen_below
        self._halve_above = halve_above

    def push(self, item: _ScheduledItem) -> None:
        self._len += 1
        if item[0] >= self._horizon:
            self._fut.append(item)
            return
        cur = self._cur
        # In-window pushes are usually later than everything pending
        # (self-rescheduling timers), so try the append fast path before
        # falling back to a suffix-bounded insort.
        if not cur or item >= cur[-1]:
            cur.append(item)
        else:
            insort(cur, item, lo=self._idx)

    def pop(self) -> _ScheduledItem:
        """Smallest item by ``(time, priority, seq)``.

        Raises :class:`IndexError` when the queue is empty, like the
        heap reference.
        """
        idx = self._idx
        cur = self._cur
        if idx >= len(cur):
            self._advance()
            idx = self._idx
            cur = self._cur
        item = cur[idx]
        self._idx = idx + 1
        self._len -= 1
        return item

    def _advance(self) -> None:
        """Open the next window: jump the horizon past ``min(_fut)``."""
        fut = self._fut
        if not fut:
            self._cur = []
            self._idx = 0
            raise IndexError("pop from an empty calendar queue")
        width = self._width
        horizon = min(fut)[0] + width
        cur = [it for it in fut if it[0] < horizon]
        if len(cur) < len(fut):
            fut[:] = [it for it in fut if it[0] >= horizon]
        else:
            fut.clear()
        cur.sort()
        occupancy = len(cur)
        if occupancy > self._halve_above and width > self.MIN_WIDTH:
            self._width = width * 0.5
        elif occupancy < self._widen_below:
            self._width = width * 2.0
        self._cur = cur
        self._idx = 0
        self._horizon = horizon

    def peek_time(self) -> float:
        """Time of the next item (``inf`` when empty).

        May advance the window (an internal reorganization; the pop
        order is unaffected).
        """
        if self._idx >= len(self._cur):
            try:
                self._advance()
            except IndexError:
                return _INFINITY
        return self._cur[self._idx][0]

    def __len__(self) -> int:
        return self._len


_Scheduler = Union[HeapScheduler, CalendarQueue]

#: Scheduler name -> factory, for ``Simulator(scheduler=...)``.
SCHEDULERS: Dict[str, Callable[[], _Scheduler]] = {
    "heap": HeapScheduler,
    "calendar": CalendarQueue,
}

_default_scheduler_name = "calendar"


def default_scheduler() -> str:
    """Name of the scheduler new simulators use when none is passed."""
    return _default_scheduler_name


def set_default_scheduler(name: str) -> str:
    """Set the process-wide default scheduler; returns the previous one.

    Lets callers that never construct simulators directly (experiment
    builders, ``repro check-determinism``) pick the kernel's scheduler
    without threading a parameter through every layer.
    """
    global _default_scheduler_name
    if name not in SCHEDULERS:
        raise SimulationError(
            f"unknown scheduler {name!r}; available: {', '.join(sorted(SCHEDULERS))}"
        )
    previous = _default_scheduler_name
    _default_scheduler_name = name
    return previous


@contextmanager
def use_scheduler(name: str) -> Iterator[None]:
    """Context manager form of :func:`set_default_scheduler`."""
    previous = set_default_scheduler(name)
    try:
        yield
    finally:
        set_default_scheduler(previous)


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, becomes *triggered* when it is scheduled
    to fire, and *processed* once its callbacks have run.  Processes wait
    on events by yielding them; arbitrary callbacks can also subscribe.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_processed", "_defused")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        self._defused = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        return self._ok

    @property
    def value(self) -> Any:
        if not self._processed and not self._triggered:
            raise SimulationError("event value is not yet available")
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0, priority: int = NORMAL) -> "Event":
        """Schedule this event to fire successfully with ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self._ok = True
        self.sim._push(self, delay, priority)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0, priority: int = NORMAL) -> "Event":
        """Schedule this event to fire with an exception.

        A failed event raises ``exception`` inside every process waiting
        on it.  If nothing waits, the simulator surfaces the exception at
        processing time unless :meth:`defuse` was called.
        """
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._triggered = True
        self._value = exception
        self._ok = False
        self.sim._push(self, delay, priority)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled even if nobody waits on it."""
        self._defused = True

    def _process(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        for callback in callbacks or ():
            callback(self)
        if not self._ok and not self._defused:
            raise self._value


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._triggered = True
        self._value = value
        sim._push(self, delay, NORMAL)


def _describe_event(target: Callable[[], None]) -> str:
    """Qualified name of the code a scheduled item will run, for race reports.

    Called only on the instrumented slow path while a race detector is
    armed, so the ``Race``/``render()`` output can point at source
    (``process:Writer.run``) instead of bare sequence numbers.  Uses
    duck typing on ``generator`` because :class:`repro.sim.process.Process`
    lives downstream of this module.  ``target`` is the scheduled
    callable — an ``Event._process`` bound method, or a raw callback
    from :meth:`Simulator.defer`.
    """
    event = getattr(target, "__self__", None)
    if not isinstance(event, Event):
        return f"deferred:{getattr(target, '__qualname__', type(target).__name__)}"
    generator = getattr(event, "generator", None)
    if generator is not None:
        return f"process:{getattr(generator, '__qualname__', getattr(event, 'name', '?'))}"
    for callback in event.callbacks or ():
        owner = getattr(callback, "__self__", None)
        owner_gen = getattr(owner, "generator", None)
        if owner_gen is not None:
            # Bound Process._resume: the event resumes that process.
            return f"resume:{getattr(owner_gen, '__qualname__', getattr(owner, 'name', '?'))}"
        return f"callback:{getattr(callback, '__qualname__', type(callback).__name__)}"
    return type(event).__name__.lower()


class Simulator:
    """Deterministic discrete-event simulator.

    Typical usage::

        sim = Simulator()
        sim.process(my_generator_function(sim))
        sim.run(until=100.0)

    With ``detect_races=True`` the simulator records, for every
    ``(time, priority)`` bucket holding more than one event, which
    shared resources the callbacks touched (via
    :meth:`touch_resource`), and :attr:`races` reports buckets whose
    ordering was decided only by insertion order while conflicting on a
    resource — see :mod:`repro.analysis.races`.
    """

    def __init__(
        self,
        start_time: float = 0.0,
        detect_races: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[RequestTracer] = None,
        scheduler: Optional[str] = None,
    ) -> None:
        self._now = float(start_time)
        name = scheduler if scheduler is not None else _default_scheduler_name
        try:
            factory = SCHEDULERS[name]
        except KeyError:
            raise SimulationError(
                f"unknown scheduler {name!r}; available: "
                f"{', '.join(sorted(SCHEDULERS))}"
            ) from None
        self.scheduler_name = name
        self._sched: _Scheduler = factory()
        self._seq = itertools.count()
        self._active = True
        self._step_hooks: List[Callable[[float, int, int], None]] = []
        self._race_detector: Optional["RaceDetector"] = None
        if detect_races:
            from repro.analysis.races import RaceDetector

            self._race_detector = RaceDetector()
        # Metrics are read on the hot path, so the disabled case is the
        # shared null registry whose counter increments are no-ops.
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.metrics.bind_clock(lambda: self._now)
        self._events_counter = self.metrics.counter("sim.events")
        # The request tracer rides alongside the registry: components
        # read ``sim.tracer`` once at construction and per-request
        # contexts are carried explicitly on requests, so the disabled
        # case (the shared null tracer) costs nothing on the hot loop.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.tracer.bind_clock(lambda: self._now)
        # With metrics, race detection and step hooks all off, step()
        # takes a fast branch that just pops and processes.
        self._instrumented = self.metrics.enabled or self._race_detector is not None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- observability ---------------------------------------------------

    def add_step_hook(self, hook: Callable[[float, int, int], None]) -> None:
        """Call ``hook(time, priority, seq)`` before each event runs.

        Used by :class:`repro.sim.trace.EventDigest` to fingerprint the
        execution order for replay-determinism checks.
        """
        self._step_hooks.append(hook)
        self._instrumented = True

    def touch_resource(self, resource: str, write: bool = True) -> None:
        """Record a shared-resource touch for race detection.

        No-op unless the simulator was built with ``detect_races=True``,
        so instrumented resources can call this unconditionally.
        """
        if self._race_detector is not None:
            self._race_detector.touch(resource, write)

    @property
    def races(self) -> "List[Race]":
        """Same-timestamp conflicts observed so far (empty when
        race detection is off)."""
        if self._race_detector is None:
            return []
        return self._race_detector.report()

    # -- event creation ------------------------------------------------

    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def call_at(self, time: float, fn: Callable[[], None], priority: int = NORMAL) -> Event:
        """Run ``fn()`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(f"cannot schedule in the past: {time} < {self._now}")
        return self.call_in(time - self._now, fn, priority)

    def call_in(self, delay: float, fn: Callable[[], None], priority: int = NORMAL) -> Event:
        """Run ``fn()`` after ``delay`` seconds of simulated time."""
        event = self.timeout(delay)
        event.callbacks.append(lambda _ev: fn())
        return event

    def process(self, generator: Iterator[Event]) -> "Process":
        """Start a generator-based process (see :mod:`repro.sim.process`)."""
        from repro.sim.process import Process

        return Process(self, generator)

    def all_of(self, events: list[Event]) -> Event:
        """Event that fires once every event in ``events`` has fired."""
        gate = self.event()
        remaining = len(events)
        if remaining == 0:
            gate.succeed([])
            return gate
        results: list[Any] = [None] * remaining
        state = {"left": remaining, "failed": False}

        def make_callback(index: int) -> Callable[[Event], None]:
            def on_fire(ev: Event) -> None:
                if state["failed"]:
                    return
                if not ev.ok:
                    state["failed"] = True
                    ev.defuse()
                    if not gate.triggered:
                        gate.fail(ev.value)
                    return
                results[index] = ev.value
                state["left"] -= 1
                if state["left"] == 0 and not gate.triggered:
                    gate.succeed(list(results))

            return on_fire

        for i, ev in enumerate(events):
            if ev.processed:
                make_callback(i)(ev)
            else:
                ev.callbacks.append(make_callback(i))
        return gate

    def any_of(self, events: list[Event]) -> Event:
        """Event that fires as soon as any event in ``events`` fires."""
        gate = self.event()
        if not events:
            gate.succeed(None)
            return gate

        def on_fire(ev: Event) -> None:
            if gate.triggered:
                if not ev.ok:
                    ev.defuse()
                return
            if ev.ok:
                gate.succeed(ev.value)
            else:
                ev.defuse()
                gate.fail(ev.value)

        for ev in events:
            if ev.processed:
                on_fire(ev)
            else:
                ev.callbacks.append(on_fire)
        return gate

    # -- scheduling internals -------------------------------------------

    def _push(self, event: Event, delay: float, priority: int) -> None:
        self._sched.push(
            (self._now + delay, priority, next(self._seq), event._process)
        )

    def defer(
        self, delay: float, fn: Callable[[], None], priority: int = NORMAL
    ) -> None:
        """Run ``fn()`` after ``delay`` seconds — the allocation-free hot path.

        Unlike :meth:`call_in` this creates no :class:`Event` (and hence
        nothing to wait on or cancel): the callable itself is the
        scheduled item.  It shares the same sequence counter, so a
        deferred callback and an event scheduled in the same order pop
        in the same order under either scheduler.
        """
        if delay < 0:
            raise SimulationError(f"negative defer delay: {delay!r}")
        self._sched.push((self._now + delay, priority, next(self._seq), fn))

    # -- running ---------------------------------------------------------

    def step(self) -> None:
        """Process the single next scheduled event."""
        try:
            item = self._sched.pop()
        except IndexError:
            raise SimulationError("no scheduled events") from None
        self._now = item[0]
        if not self._instrumented:
            item[3]()
            return
        self._events_counter.inc()
        for hook in self._step_hooks:
            hook(item[0], item[1], item[2])
        detector = self._race_detector
        if detector is None:
            item[3]()
            return
        detector.begin_event(item[0], item[1], item[2], _describe_event(item[3]))
        try:
            item[3]()
        finally:
            detector.end_event()

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._sched.peek_time()

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Run until the queue drains, or until simulated time ``until``.

        Returns the simulated time at which the run stopped.  The
        ``max_events`` guard turns accidental infinite event loops into a
        loud error instead of a hang.
        """
        sched = self._sched
        processed = 0
        if until is not None:
            peek = sched.peek_time
            pop = sched.pop
            while sched:
                if peek() > until:
                    self._now = until
                    return self._now
                if self._instrumented:
                    self.step()
                else:
                    item = pop()
                    self._now = item[0]
                    item[3]()
                processed += 1
                if processed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; "
                        "possible runaway event loop"
                    )
            self._now = max(self._now, until)
            return self._now
        pop = sched.pop
        while True:
            # Inlined fast path; _instrumented is re-read every iteration
            # because a callback may attach a step hook mid-run.  The
            # try/except around the bare pop is free until the queue
            # drains (zero-cost exceptions), replacing a per-event
            # emptiness check.
            if self._instrumented:
                if not sched:
                    break
                self.step()
            else:
                try:
                    item = pop()
                except IndexError:
                    break
                self._now = item[0]
                item[3]()
            processed += 1
            if processed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; possible runaway event loop"
                )
        return self._now

    def run_until_event(self, event: Event, limit: float = float("inf")) -> Any:
        """Run until ``event`` is processed; return its value.

        Raises :class:`SimulationError` if the queue drains or ``limit``
        is reached before the event fires.
        """
        while not event.processed:
            if not self._sched:
                raise SimulationError("event queue drained before target event fired")
            if self._sched.peek_time() > limit:
                raise SimulationError(f"time limit {limit} reached before target event fired")
            self.step()
        if not event.ok:
            raise event.value
        return event.value
