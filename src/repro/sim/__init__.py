"""Deterministic discrete-event simulation kernel for the UStore repro."""

from repro.sim.kernel import (
    SCHEDULERS,
    CalendarQueue,
    Event,
    HeapScheduler,
    Interrupt,
    SimulationError,
    Simulator,
    Timeout,
    default_scheduler,
    set_default_scheduler,
    use_scheduler,
)
from repro.sim.process import Process
from repro.sim.resources import Container, Resource, Store
from repro.sim.rng import RngRegistry
from repro.sim.trace import (
    Counter,
    EventDigest,
    TimeSeries,
    TraceRecord,
    Tracer,
    records_digest,
)

__all__ = [
    "CalendarQueue",
    "Container",
    "Counter",
    "Event",
    "EventDigest",
    "HeapScheduler",
    "Interrupt",
    "Process",
    "Resource",
    "RngRegistry",
    "SCHEDULERS",
    "SimulationError",
    "Simulator",
    "Store",
    "TimeSeries",
    "TraceRecord",
    "Tracer",
    "Timeout",
    "default_scheduler",
    "records_digest",
    "set_default_scheduler",
    "use_scheduler",
]
