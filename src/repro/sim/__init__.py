"""Deterministic discrete-event simulation kernel for the UStore repro."""

from repro.sim.kernel import Event, Interrupt, SimulationError, Simulator, Timeout
from repro.sim.process import Process
from repro.sim.resources import Container, Resource, Store
from repro.sim.rng import RngRegistry
from repro.sim.trace import (
    Counter,
    EventDigest,
    TimeSeries,
    TraceRecord,
    Tracer,
    records_digest,
)

__all__ = [
    "Container",
    "Counter",
    "Event",
    "EventDigest",
    "Interrupt",
    "Process",
    "Resource",
    "RngRegistry",
    "SimulationError",
    "Simulator",
    "Store",
    "TimeSeries",
    "TraceRecord",
    "Tracer",
    "Timeout",
    "records_digest",
]
