"""Generator-based simulation processes.

A process is a Python generator that yields :class:`~repro.sim.kernel.Event`
objects.  Yielding an event suspends the process until the event fires;
the event's value becomes the result of the ``yield`` expression.  A
failed event re-raises its exception inside the generator, so processes
handle simulated failures with ordinary ``try``/``except``.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.sim.kernel import Event, Interrupt, SimulationError, Simulator, URGENT

__all__ = ["Process"]


class Process(Event):
    """A running process; also an event that fires when the process ends.

    The event value is the generator's return value, so one process can
    wait for another simply by yielding it::

        result = yield sim.process(child(sim))
    """

    __slots__ = ("generator", "_waiting_on", "name")

    def __init__(self, sim: Simulator, generator: Iterator[Event], name: str = "") -> None:
        super().__init__(sim)
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"process requires a generator, got {type(generator)!r}")
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Bootstrap: resume the generator at the current time.
        bootstrap = Event(sim)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed(priority=URGENT)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at the current time.

        Interrupting a finished process is an error; interrupting a
        process twice before it resumes queues both interrupts.
        """
        if self._triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        if self._waiting_on is not None:
            waited, self._waiting_on = self._waiting_on, None
            if not waited.processed and waited.callbacks is not None:
                try:
                    waited.callbacks.remove(self._resume)
                except ValueError:
                    pass
        poke = Event(self.sim)
        poke.callbacks.append(self._resume)
        poke.fail(Interrupt(cause), priority=URGENT)
        poke.defuse()

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        try:
            if event.ok:
                target = self.generator.send(event.value)
            else:
                target = self.generator.throw(event.value)
        except StopIteration as stop:
            if not self._triggered:
                self.succeed(stop.value)
            return
        except BaseException as exc:
            if not self._triggered:
                self.fail(exc)
            return

        if not isinstance(target, Event):
            # Tear down the generator so the error points at the culprit.
            self.generator.close()
            bad = SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield events"
            )
            if not self._triggered:
                self.fail(bad)
            return
        if target.processed:
            # Already fired: resume immediately (still via the queue for
            # deterministic ordering at this timestamp).
            relay = Event(self.sim)
            relay.callbacks.append(self._resume)
            if target.ok:
                relay.succeed(target.value, priority=URGENT)
            else:
                relay.fail(target.value, priority=URGENT)
                relay.defuse()
        else:
            self._waiting_on = target
            target.callbacks.append(self._resume)
            # A waiting process handles the failure, so the kernel must
            # not also surface it at processing time.
            target.defuse()
