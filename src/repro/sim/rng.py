"""Named deterministic random streams.

Every stochastic component draws from its own named stream derived from a
single master seed, so adding a new random consumer never perturbs the
draws seen by existing ones — a prerequisite for reproducible
experiments and for paired comparisons between ablation variants.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngRegistry"]


class RngRegistry:
    """Factory for per-component :class:`random.Random` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.master_seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def fork(self, suffix: str) -> "RngRegistry":
        """A registry whose streams are independent of this one's."""
        digest = hashlib.sha256(f"{self.master_seed}/fork:{suffix}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))
