"""Dimension vocabulary for cross-layer quantitative bookkeeping.

UStore's economics hinge on numbers that cross subsystem boundaries:
the power accountant budgets **watts**, the meter integrates **joules**,
the fabric allocator shares **bytes/second**, the paper's tables quote
**MB/s**, and the kernel advances **simulated seconds**.  A silent unit
mix-up (watts added to joules, an MB/s handed to a bytes/s parameter)
corrupts every downstream experiment without failing a single test.

This module is the single vocabulary both layers share:

* ``NewType`` dimensions — :data:`Watts`, :data:`Joules`,
  :data:`Bytes`, :data:`BytesPerSec`, :data:`MBps`,
  :data:`SimSeconds` — used to annotate real signatures.  They are
  identity functions at runtime (zero cost) and nominal types under
  mypy, and the static checker in :mod:`repro.analysis.units` reads
  them off annotations to run an AST dataflow over dimensioned
  arithmetic (rules UNIT001–UNIT006, see DESIGN.md §11);
* declared scale constants — :data:`KB`/:data:`MB`/:data:`GB`
  (decimal, the paper's MB/s convention) and
  :data:`KiB`/:data:`MiB`/:data:`GiB` (binary, transfer and chunk
  sizes) — so byte-scale magic literals (``1e6``, ``1 << 20``) never
  appear inline in dimensioned arithmetic;
* conversion helpers that perform the *only* sanctioned unit-crossing
  arithmetic: the checker knows their signatures and treats their
  results as correctly dimensioned.
"""

from __future__ import annotations

from typing import NewType

__all__ = [
    "Bytes",
    "BytesPerSec",
    "GB",
    "GiB",
    "Joules",
    "KB",
    "KiB",
    "MB",
    "MBps",
    "MiB",
    "SimSeconds",
    "TB",
    "TiB",
    "Watts",
    "bytes_per_sec_to_mbps",
    "bytes_to_mb",
    "joules_to_watts",
    "mb_to_bytes",
    "mbps_to_bytes_per_sec",
    "watt_seconds",
]

# -- dimensions ------------------------------------------------------------

#: Instantaneous electrical power.
Watts = NewType("Watts", float)
#: Integrated energy (watts x seconds).
Joules = NewType("Joules", float)
#: A byte count (capacities, offsets, transfer sizes).
Bytes = NewType("Bytes", int)
#: A data rate in bytes per second (fabric/disk native unit).
BytesPerSec = NewType("BytesPerSec", float)
#: A data rate in decimal megabytes per second (the paper's tables).
MBps = NewType("MBps", float)
#: Simulated time in seconds (``Simulator.now`` deltas — never wall time).
SimSeconds = NewType("SimSeconds", float)

# -- declared byte scales --------------------------------------------------

#: Decimal scales: rates and capacities quoted the way the paper does.
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000

#: Binary scales: transfer sizes, chunk sizes, track geometry.
KiB = 1 << 10
MiB = 1 << 20
GiB = 1 << 30
TiB = 1 << 40

# -- sanctioned conversions ------------------------------------------------


def watt_seconds(power: Watts, seconds: SimSeconds) -> Joules:
    """Integrate constant ``power`` over ``seconds`` into energy."""
    return Joules(power * seconds)


def joules_to_watts(energy: Joules, seconds: SimSeconds) -> Watts:
    """Average power of ``energy`` spread over ``seconds``."""
    if seconds <= 0.0:
        raise ValueError(f"non-positive interval {seconds!r}")
    return Watts(energy / seconds)


def bytes_per_sec_to_mbps(rate: BytesPerSec) -> MBps:
    """Convert a native bytes/s rate to the paper's decimal MB/s."""
    return MBps(rate / MB)


def mbps_to_bytes_per_sec(rate: MBps) -> BytesPerSec:
    """Convert a decimal MB/s figure to the native bytes/s unit."""
    return BytesPerSec(rate * MB)


def bytes_to_mb(count: Bytes) -> float:
    """Size in decimal megabytes (dimensionless scale for reporting)."""
    return count / MB


def mb_to_bytes(megabytes: float) -> Bytes:
    """Decimal megabytes back to a whole byte count."""
    return Bytes(int(megabytes * MB))
