"""Fault injection against a running deployment (§IV-E failure domains).

The paper identifies three failure domains — hosts, the interconnect
fabric, and disks — with very different failure rates (hosts: MTTF
~3.4 months; disks: 10-50 years; interconnect components comparable to
disks).  The :class:`FaultInjector` can trigger any of them on demand,
and :class:`MttfSchedule` can generate exponential arrival times for
long-horizon availability studies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Generator, List, Optional

from repro.cluster.deployment import Deployment
from repro.sim import Event
from repro.sim.rng import RngRegistry

__all__ = ["FaultInjector", "FaultRecord", "MttfSchedule", "MONTH", "YEAR"]

MONTH = 30 * 24 * 3600.0
YEAR = 365 * 24 * 3600.0

#: §IV-E, citing [18]/[19]: host MTTF 3.4 months, disks 10-50 years,
#: physical interconnect comparable to disks.
HOST_MTTF = 3.4 * MONTH
DISK_MTTF = 20 * YEAR
FABRIC_COMPONENT_MTTF = 20 * YEAR


@dataclass(frozen=True)
class FaultRecord:
    time: float
    kind: str
    target: str


class FaultInjector:
    """Imperative fault triggers with an audit trail."""

    def __init__(self, deployment: Deployment):
        self.deployment = deployment
        self.history: List[FaultRecord] = []

    def _log(self, kind: str, target: str) -> None:
        sim = self.deployment.sim
        self.history.append(FaultRecord(sim.now, kind, target))
        if sim.tracer.enabled:
            # "fault.*" instants are FlightRecorder dump triggers.
            sim.tracer.instant(f"fault.{kind}", target=target)

    # -- hosts -----------------------------------------------------------

    def crash_host(self, host_id: str) -> None:
        self.deployment.crash_host(host_id)
        self._log("host_crash", host_id)

    def recover_host(self, host_id: str) -> None:
        self.deployment.recover_host(host_id)
        self._log("host_recover", host_id)

    # -- disks ------------------------------------------------------------

    def fail_disk(self, disk_id: str) -> None:
        self.deployment.disks[disk_id].fail()
        self.deployment.fabric.node(disk_id).fail()
        self.deployment.bus.sync()
        self._log("disk_fail", disk_id)

    def repair_disk(self, disk_id: str) -> None:
        self.deployment.disks[disk_id].repair()
        self.deployment.fabric.node(disk_id).repair()
        self.deployment.bus.sync()
        self._log("disk_repair", disk_id)

    # -- fabric components ---------------------------------------------------

    def fail_component(self, node_id: str) -> None:
        """Fail a hub/switch/bridge; downstream disks vanish from hosts."""
        self.deployment.fabric.node(node_id).fail()
        self.deployment.bus.sync()
        self._log("fabric_fail", node_id)

    def repair_component(self, node_id: str) -> None:
        self.deployment.fabric.node(node_id).repair()
        self.deployment.bus.sync()
        self._log("fabric_repair", node_id)

    # -- control plane ----------------------------------------------------------

    def fail_primary_controller(self) -> None:
        """Kill the primary Controller host and hand over the signals."""
        primary = self.deployment.controllers[0]
        backup = self.deployment.controllers[1]
        primary.crash()
        backup.take_over_control_plane()
        self._log("controller_fail", primary.address)


class MttfSchedule:
    """Exponential failure arrivals for long-horizon studies."""

    def __init__(
        self,
        rng: RngRegistry,
        host_mttf: float = HOST_MTTF,
        disk_mttf: float = DISK_MTTF,
        fabric_mttf: float = FABRIC_COMPONENT_MTTF,
    ):
        self._rng = rng.stream("mttf")
        self.host_mttf = host_mttf
        self.disk_mttf = disk_mttf
        self.fabric_mttf = fabric_mttf

    def _exponential(self, mean: float) -> float:
        u = self._rng.random()
        return -mean * math.log(1.0 - u)

    def next_host_failure(self) -> float:
        return self._exponential(self.host_mttf)

    def next_disk_failure(self) -> float:
        return self._exponential(self.disk_mttf)

    def next_fabric_failure(self) -> float:
        return self._exponential(self.fabric_mttf)

    def failures_within(self, horizon: float, mean: float) -> List[float]:
        """Arrival times of a Poisson process within ``horizon``."""
        times: List[float] = []
        t = self._exponential(mean)
        while t < horizon:
            times.append(t)
            t += self._exponential(mean)
        return times
