"""Fault injection: hosts, disks, fabric components, control plane."""

from repro.faults.injector import (
    DISK_MTTF,
    FABRIC_COMPONENT_MTTF,
    HOST_MTTF,
    MONTH,
    YEAR,
    FaultInjector,
    FaultRecord,
    MttfSchedule,
)

__all__ = [
    "DISK_MTTF",
    "FABRIC_COMPONENT_MTTF",
    "FaultInjector",
    "FaultRecord",
    "HOST_MTTF",
    "MONTH",
    "MttfSchedule",
    "YEAR",
]
