"""repro.shardstore — small-object shard packing over the block layer.

UStore's economics assume large archival blobs, but real archival
traffic is dominated by billions of small objects.  This package adds
the tier that makes the object-count workload viable on the same
hardware: a metadata-database-free packer/retriever where

* routing is a pure function — ``shard_id = route(uid, date)`` — so
  no lookup table exists anywhere (:mod:`repro.shardstore.routing`);
* packers coalesce thousands of small objects into large sequential
  shard writes, amortizing one spin-up over the run
  (:mod:`repro.shardstore.packer`);
* retrieval maps an object to a ``(shard, offset, size)`` triple and
  reads it back as a gateway sub-block :class:`~repro.gateway
  .ReadRange`, which the scheduler coalesces with other same-shard
  reads into one disk pass (:mod:`repro.shardstore.store`).

See DESIGN.md §12 and the ``shardstore_small_objects`` experiment.
"""

from repro.shardstore.packer import (  # noqa: F401
    ObjectState,
    PackedObject,
    RECORD_HEADER_BYTES,
    ShardBuffer,
    ShardCapacityError,
)
from repro.shardstore.routing import (  # noqa: F401
    ShardId,
    ShardLayout,
    ShardPlacement,
    day_number,
    place,
    route,
    stable_hash,
)
from repro.shardstore.store import (  # noqa: F401
    ObjectNotFoundError,
    ShardStore,
    ShardStoreConfig,
    ShardStoreError,
    ShardStoreStats,
)

__all__ = [
    "ObjectNotFoundError",
    "ObjectState",
    "PackedObject",
    "RECORD_HEADER_BYTES",
    "ShardBuffer",
    "ShardCapacityError",
    "ShardId",
    "ShardLayout",
    "ShardPlacement",
    "ShardStore",
    "ShardStoreConfig",
    "ShardStoreError",
    "ShardStoreStats",
    "day_number",
    "place",
    "route",
    "stable_hash",
]
