"""Deterministic shard routing and placement — pure functions, no DB.

The shardstore's core invariant is that *no metadata database exists*:
given an object's ``(uid, date)`` and the store's static layout, any
node can recompute which shard holds the object and where that shard
lives on disk.  Routing is a stable hash (BLAKE2b — never Python's
per-process-salted ``hash()``), placement is modular arithmetic over
the day number, and both are total functions of their arguments, so
the answers agree across processes, restarts and seeds.

``place`` maps the global shard sequence number ``day *
shards_per_day + index`` onto the layout's slot grid.  Within any
window of ``total_slots / shards_per_day`` consecutive days the
mapping is collision-free (each day claims a fresh run of slots);
beyond that the grid wraps — the retention horizon after which old
shards' slots are reclaimed, mirroring the paper's reclaiming story.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from datetime import date as _date

__all__ = [
    "ShardId",
    "ShardLayout",
    "ShardPlacement",
    "day_number",
    "place",
    "route",
    "stable_hash",
]


def stable_hash(text: str) -> int:
    """A 64-bit hash stable across processes and interpreter seeds."""
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class ShardId:
    """One day-partitioned shard: ``(date, index)`` within the day."""

    date: str
    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"shard index must be >= 0, got {self.index}")

    @property
    def name(self) -> str:
        return f"{self.date}/s{self.index:04d}"


def day_number(date: str) -> int:
    """Proleptic-Gregorian ordinal of an ISO ``YYYY-MM-DD`` date."""
    year, month, day = (int(part) for part in date.split("-"))
    return _date(year, month, day).toordinal()


def route(uid: str, date: str, shards_per_day: int) -> ShardId:
    """``shard_id = route(uid, date)`` — the no-lookup-table router.

    Deterministic in its arguments alone: the same ``(uid, date)``
    routes to the same shard on every node, every run, every seed.
    """
    if not uid:
        raise ValueError("route() needs a uid")
    if shards_per_day < 1:
        raise ValueError(f"shards_per_day must be >= 1, got {shards_per_day}")
    return ShardId(date=date, index=stable_hash(f"{date}/{uid}") % shards_per_day)


@dataclass(frozen=True)
class ShardLayout:
    """The static geometry a store's placement arithmetic runs over."""

    shards_per_day: int
    shard_capacity_bytes: int
    num_spaces: int
    slots_per_space: int

    def __post_init__(self) -> None:
        if self.shards_per_day < 1:
            raise ValueError("shards_per_day must be >= 1")
        if self.shard_capacity_bytes < 1:
            raise ValueError("shard_capacity_bytes must be >= 1")
        if self.num_spaces < 1:
            raise ValueError("num_spaces must be >= 1")
        if self.slots_per_space < 1:
            raise ValueError("slots_per_space must be >= 1")
        if self.total_slots < self.shards_per_day:
            raise ValueError(
                f"layout has {self.total_slots} slots but needs at least "
                f"{self.shards_per_day} (one day's worth of shards)"
            )

    @property
    def total_slots(self) -> int:
        return self.num_spaces * self.slots_per_space

    @property
    def retention_days(self) -> int:
        """Days before the slot grid wraps onto itself."""
        return self.total_slots // self.shards_per_day


@dataclass(frozen=True)
class ShardPlacement:
    """Where a shard lives: which space, which slot, at what offset."""

    space_index: int
    slot_index: int
    byte_offset: int


def place(shard: ShardId, layout: ShardLayout) -> ShardPlacement:
    """Pure-function placement of a shard onto the layout's slot grid."""
    sequence = day_number(shard.date) * layout.shards_per_day + shard.index
    slot = sequence % layout.total_slots
    space_index, slot_index = divmod(slot, layout.slots_per_space)
    return ShardPlacement(
        space_index=space_index,
        slot_index=slot_index,
        byte_offset=slot_index * layout.shard_capacity_bytes,
    )
