"""Shard buffers: pack small objects into large sequential extents.

A :class:`ShardBuffer` is the in-memory packing state of one open
shard: objects append at the running tail (each prefixed by a
fixed-size self-describing record header), and a flush takes the
buffered run as one contiguous extent for a single large gateway
write.  The buffer never reorders — offsets are assigned at ``put``
time and never move, so the ``(shard, offset, size)`` triple handed to
retrieval is stable from the moment the object is accepted.

State machine per object: ``BUFFERED`` (in memory, not yet on media)
→ ``FLUSHING`` (its flush write is in flight) → ``ACKED`` (the write
completed; the record is durable and retrievable) or ``FAILED`` (the
flush exhausted the ClientLib's remount budget).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.obs.trace import NULL_TRACE, TraceContext

from repro.shardstore.routing import ShardId, ShardPlacement

__all__ = [
    "ObjectState",
    "PackedObject",
    "RECORD_HEADER_BYTES",
    "ShardBuffer",
    "ShardCapacityError",
]

#: Per-record on-media header: uid, date, length, checksum.  Fixed
#: size so a recovery scan can walk a shard without any external
#: index — the records are the metadata.
RECORD_HEADER_BYTES = 64


class ShardCapacityError(Exception):
    """An object does not fit in its routed shard's remaining space."""


class ObjectState(enum.Enum):
    BUFFERED = "buffered"
    FLUSHING = "flushing"
    ACKED = "acked"
    FAILED = "failed"


@dataclass
class PackedObject:
    """One small object and its place inside its shard."""

    uid: str
    date: str
    size: int
    shard: ShardId
    #: Byte offset of the record header within the shard.
    offset_in_shard: int
    state: ObjectState = ObjectState.BUFFERED
    acked_at: Optional[float] = None
    failure: Optional[str] = None
    trace: TraceContext = field(default=NULL_TRACE, repr=False)

    @property
    def record_bytes(self) -> int:
        """Header + payload: the bytes the record occupies on media."""
        return RECORD_HEADER_BYTES + self.size

    @property
    def payload_offset(self) -> int:
        """Offset of the payload (after the header) within the shard."""
        return self.offset_in_shard + RECORD_HEADER_BYTES


@dataclass
class ShardBuffer:
    """Packing state of one open shard."""

    shard: ShardId
    placement: ShardPlacement
    space_id: str
    capacity_bytes: int
    #: Bytes acknowledged durable (flush writes that completed).
    durable_bytes: int = 0
    #: Tail past which the next object's record is placed; covers
    #: durable, in-flight and buffered records.
    tail: int = 0
    buffered: List[PackedObject] = field(default_factory=list)
    inflight_flushes: int = 0

    def append(self, uid: str, date: str, size: int) -> PackedObject:
        """Accept one object at the running tail (or refuse: full)."""
        if size < 1:
            raise ValueError(f"object size must be >= 1, got {size}")
        record_bytes = RECORD_HEADER_BYTES + size
        if self.tail + record_bytes > self.capacity_bytes:
            raise ShardCapacityError(
                f"shard {self.shard.name}: object {uid!r} needs "
                f"{record_bytes} bytes but only "
                f"{self.capacity_bytes - self.tail} remain"
            )
        record = PackedObject(
            uid=uid,
            date=date,
            size=size,
            shard=self.shard,
            offset_in_shard=self.tail,
        )
        self.tail += record_bytes
        self.buffered.append(record)
        return record

    def take_buffered(self) -> Tuple[int, int, List[PackedObject]]:
        """Claim the buffered run for a flush.

        Returns ``(start_offset_in_shard, extent_bytes, records)`` and
        marks the records FLUSHING.  The run is contiguous by
        construction (offsets were assigned at append time).
        """
        if not self.buffered:
            return (self.tail, 0, [])
        records = self.buffered
        self.buffered = []
        start = records[0].offset_in_shard
        extent = sum(record.record_bytes for record in records)
        for record in records:
            record.state = ObjectState.FLUSHING
        self.inflight_flushes += 1
        return (start, extent, records)

    @property
    def buffered_bytes(self) -> int:
        return sum(record.record_bytes for record in self.buffered)

    @property
    def fill_fraction(self) -> float:
        """Committed + in-flight + buffered bytes over capacity."""
        return self.tail / self.capacity_bytes

    @property
    def occupancy(self) -> float:
        """Durable bytes over capacity (what a remount would find)."""
        return self.durable_bytes / self.capacity_bytes
