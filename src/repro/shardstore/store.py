"""The shardstore: metadata-DB-free object packing over the gateway.

:class:`ShardStore` ties the pure routing/placement arithmetic
(:mod:`repro.shardstore.routing`) and the per-shard packing buffers
(:mod:`repro.shardstore.packer`) to a running
:class:`~repro.gateway.Gateway`:

* ``put(uid, date, size)`` routes the object, packs it into its
  shard's open buffer, and (at the fill threshold) flushes the
  buffered run as **one** large sequential ``WriteObject`` — one
  spin-up amortized over the whole run, scheduled through the same
  power-budgeted batch scheduler as every other request.
* ``get(uid, date)`` recomputes the shard from the key alone, looks
  the record up in the soft-state directory, and issues a
  :class:`~repro.gateway.ReadRange` against the shard's slot — a
  sub-block read the scheduler may coalesce with other same-shard
  retrievals into a single disk pass.
* ``recover()`` rebuilds the directory with nothing but gateway
  reads: it scans each shard's durable extent and re-registers the
  self-describing records found there.  The directory is a cache; the
  media is the metadata.  That is the no-metadata-DB invariant, and
  the crash/remount regression test holds the store to it.

Acknowledgement is completion-driven: an object is ACKED only when
the gateway reports its flush write COMPLETED (via the request's
``on_complete`` hook), so "acked" always means "durable on media".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.gateway.api import ObjectRef, ReadObject, ReadRange, WriteObject
from repro.gateway.request import GatewayRequest
from repro.obs.metrics import Gauge

from repro.shardstore.packer import (
    ObjectState,
    PackedObject,
    RECORD_HEADER_BYTES,
    ShardBuffer,
)
from repro.shardstore.routing import ShardId, ShardLayout, place, route

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.gateway.gateway import Gateway

__all__ = [
    "ObjectNotFoundError",
    "ShardStore",
    "ShardStoreConfig",
    "ShardStoreError",
    "ShardStoreStats",
]


class ShardStoreError(Exception):
    """Base class for shardstore errors."""


class ObjectNotFoundError(ShardStoreError):
    """The directory has no record for the key (never acked, or the
    soft state was lost — run :meth:`ShardStore.recover` first)."""


@dataclass(frozen=True)
class ShardStoreConfig:
    """Store geometry and flush policy."""

    tenant: str
    shards_per_day: int = 8
    shard_capacity_bytes: int = 8 * (1 << 20)
    #: Flush an open shard once its tail passes this fraction of
    #: capacity; ``flush_all`` handles the rest at end of ingest.
    flush_fill_fraction: float = 0.85

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ValueError("shardstore needs a tenant")
        if not 0.0 < self.flush_fill_fraction <= 1.0:
            raise ValueError("flush_fill_fraction must be in (0, 1]")


@dataclass
class ShardStoreStats:
    """Exact object accounting (the exactly-once audit surface)."""

    accepted: int = 0
    acked: int = 0
    flush_failed: int = 0
    flushes: int = 0
    flush_failures: int = 0
    flushed_bytes: int = 0
    retrievals: int = 0
    retrieval_failures: int = 0
    recovery_scans: int = 0
    directory_drops: int = 0


@dataclass
class _Flush:
    """One in-flight flush: the records riding one gateway write."""

    buffer: ShardBuffer
    start: int
    extent: int
    records: List[PackedObject] = field(default_factory=list)


class ShardStore:
    """Small-object packer/retriever over a gateway's mounted spaces."""

    def __init__(self, gateway: "Gateway", config: ShardStoreConfig) -> None:
        objects = gateway.objects()
        if not objects:
            raise ShardStoreError("gateway has no attached objects")
        region = min(obj.region_bytes for obj in objects)
        slots_per_space = region // config.shard_capacity_bytes
        if slots_per_space < 1:
            raise ShardStoreError(
                f"spaces of {region} bytes cannot hold even one "
                f"{config.shard_capacity_bytes}-byte shard slot"
            )
        self.gateway = gateway
        self.config = config
        self.layout = ShardLayout(
            shards_per_day=config.shards_per_day,
            shard_capacity_bytes=config.shard_capacity_bytes,
            num_spaces=len(objects),
            slots_per_space=slots_per_space,
        )
        #: Space for each layout index, in the gateway's sorted order
        #: (stable — placement arithmetic depends on it).
        self._space_ids: List[str] = [obj.space_id for obj in objects]
        self.stats = ShardStoreStats()
        self._buffers: Dict[str, ShardBuffer] = {}
        #: The modelled on-media contents: records whose flush write
        #: completed, keyed by shard name.  Recovery reads these back
        #: (after paying for the physical scan) — they stand in for
        #: the self-describing record headers on the platter.
        self._media: Dict[str, List[PackedObject]] = {}
        #: Soft-state directory: (date, uid) -> acked record.  Purely
        #: a cache of what the media says; rebuildable via recover().
        self._directory: Dict[Tuple[str, str], PackedObject] = {}
        self._tracer = gateway.sim.tracer
        metrics = gateway.sim.metrics
        self._m_accepted = metrics.counter("shardstore.accepted")
        self._m_acked = metrics.counter("shardstore.acked")
        self._m_flushes = metrics.counter("shardstore.flushes")
        self._m_flush_failures = metrics.counter("shardstore.flush_failures")
        self._m_flushed_bytes = metrics.counter("shardstore.flushed_bytes")
        self._m_retrievals = metrics.counter("shardstore.retrievals")
        self._m_scans = metrics.counter("shardstore.recovery_scans")
        self._m_fill = metrics.histogram("shardstore.flush_fill_fraction")
        self._m_open = metrics.gauge("shardstore.open_shards")
        self._m_buffered = metrics.gauge("shardstore.buffered_bytes")
        self._occupancy_gauges: Dict[str, Gauge] = {}

    # -- placement helpers -------------------------------------------------

    def space_of(self, shard: ShardId) -> str:
        return self._space_ids[place(shard, self.layout).space_index]

    def slot_ref(self, shard: ShardId) -> ObjectRef:
        """The shard's whole slot as a gateway extent."""
        placement = place(shard, self.layout)
        return ObjectRef(
            space_id=self._space_ids[placement.space_index],
            offset=placement.byte_offset,
            size=self.layout.shard_capacity_bytes,
            object_id=shard.name,
        )

    def _buffer(self, shard: ShardId) -> ShardBuffer:
        buffer = self._buffers.get(shard.name)
        if buffer is None:
            placement = place(shard, self.layout)
            buffer = ShardBuffer(
                shard=shard,
                placement=placement,
                space_id=self._space_ids[placement.space_index],
                capacity_bytes=self.layout.shard_capacity_bytes,
            )
            self._buffers[shard.name] = buffer
        return buffer

    # -- ingest ------------------------------------------------------------

    def put(self, uid: str, date: str, size: int) -> PackedObject:
        """Pack one object; flush its shard if the threshold is hit."""
        shard = route(uid, date, self.layout.shards_per_day)
        buffer = self._buffer(shard)
        record = buffer.append(uid, date, size)
        self.stats.accepted += 1
        self._m_accepted.inc()
        if self._tracer.enabled:
            record.trace = self._tracer.start(
                "shardstore.object",
                kind="object",
                uid=uid,
                date=date,
                shard=shard.name,
                size=size,
            )
        self._update_buffer_gauges()
        if buffer.fill_fraction >= self.config.flush_fill_fraction:
            self.flush_shard(shard.name)
        return record

    def flush_shard(self, shard_name: str) -> Optional[GatewayRequest]:
        """Flush one shard's buffered run as a single sequential write."""
        buffer = self._buffers.get(shard_name)
        if buffer is None:
            return None
        start, extent, records = buffer.take_buffered()
        if not records:
            return None
        self._m_fill.observe(buffer.fill_fraction)
        flush = _Flush(buffer=buffer, start=start, extent=extent, records=records)
        ref = ObjectRef(
            space_id=buffer.space_id,
            offset=buffer.placement.byte_offset + start,
            size=extent,
            object_id=f"{buffer.shard.name}+{start}",
        )
        for record in records:
            # Everything since the object entered the buffer was spent
            # waiting for the packer to fill — pack_wait.
            record.trace.phase("pack_wait")
        request = self.gateway.submit(
            WriteObject(tenant=self.config.tenant, ref=ref)
        )
        request.on_complete = lambda done, flush=flush: self._flush_done(
            flush, done
        )
        self.stats.flushes += 1
        self._m_flushes.inc()
        self._update_buffer_gauges()
        return request

    def flush_all(self) -> List[GatewayRequest]:
        """Flush every open shard (end-of-ingest barrier)."""
        requests: List[GatewayRequest] = []
        for shard_name in sorted(self._buffers):
            request = self.flush_shard(shard_name)
            if request is not None:
                requests.append(request)
        return requests

    def _flush_done(self, flush: _Flush, request: GatewayRequest) -> None:
        buffer = flush.buffer
        buffer.inflight_flushes -= 1
        now = self.gateway.sim.now
        if request.failure is not None:
            self.stats.flush_failures += 1
            self._m_flush_failures.inc()
            for record in flush.records:
                record.state = ObjectState.FAILED
                record.failure = request.failure
                self.stats.flush_failed += 1
                record.trace.phase("flush")
                record.trace.finish("failed")
            return
        buffer.durable_bytes += flush.extent
        self.stats.flushed_bytes += flush.extent
        self._m_flushed_bytes.inc(flush.extent)
        media = self._media.setdefault(buffer.shard.name, [])
        for record in flush.records:
            record.state = ObjectState.ACKED
            record.acked_at = now
            self.stats.acked += 1
            self._m_acked.inc()
            media.append(record)
            self._directory[(record.date, record.uid)] = record
            record.trace.phase("flush")
            record.trace.finish("acked")
        gauge = self._occupancy_gauges.get(buffer.shard.name)
        if gauge is None:
            metric_name = "shardstore.occupancy." + buffer.shard.name.replace(
                "/", "."
            )
            gauge = self.gateway.sim.metrics.gauge(metric_name)
            self._occupancy_gauges[buffer.shard.name] = gauge
        gauge.set(buffer.occupancy)

    # -- retrieval ---------------------------------------------------------

    def get(self, uid: str, date: str) -> GatewayRequest:
        """Retrieve one object as a sub-block range read of its shard.

        The shard comes from ``route()`` (pure function), the offset
        from the directory record; nothing else is consulted.  Raises
        :class:`ObjectNotFoundError` when the record is unknown — not
        yet acked, lost to a failed flush, or the directory cache was
        dropped and :meth:`recover` has not run.
        """
        record = self._directory.get((date, uid))
        if record is None:
            raise ObjectNotFoundError(
                f"no acked record for uid={uid!r} date={date!r} "
                f"(routed shard: {route(uid, date, self.layout.shards_per_day).name})"
            )
        request = self.gateway.submit(
            ReadRange(
                tenant=self.config.tenant,
                ref=self.slot_ref(record.shard),
                start=record.offset_in_shard,
                length=record.record_bytes,
            )
        )
        request.on_complete = self._get_done
        return request

    def _get_done(self, request: GatewayRequest) -> None:
        if request.failure is not None:
            self.stats.retrieval_failures += 1
            return
        self.stats.retrievals += 1
        self._m_retrievals.inc()

    # -- recovery (the no-metadata-DB proof) -------------------------------

    def drop_directory(self) -> None:
        """Lose the soft state, as a crash/restart of this node would."""
        self._directory.clear()
        self.stats.directory_drops += 1

    def recover(self) -> List[GatewayRequest]:
        """Rebuild the directory from media alone.

        Issues one sequential scan read over each shard's durable
        extent; when a scan completes, the self-describing records it
        covered are re-registered.  No other source is consulted —
        if this restores every acked object, the store genuinely needs
        no metadata database.
        """
        requests: List[GatewayRequest] = []
        for shard_name in sorted(self._media):
            records = self._media[shard_name]
            if not records:
                continue
            shard = records[0].shard
            durable_end = max(
                record.offset_in_shard + record.record_bytes
                for record in records
            )
            slot = self.slot_ref(shard)
            scan_ref = ObjectRef(
                space_id=slot.space_id,
                offset=slot.offset,
                size=durable_end,
                object_id=f"{shard_name}@scan",
            )
            request = self.gateway.submit(
                ReadObject(tenant=self.config.tenant, ref=scan_ref)
            )
            request.on_complete = (
                lambda done, found=records: self._scan_done(found, done)
            )
            requests.append(request)
        return requests

    def _scan_done(
        self, found: List[PackedObject], request: GatewayRequest
    ) -> None:
        if request.failure is not None:
            return
        self.stats.recovery_scans += 1
        self._m_scans.inc()
        for record in found:
            self._directory[(record.date, record.uid)] = record

    # -- accounting --------------------------------------------------------

    def directory_size(self) -> int:
        return len(self._directory)

    def occupancy(self) -> Dict[str, float]:
        """Durable fill fraction per shard, sorted by shard name."""
        return {
            name: self._buffers[name].occupancy
            for name in sorted(self._buffers)
            if self._buffers[name].durable_bytes > 0
        }

    def summary(self) -> Dict[str, object]:
        stats = self.stats
        occupancy = self.occupancy()
        mean_occupancy = (
            sum(occupancy.values()) / len(occupancy) if occupancy else 0.0
        )
        return {
            "accepted": stats.accepted,
            "acked": stats.acked,
            "flush_failed": stats.flush_failed,
            "flushes": stats.flushes,
            "flush_failures": stats.flush_failures,
            "flushed_bytes": stats.flushed_bytes,
            "retrievals": stats.retrievals,
            "retrieval_failures": stats.retrieval_failures,
            "recovery_scans": stats.recovery_scans,
            "directory_size": self.directory_size(),
            "shards_used": len(occupancy),
            "spaces_used": len(
                {
                    self._buffers[name].space_id
                    for name in sorted(self._buffers)
                    if self._buffers[name].durable_bytes > 0
                }
            ),
            "mean_occupancy": mean_occupancy,
        }

    def _update_buffer_gauges(self) -> None:
        open_shards = 0
        buffered = 0
        for name in sorted(self._buffers):
            buffer = self._buffers[name]
            if buffer.buffered:
                open_shards += 1
                buffered += buffer.buffered_bytes
        self._m_open.set(float(open_shards))
        self._m_buffered.set(float(buffered))
