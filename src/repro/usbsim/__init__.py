"""Simulated USB stack: per-host trees, hot-plug, enumeration, quirks."""

from repro.usbsim.bus import HostUsbListener, HotplugEvent, UsbBus
from repro.usbsim.params import UsbQuirks, UsbTimingParams
from repro.usbsim.tree import UsbTreeNode, render_tree, usb_tree_view, visible_disks

__all__ = [
    "HostUsbListener",
    "HotplugEvent",
    "UsbBus",
    "UsbQuirks",
    "UsbTimingParams",
    "UsbTreeNode",
    "render_tree",
    "usb_tree_view",
    "visible_disks",
]
