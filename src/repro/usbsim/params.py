"""Timing and quirk parameters of the simulated USB stack.

Calibrated so the switching-time decomposition of Figure 6 and the
5.8 s single-host failover of §I come out of the simulation:

* detaching a disk is quick (the old host notices the port drop after a
  short debounce);
* attaching is slow: the new host's driver performs a bus reset, then
  enumerates devices one at a time — which is why the paper's part-1
  delay grows with the number of disks switched together;
* the Intel xHCI quirk (§V-B) caps usable devices per root port at ~15.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["UsbQuirks", "UsbTimingParams"]


@dataclass(frozen=True)
class UsbTimingParams:
    """Seconds, calibrated to the prototype's Figure 6 measurements."""

    detach_debounce: float = 0.15
    # First device of a batch pays the bus reset + driver settle.
    attach_base: float = 1.30
    # Each device (bridge+disk identity) enumerates serially.
    enumerate_per_device: float = 0.45
    # Uniform jitter fraction applied to enumeration times.
    jitter: float = 0.08


@dataclass(frozen=True)
class UsbQuirks:
    """Implementation wrinkles observed on the prototype (§V-B)."""

    # Intel xHCI root hub driver recognizes at most ~15 devices.
    max_devices_per_port: int = 15
    # Probability that a switch-over is not detected and the device
    # needs a power cycle (0 keeps experiments deterministic).
    undetected_switch_probability: float = 0.0
    # Extra delay when a power cycle is required.
    power_cycle_delay: float = 4.0
