"""Hot-plug simulation: how hosts see disks appear and disappear.

The :class:`UsbBus` watches the fabric's switch states, component
failures, and disk power.  When the picture changes (a Controller
turned switches, a hub died, a relay cut power), call :meth:`sync`:
the bus computes which host lost and which host gained each disk and
drives the corresponding OS-level events with realistic delays:

* **detach** after a short debounce on the losing host;
* **attach** on the gaining host after bus reset + *serialized*
  enumeration — a batch of N disks takes ``attach_base +
  N * enumerate_per_device``, which is exactly why Figure 6's first
  delay component grows with the number of disks switched together.

Listeners (EndPoints) receive ``on_attach(disk_id)`` / ``on_detach``
callbacks in simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Protocol

from repro.fabric.topology import Fabric
from repro.sim import Simulator, Store
from repro.sim.rng import RngRegistry
from repro.usbsim.params import UsbQuirks, UsbTimingParams
from repro.usbsim.tree import visible_disks

__all__ = ["HostUsbListener", "HotplugEvent", "UsbBus"]


class HostUsbListener(Protocol):
    """What a host's OS layer must implement to observe hot-plug."""

    def on_attach(self, disk_id: str) -> None: ...

    def on_detach(self, disk_id: str) -> None: ...


@dataclass(frozen=True)
class HotplugEvent:
    time: float
    host_id: str
    disk_id: str
    kind: str  # "attach" or "detach"


class UsbBus:
    """Simulated USB hot-plug behaviour over a fabric."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        rng: Optional[RngRegistry] = None,
        timing: UsbTimingParams = UsbTimingParams(),
        quirks: UsbQuirks = UsbQuirks(),
    ):
        self.sim = sim
        self.fabric = fabric
        self.timing = timing
        self.quirks = quirks
        self._rng = (rng or RngRegistry(0)).stream("usbbus")
        self._listeners: Dict[str, List[HostUsbListener]] = {}
        # What each host's OS currently believes is attached.
        self._os_view: Dict[str, set] = {h: set() for h in fabric.hosts()}
        # Disks handed to a host's enumeration queue but not yet visible.
        self._enumerating: Dict[str, set] = {h: set() for h in fabric.hosts()}
        self._enum_queue: Dict[str, Store] = {
            h: Store(sim, name=f"usb-enum:{h}") for h in fabric.hosts()
        }
        self.events: List[HotplugEvent] = []
        self._disk_powered: Dict[str, bool] = {
            d.node_id: True for d in fabric.disks
        }
        for host in fabric.hosts():
            sim.process(self._enumeration_worker(host))

    # -- wiring -----------------------------------------------------------

    def register_listener(self, host_id: str, listener: HostUsbListener) -> None:
        self._listeners.setdefault(host_id, []).append(listener)

    def os_view(self, host_id: str) -> frozenset:
        """Disks the host's OS currently sees."""
        return frozenset(self._os_view[host_id])

    def set_disk_power(self, disk_id: str, powered: bool) -> None:
        """Relay control (§III-B): cutting power detaches the disk."""
        if disk_id not in self._disk_powered:
            raise KeyError(f"unknown disk {disk_id!r}")
        self._disk_powered[disk_id] = powered
        self.sync()

    # -- the core diff engine ----------------------------------------------

    def _target_view(self, host_id: str) -> set:
        visible = set(visible_disks(self.fabric, host_id))
        return {d for d in visible if self._disk_powered.get(d, False)}

    def sync(self) -> None:
        """Reconcile OS views with the fabric's current routing.

        Call after every switch turn, failure, repair or power change.
        Detaches fire after a debounce delay; attaches go through each
        host's serialized enumeration worker.
        """
        for host_id in self.fabric.hosts():
            target = self._target_view(host_id)
            known = self._os_view[host_id] | self._enumerating[host_id]
            for disk_id in sorted(known - target):
                self._begin_detach(host_id, disk_id)
            for disk_id in sorted(target - known):
                self._begin_attach(host_id, disk_id)

    def _begin_detach(self, host_id: str, disk_id: str) -> None:
        self._enumerating[host_id].discard(disk_id)

        def complete() -> None:
            if disk_id in self._os_view[host_id]:
                self._os_view[host_id].discard(disk_id)
                self.events.append(
                    HotplugEvent(self.sim.now, host_id, disk_id, "detach")
                )
                for listener in self._listeners.get(host_id, []):
                    listener.on_detach(disk_id)

        self.sim.call_in(self.timing.detach_debounce, complete)

    def _begin_attach(self, host_id: str, disk_id: str) -> None:
        if (
            len(self._os_view[host_id]) + len(self._enumerating[host_id])
            >= self.quirks.max_devices_per_port
        ):
            # Intel xHCI quirk: device silently fails to enumerate.
            return
        self._enumerating[host_id].add(disk_id)
        self._enum_queue[host_id].put(disk_id)

    def _enumeration_worker(self, host_id: str):
        queue = self._enum_queue[host_id]
        while True:
            disk_id = yield queue.get()
            # Waking from idle: this batch pays the bus reset once.
            yield self.sim.timeout(self._jittered(self.timing.attach_base))
            batch = [disk_id]
            batch.extend(queue.items)
            queue.items.clear()
            for item in batch:
                yield self.sim.timeout(self._jittered(self.timing.enumerate_per_device))
                if self._rng.random() < self.quirks.undetected_switch_probability:
                    # §V-B: switching not detected; a power cycle fixes it.
                    yield self.sim.timeout(self.quirks.power_cycle_delay)
                if item not in self._enumerating[host_id]:
                    continue  # detached while waiting in the queue
                self._enumerating[host_id].discard(item)
                self._os_view[host_id].add(item)
                self.events.append(HotplugEvent(self.sim.now, host_id, item, "attach"))
                for listener in self._listeners.get(host_id, []):
                    listener.on_attach(item)
                # Devices that arrived during enumeration join the batch.
                batch.extend(queue.items)
                queue.items.clear()

    def _jittered(self, base: float) -> float:
        if self.timing.jitter <= 0:
            return base
        spread = self.timing.jitter * base
        return base + self._rng.uniform(-spread, spread)
