"""Per-host USB tree views (the simulated ``lsusb -t``).

The EndPoint's USB Monitor reports these trees to the Controller, which
combines the non-overlapping per-host views into its picture of the
whole fabric (§IV-B, §IV-E).  Switches and bridges do not appear as
distinct devices: a switch is electrically transparent and a bridge
presents as the disk's mass-storage identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.fabric.components import NodeKind
from repro.fabric.topology import Fabric

__all__ = ["UsbTreeNode", "usb_tree_view", "render_tree"]


@dataclass
class UsbTreeNode:
    """One visible USB device in a host's tree."""

    node_id: str
    kind: str  # "root", "hub" or "disk"
    children: List["UsbTreeNode"] = field(default_factory=list)

    def device_count(self) -> int:
        """Devices in this subtree, itself included (roots excluded)."""
        own = 0 if self.kind == "root" else 1
        return own + sum(child.device_count() for child in self.children)

    def find(self, node_id: str) -> Optional["UsbTreeNode"]:
        if self.node_id == node_id:
            return self
        for child in self.children:
            found = child.find(node_id)
            if found is not None:
                return found
        return None

    def disks(self) -> List[str]:
        result = []
        if self.kind == "disk":
            result.append(self.node_id)
        for child in self.children:
            result.extend(child.disks())
        return result


def usb_tree_view(fabric: Fabric, host_id: str) -> List[UsbTreeNode]:
    """The USB trees a host currently sees, one per root port.

    Only components whose active route reaches the port are visible;
    failed components and everything below them disappear (exactly what
    ``lsusb -t`` would show after a hub dies).
    """
    trees: List[UsbTreeNode] = []
    for port in fabric.ports_of_host(host_id):
        if port.failed:
            continue
        root = UsbTreeNode(node_id=port.node_id, kind="root")
        _grow(fabric, port.node_id, root)
        trees.append(root)
    return trees


def _grow(fabric: Fabric, node_id: str, parent_view: UsbTreeNode) -> None:
    for child_id in fabric.downstreams(node_id):
        child = fabric.node(child_id)
        if child.failed:
            continue
        if child.kind is NodeKind.SWITCH:
            # Transparent: descend only when the switch routes here.
            if fabric.active_upstream(child_id) == node_id:
                _grow(fabric, child_id, parent_view)
        elif child.kind is NodeKind.HUB:
            view = UsbTreeNode(node_id=child_id, kind="hub")
            parent_view.children.append(view)
            _grow(fabric, child_id, view)
        elif child.kind is NodeKind.BRIDGE:
            # The bridge presents the disk as one mass-storage device.
            disk_ids = [
                d
                for d in fabric.downstreams(child_id)
                if fabric.node(d).kind is NodeKind.DISK and not fabric.node(d).failed
            ]
            for disk_id in disk_ids:
                parent_view.children.append(UsbTreeNode(node_id=disk_id, kind="disk"))


def render_tree(trees: List[UsbTreeNode]) -> str:
    """Human-readable rendering in the spirit of ``lsusb -t``."""
    lines: List[str] = []

    def walk(node: UsbTreeNode, depth: int) -> None:
        label = {"root": "Root", "hub": "Hub", "disk": "MassStorage"}[node.kind]
        lines.append("    " * depth + f"|__ {label} {node.node_id}")
        for child in node.children:
            walk(child, depth + 1)

    for tree in trees:
        lines.append(f"/: Bus {tree.node_id}")
        for child in tree.children:
            walk(child, 1)
    return "\n".join(lines)


def visible_disks(fabric: Fabric, host_id: str) -> List[str]:
    """Disks a host would see after full enumeration."""
    result: List[str] = []
    for tree in usb_tree_view(fabric, host_id):
        result.extend(tree.disks())
    return result
