"""Iometer-style workload specifications (§VII-A).

The paper's evaluation sweeps three parameters: transfer request size,
sequential vs random access, and the read percentage of the mix.  A
:class:`WorkloadSpec` captures one cell of that sweep; helpers name the
cells the way the paper's Figure 5 does (e.g. ``4KB-S-R``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["AccessPattern", "WorkloadSpec", "KB", "MB", "TABLE2_WORKLOADS"]

KB = 1024
MB = 1024 * 1024


class AccessPattern(enum.Enum):
    SEQUENTIAL = "sequential"
    RANDOM = "random"


@dataclass(frozen=True)
class WorkloadSpec:
    """One Iometer access specification.

    ``read_fraction`` is the fraction of operations that are reads
    (1.0, 0.5 and 0.0 in the paper's tables).
    """

    transfer_size: int
    pattern: AccessPattern
    read_fraction: float

    def __post_init__(self) -> None:
        if self.transfer_size <= 0:
            raise ValueError(f"transfer_size must be positive, got {self.transfer_size}")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError(f"read_fraction must be in [0, 1], got {self.read_fraction}")

    @property
    def is_sequential(self) -> bool:
        return self.pattern is AccessPattern.SEQUENTIAL

    @property
    def is_pure(self) -> bool:
        """True when the mix is all-reads or all-writes."""
        return self.read_fraction in (0.0, 1.0)

    @property
    def name(self) -> str:
        """Figure 5 style name, e.g. ``4KB-S-R`` or ``4MB-R-W``."""
        if self.transfer_size % MB == 0:
            size = f"{self.transfer_size // MB}MB"
        elif self.transfer_size % KB == 0:
            size = f"{self.transfer_size // KB}KB"
        else:
            size = f"{self.transfer_size}B"
        pattern = "S" if self.is_sequential else "R"
        if self.read_fraction == 1.0:
            mix = "R"
        elif self.read_fraction == 0.0:
            mix = "W"
        else:
            mix = f"{int(self.read_fraction * 100)}%R"
        return f"{size}-{pattern}-{mix}"

    @staticmethod
    def parse(name: str) -> "WorkloadSpec":
        """Inverse of :attr:`name` for the common forms."""
        size_part, pattern_part, mix_part = name.split("-")
        if size_part.endswith("MB"):
            size = int(size_part[:-2]) * MB
        elif size_part.endswith("KB"):
            size = int(size_part[:-2]) * KB
        elif size_part.endswith("B"):
            size = int(size_part[:-1])
        else:
            raise ValueError(f"cannot parse size from {name!r}")
        pattern = AccessPattern.SEQUENTIAL if pattern_part == "S" else AccessPattern.RANDOM
        if mix_part == "R":
            read_fraction = 1.0
        elif mix_part == "W":
            read_fraction = 0.0
        elif mix_part.endswith("%R"):
            read_fraction = int(mix_part[:-2]) / 100.0
        else:
            raise ValueError(f"cannot parse mix from {name!r}")
        return WorkloadSpec(size, pattern, read_fraction)


def _table2_grid() -> tuple[WorkloadSpec, ...]:
    specs = []
    for size in (4 * KB, 4 * MB):
        for pattern in (AccessPattern.SEQUENTIAL, AccessPattern.RANDOM):
            for read_fraction in (1.0, 0.5, 0.0):
                specs.append(WorkloadSpec(size, pattern, read_fraction))
    return tuple(specs)


#: The 12 workload cells of Table II, in the paper's column order.
TABLE2_WORKLOADS = _table2_grid()
