"""Workload specifications, Iometer-style drivers, and trace generators."""

from repro.workload.specs import KB, MB, AccessPattern, TABLE2_WORKLOADS, WorkloadSpec
from repro.workload.traces import AccessEvent, archival_batch_trace, cold_read_trace

__all__ = [
    "AccessEvent",
    "AccessPattern",
    "IometerRun",
    "KB",
    "MB",
    "TABLE2_WORKLOADS",
    "WorkerStats",
    "WorkloadSpec",
    "archival_batch_trace",
    "cold_read_trace",
    "model_throughput",
]

# The Iometer driver pulls in the disk device model, which itself uses
# workload.specs; load it lazily (PEP 562) to keep imports acyclic.
_LAZY = {"IometerRun", "WorkerStats", "model_throughput"}


def __getattr__(name):
    if name in _LAZY:
        from repro.workload import iometer

        return getattr(iometer, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
