"""Synthetic cold/archival access traces (§I's workload taxonomy).

The paper distinguishes *cold* data (rare, interactive reads that want
seconds-level latency — old emails, shared photos) from *archival* data
(large, scheduled batches — backups, system logs).  These generators
produce request streams with those shapes for the power-management and
example scenarios.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.sim.rng import RngRegistry
from repro.workload.specs import KB, MB

__all__ = ["AccessEvent", "archival_batch_trace", "cold_read_trace"]


@dataclass(frozen=True)
class AccessEvent:
    """One client request against a space."""

    time: float
    offset: int
    size: int
    is_read: bool


def cold_read_trace(
    rng: RngRegistry,
    duration: float,
    mean_interarrival: float = 600.0,
    object_size: int = 4 * MB,
    region_bytes: int = 10 * 1024 * MB,
    stream: str = "cold",
) -> List[AccessEvent]:
    """Poisson arrivals of small random reads (cold data, §I).

    Default: one read every ten minutes on average — rare enough that a
    spun-down disk pays a spin-up on most accesses, which is exactly
    the trade-off the adaptive policy ablation explores.
    """
    rand = rng.stream(stream)
    events: List[AccessEvent] = []
    t = 0.0
    blocks = max(1, region_bytes // object_size)
    while True:
        t += -mean_interarrival * math.log(1.0 - rand.random())
        if t >= duration:
            break
        events.append(
            AccessEvent(
                time=t,
                offset=rand.randrange(blocks) * object_size,
                size=object_size,
                is_read=True,
            )
        )
    return events


def archival_batch_trace(
    duration: float,
    batch_interval: float = 24 * 3600.0,
    batch_bytes: int = 64 * 1024 * MB,
    write_size: int = 4 * MB,
    start_offset: int = 0,
    first_batch_at: Optional[float] = None,
) -> List[AccessEvent]:
    """Scheduled sequential write bursts (archival data, §I).

    Batches of large sequential writes arrive on a fixed schedule (e.g.
    a nightly backup); between batches the disk is completely idle.
    """
    events: List[AccessEvent] = []
    offset = start_offset
    t = batch_interval if first_batch_at is None else first_batch_at
    while t < duration:
        remaining = batch_bytes
        while remaining > 0:
            size = min(write_size, remaining)
            events.append(AccessEvent(time=t, offset=offset, size=size, is_read=False))
            offset += size
            remaining -= size
        t += batch_interval
    return events
