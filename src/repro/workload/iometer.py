"""An Iometer-like workload driver (§VII-A).

The paper evaluates the prototype with Iometer: one worker per disk,
each issuing I/O of a given transfer size, access pattern and
read-percentage.  Two drivers are provided:

* :func:`model_throughput` — closed-form: combines the disk service
  model with the fabric fair-share allocator (fast; used by the
  Table II / Figure 5 experiments);
* :class:`IometerRun` — event-driven: actual workers issuing I/O
  against :class:`~repro.disk.device.SimulatedDisk` objects through the
  simulation, with fabric-level rate limiting applied to each transfer.
  Slower but exercises the full code path, including mixed sequences
  and queueing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence

from repro.disk.device import IoRequest, SimulatedDisk
from repro.disk.model import DiskModel
from repro.fabric.bandwidth import BandwidthModel, Flow
from repro.fabric.topology import Fabric
from repro.obs.metrics import MetricsRegistry
from repro.sim import Event, Simulator
from repro.sim.rng import RngRegistry
from repro.workload.specs import AccessPattern, WorkloadSpec

__all__ = ["IometerRun", "WorkerStats", "model_throughput"]


def model_throughput(
    fabric: Fabric,
    disk_ids: Sequence[str],
    spec: WorkloadSpec,
    model: Optional[DiskModel] = None,
    duplex_split: bool = False,
    metrics: Optional[MetricsRegistry] = None,
) -> Dict[str, float]:
    """Closed-form aggregate throughput for one worker per disk.

    Returns ``{"total_bytes_per_second": ..., "per_disk": {...}}``-style
    dict.  With ``duplex_split`` half the workers read and half write
    (the paper's duplex experiment); otherwise each worker carries the
    spec's own mix as a single flow in the majority direction, with a
    50/50 mix modelled as two half-demand flows.
    """
    model = model or DiskModel()
    demand = model.demand_bytes_per_second(spec)
    flows: List[Flow] = []
    for index, disk_id in enumerate(disk_ids):
        if duplex_split:
            flows.append(
                Flow(
                    flow_id=f"{disk_id}:duplex",
                    disk_id=disk_id,
                    demand=demand,
                    is_read=index % 2 == 0,
                    io_size=spec.transfer_size,
                )
            )
        elif 0.0 < spec.read_fraction < 1.0:
            for direction, share in (("r", spec.read_fraction), ("w", 1 - spec.read_fraction)):
                flows.append(
                    Flow(
                        flow_id=f"{disk_id}:{direction}",
                        disk_id=disk_id,
                        demand=demand * share,
                        is_read=direction == "r",
                        io_size=spec.transfer_size,
                    )
                )
        else:
            flows.append(
                Flow(
                    flow_id=f"{disk_id}:flow",
                    disk_id=disk_id,
                    demand=demand,
                    is_read=spec.read_fraction >= 0.5,
                    io_size=spec.transfer_size,
                )
            )
    allocation = BandwidthModel(fabric, metrics=metrics).allocate(flows)
    per_disk: Dict[str, float] = {}
    for flow in flows:
        per_disk[flow.disk_id] = per_disk.get(flow.disk_id, 0.0) + allocation.rate(
            flow.flow_id
        )
    return {
        "total_bytes_per_second": allocation.total(),
        "per_disk": per_disk,
        "spec": spec.name,
    }


@dataclass
class WorkerStats:
    disk_id: str
    completed: int = 0
    bytes_moved: int = 0
    service_times: List[float] = field(default_factory=list)

    def throughput(self, duration: float) -> float:
        return self.bytes_moved / duration if duration > 0 else 0.0


class IometerRun:
    """Event-driven workers, one per disk, running for a fixed duration."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        disks: Dict[str, SimulatedDisk],
        spec: WorkloadSpec,
        disk_ids: Optional[Sequence[str]] = None,
        rng: Optional[RngRegistry] = None,
        region_bytes: int = 64 * 1024 * 1024 * 1024,
    ):
        self.sim = sim
        self.fabric = fabric
        self.disks = disks
        self.spec = spec
        self.disk_ids = list(disk_ids if disk_ids is not None else disks)
        self.region_bytes = region_bytes
        self._rng = (rng or RngRegistry(0)).stream("iometer")
        self.stats: Dict[str, WorkerStats] = {}
        self._bandwidth = BandwidthModel(fabric)

    def _fabric_rate(self) -> Dict[str, float]:
        """Current fair-share byte rate per disk for this run's flows."""
        flows = [
            Flow(
                flow_id=d,
                disk_id=d,
                demand=1e12,
                is_read=self.spec.read_fraction >= 0.5,
                io_size=self.spec.transfer_size,
            )
            for d in self.disk_ids
        ]
        allocation = self._bandwidth.allocate(flows)
        return dict(allocation.rates)

    def _worker(self, disk_id: str, stop_at: float) -> Generator[Event, None, None]:
        disk = self.disks[disk_id]
        stats = self.stats[disk_id]
        spec = self.spec
        offset = 0
        ops = 0
        while self.sim.now < stop_at:
            if spec.pattern is AccessPattern.RANDOM:
                blocks = max(1, self.region_bytes // spec.transfer_size)
                offset = self._rng.randrange(blocks) * spec.transfer_size
                sequential = False
            else:
                sequential = True
            if spec.read_fraction >= 1.0:
                is_read = True
            elif spec.read_fraction <= 0.0:
                is_read = False
            else:
                # Deterministic alternation reproduces the mixed-workload
                # turnaround penalties the model charges.
                is_read = ops % 2 == 0
            request = IoRequest(
                offset=offset,
                size=spec.transfer_size,
                is_read=is_read,
                sequential_hint=sequential,
            )
            service = yield disk.submit(request)
            # Fabric-level throttling: if the fair share is below the
            # disk's native rate, pad the transfer accordingly.
            rate = self._rates.get(disk_id, float("inf"))
            native = spec.transfer_size / service if service > 0 else float("inf")
            if rate < native:
                yield self.sim.timeout(spec.transfer_size / rate - service)
            stats.completed += 1
            stats.bytes_moved += spec.transfer_size
            stats.service_times.append(service)
            if sequential:
                offset = (offset + spec.transfer_size) % self.region_bytes
            ops += 1

    def run(self, duration: float) -> Dict[str, float]:
        """Run all workers for ``duration`` simulated seconds."""
        self.stats = {d: WorkerStats(d) for d in self.disk_ids}
        self._rates = self._fabric_rate()
        start = self.sim.now
        stop_at = start + duration
        procs = [self.sim.process(self._worker(d, stop_at)) for d in self.disk_ids]
        gate = self.sim.all_of(procs)
        self.sim.run_until_event(gate)
        elapsed = self.sim.now - start
        total = sum(s.bytes_moved for s in self.stats.values())
        return {
            "total_bytes_per_second": total / elapsed if elapsed else 0.0,
            "per_disk": {
                d: s.throughput(elapsed) for d, s in self.stats.items()
            },
            "total_iops": sum(s.completed for s in self.stats.values()) / elapsed
            if elapsed
            else 0.0,
            "spec": self.spec.name,
        }
