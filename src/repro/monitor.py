"""Deployment observability: status snapshots and a text dashboard.

Gives operators (and examples/tests) one call to see the whole system:
per-host attachment and exposure, disk power states, master/controller
health, fabric power, and client activity — the view a real UStore
operations console would render from SysConf + SysStat.

When the deployment was built with an armed :class:`repro.obs`
metrics registry, the snapshot additionally captures the registry's
dump and the dashboard renders a live-metrics section (event counts,
I/O counters, queue-depth percentiles).  Deployments without a
registry fall back to the pure state-walk view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.energy import ConservationAuditor

from repro.cluster.deployment import Deployment
from repro.cluster.multiunit import DeployUnit, MultiUnitDeployment
from repro.fabric.power import FabricPowerModel

__all__ = ["DeploymentSnapshot", "snapshot", "render_dashboard"]


@dataclass
class UnitSnapshot:
    unit_id: str
    disks_per_host: Dict[str, List[str]] = field(default_factory=dict)
    detached_disks: List[str] = field(default_factory=list)
    disk_states: Dict[str, str] = field(default_factory=dict)
    exposed_targets: Dict[str, int] = field(default_factory=dict)
    fabric_watts: float = 0.0
    switch_turns_total: int = 0
    failed_components: List[str] = field(default_factory=list)


@dataclass
class DeploymentSnapshot:
    time: float
    active_master: Optional[str]
    coord_leader: Optional[str]
    units: Dict[str, UnitSnapshot] = field(default_factory=dict)
    spaces_allocated: int = 0
    failovers_completed: int = 0
    #: ``MetricsRegistry.dump()`` of the deployment's registry, or
    #: ``None`` when metrics were not armed (NULL_REGISTRY).
    metrics: Optional[Dict] = None
    #: Critical-path aggregate over the tracer's completed request
    #: traces, or ``None`` when tracing was not armed (NULL_TRACER).
    trace_breakdown: Optional[Dict] = None
    #: Energy-ledger view — conservation identity plus per-account
    #: joules — or ``None`` when no auditor was passed to ``snapshot``.
    energy: Optional[Dict] = None


def _unit_snapshot(unit_id: str, fabric, disks, endpoints) -> UnitSnapshot:
    snap = UnitSnapshot(unit_id=unit_id)
    attachment = fabric.attachment_map()
    for host in fabric.hosts():
        snap.disks_per_host[host] = sorted(
            d for d, h in attachment.items() if h == host
        )
    snap.detached_disks = sorted(d for d, h in attachment.items() if h is None)
    snap.disk_states = {
        disk_id: disk.power_state.value for disk_id, disk in sorted(disks.items())
    }
    for host, endpoint in endpoints.items():
        snap.exposed_targets[host] = len(endpoint.targets.exposed_targets())
    snap.fabric_watts = FabricPowerModel(fabric).total_power()
    snap.switch_turns_total = sum(s.turn_count for s in fabric.switches)
    snap.failed_components = sorted(
        node_id for node_id, node in fabric.nodes.items() if node.failed
    )
    return snap


def snapshot(
    deployment: Union[Deployment, MultiUnitDeployment],
    energy: Optional["ConservationAuditor"] = None,
) -> DeploymentSnapshot:
    """Collect the current state of a (single- or multi-unit) deployment.

    When ``energy`` names a :class:`repro.obs.ConservationAuditor`, the
    snapshot also audits its ledger at the current sim time and carries
    the identity plus the per-account joule books.
    """
    from repro.coord import Role

    master = deployment.active_master()
    leader = None
    for replica in deployment.coord_replicas:
        if replica.role is Role.LEADER and not replica.crashed:
            leader = replica.address
    snap = DeploymentSnapshot(
        time=deployment.sim.now,
        active_master=master.address if master else None,
        coord_leader=leader,
        spaces_allocated=len(master.records) if master else 0,
        failovers_completed=master.failovers_completed if master else 0,
        metrics=(
            deployment.sim.metrics.dump()
            if deployment.sim.metrics.enabled
            else None
        ),
    )
    tracer = deployment.sim.tracer
    if tracer.enabled:
        from repro.obs import CriticalPathAnalyzer

        requests = [ctx for ctx in tracer.completed if ctx.kind == "request"]
        snap.trace_breakdown = CriticalPathAnalyzer().aggregate(requests)
    if energy is not None:
        snap.energy = {
            "identity": energy.audit(deployment.sim.now),
            "accounts": energy.ledger.account_joules(),
        }
    if isinstance(deployment, MultiUnitDeployment):
        for unit_id, unit in deployment.units.items():
            snap.units[unit_id] = _unit_snapshot(
                unit_id, unit.fabric, unit.disks, unit.endpoints
            )
    else:
        snap.units["unit0"] = _unit_snapshot(
            "unit0", deployment.fabric, deployment.disks, deployment.endpoints
        )
    return snap


def render_dashboard(snap: DeploymentSnapshot) -> str:
    """Operator-console style text rendering of a snapshot."""
    lines = [
        f"UStore status @ t={snap.time:.1f}s",
        f"  master: {snap.active_master or 'NONE'}   "
        f"coordination leader: {snap.coord_leader or 'NONE'}",
        f"  spaces allocated: {snap.spaces_allocated}   "
        f"failovers completed: {snap.failovers_completed}",
    ]
    for unit in snap.units.values():
        lines.append(f"  [{unit.unit_id}]  fabric {unit.fabric_watts:.1f} W, "
                     f"{unit.switch_turns_total} switch turns")
        for host, disks in unit.disks_per_host.items():
            exposed = unit.exposed_targets.get(host, 0)
            spun_down = sum(
                1 for d in disks if unit.disk_states.get(d) == "spun_down"
            )
            lines.append(
                f"    {host:<16} {len(disks):>2} disks "
                f"({spun_down} spun down), {exposed} targets: "
                f"{', '.join(disks) if disks else '-'}"
            )
        if unit.detached_disks:
            lines.append(f"    DETACHED: {', '.join(unit.detached_disks)}")
        if unit.failed_components:
            lines.append(f"    FAILED: {', '.join(unit.failed_components)}")
    if snap.metrics is not None:
        lines.extend(_render_metrics(snap.metrics))
    if snap.trace_breakdown is not None:
        lines.extend(_render_breakdown(snap.trace_breakdown))
    if snap.energy is not None:
        lines.extend(_render_energy(snap.energy))
    return "\n".join(lines)


#: Counters worth a dashboard line, in display order.
_DASHBOARD_COUNTERS = (
    "sim.events",
    "disk.ios",
    "disk.spin_ups",
    "iscsi.ios",
    "master.heartbeats",
    "master.failovers",
    "switch.turns",
    "controller.commands",
)


def _render_breakdown(aggregate: Dict) -> List[str]:
    """Latency-attribution section, fed by the request tracer."""
    lines = [
        f"  latency attribution ({aggregate['traces']} traced requests, "
        f"{aggregate['identity_failures']} identity failures):"
    ]
    shares = aggregate.get("shares", {})
    for component in sorted(shares, key=lambda c: (-shares[c], c)):
        share = shares[component]
        if share <= 0.0:
            continue
        bar = "#" * int(round(share * 40))
        lines.append(f"    {component:<20} {share:7.2%} {bar}")
    return lines


def _render_energy(energy: Dict) -> List[str]:
    """Energy-attribution section, fed by the conservation auditor."""
    identity = energy["identity"]
    wall = identity["wall_joules"]
    lines = [
        f"  energy attribution (wall {wall:.1f} J, "
        f"residual {identity['residual']:.9f} J, "
        f"{'conserved' if identity['conserved'] else 'IDENTITY VIOLATED'}):"
    ]
    accounts = energy["accounts"]
    for account in sorted(accounts, key=lambda a: (-accounts[a], a)):
        joules = accounts[account]
        share = joules / wall if wall else 0.0
        bar = "#" * int(round(share * 40))
        lines.append(f"    {account:<20} {joules:10.1f} J {share:7.2%} {bar}")
    return lines


def _render_metrics(dump: Dict) -> List[str]:
    """Live-metrics section of the dashboard, fed by the obs registry."""
    lines = ["  metrics (sim-time registry):"]
    counters = dump.get("counters", {})
    shown = [name for name in _DASHBOARD_COUNTERS if name in counters]
    for name in shown:
        lines.append(f"    {name:<24} {counters[name]:>12.0f}")
    for name in sorted(counters):
        if name not in shown:
            lines.append(f"    {name:<24} {counters[name]:>12.0f}")
    for name, hist in sorted(dump.get("histograms", {}).items()):
        if not hist.get("count"):
            continue
        lines.append(
            f"    {name:<24} n={hist['count']:.0f} "
            f"p50={hist['p50']:.4g} p95={hist['p95']:.4g} max={hist['max']:.4g}"
        )
    for name, stats in sorted(dump.get("spans", {}).items()):
        lines.append(
            f"    span {name:<19} n={stats['count']:.0f} "
            f"total={stats['total_seconds']:.2f}s max={stats['max_seconds']:.2f}s"
        )
    return lines
