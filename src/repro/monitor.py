"""Deployment observability: status snapshots and a text dashboard.

Gives operators (and examples/tests) one call to see the whole system:
per-host attachment and exposure, disk power states, master/controller
health, fabric power, and client activity — the view a real UStore
operations console would render from SysConf + SysStat.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.cluster.deployment import Deployment
from repro.cluster.multiunit import DeployUnit, MultiUnitDeployment
from repro.fabric.power import FabricPowerModel

__all__ = ["DeploymentSnapshot", "snapshot", "render_dashboard"]


@dataclass
class UnitSnapshot:
    unit_id: str
    disks_per_host: Dict[str, List[str]] = field(default_factory=dict)
    detached_disks: List[str] = field(default_factory=list)
    disk_states: Dict[str, str] = field(default_factory=dict)
    exposed_targets: Dict[str, int] = field(default_factory=dict)
    fabric_watts: float = 0.0
    switch_turns_total: int = 0
    failed_components: List[str] = field(default_factory=list)


@dataclass
class DeploymentSnapshot:
    time: float
    active_master: Optional[str]
    coord_leader: Optional[str]
    units: Dict[str, UnitSnapshot] = field(default_factory=dict)
    spaces_allocated: int = 0
    failovers_completed: int = 0


def _unit_snapshot(unit_id: str, fabric, disks, endpoints) -> UnitSnapshot:
    snap = UnitSnapshot(unit_id=unit_id)
    attachment = fabric.attachment_map()
    for host in fabric.hosts():
        snap.disks_per_host[host] = sorted(
            d for d, h in attachment.items() if h == host
        )
    snap.detached_disks = sorted(d for d, h in attachment.items() if h is None)
    snap.disk_states = {
        disk_id: disk.power_state.value for disk_id, disk in sorted(disks.items())
    }
    for host, endpoint in endpoints.items():
        snap.exposed_targets[host] = len(endpoint.targets.exposed_targets())
    snap.fabric_watts = FabricPowerModel(fabric).total_power()
    snap.switch_turns_total = sum(s.turn_count for s in fabric.switches)
    snap.failed_components = sorted(
        node_id for node_id, node in fabric.nodes.items() if node.failed
    )
    return snap


def snapshot(
    deployment: Union[Deployment, MultiUnitDeployment]
) -> DeploymentSnapshot:
    """Collect the current state of a (single- or multi-unit) deployment."""
    from repro.coord import Role

    master = deployment.active_master()
    leader = None
    for replica in deployment.coord_replicas:
        if replica.role is Role.LEADER and not replica.crashed:
            leader = replica.address
    snap = DeploymentSnapshot(
        time=deployment.sim.now,
        active_master=master.address if master else None,
        coord_leader=leader,
        spaces_allocated=len(master.records) if master else 0,
        failovers_completed=master.failovers_completed if master else 0,
    )
    if isinstance(deployment, MultiUnitDeployment):
        for unit_id, unit in deployment.units.items():
            snap.units[unit_id] = _unit_snapshot(
                unit_id, unit.fabric, unit.disks, unit.endpoints
            )
    else:
        snap.units["unit0"] = _unit_snapshot(
            "unit0", deployment.fabric, deployment.disks, deployment.endpoints
        )
    return snap


def render_dashboard(snap: DeploymentSnapshot) -> str:
    """Operator-console style text rendering of a snapshot."""
    lines = [
        f"UStore status @ t={snap.time:.1f}s",
        f"  master: {snap.active_master or 'NONE'}   "
        f"coordination leader: {snap.coord_leader or 'NONE'}",
        f"  spaces allocated: {snap.spaces_allocated}   "
        f"failovers completed: {snap.failovers_completed}",
    ]
    for unit in snap.units.values():
        lines.append(f"  [{unit.unit_id}]  fabric {unit.fabric_watts:.1f} W, "
                     f"{unit.switch_turns_total} switch turns")
        for host, disks in unit.disks_per_host.items():
            exposed = unit.exposed_targets.get(host, 0)
            spun_down = sum(
                1 for d in disks if unit.disk_states.get(d) == "spun_down"
            )
            lines.append(
                f"    {host:<16} {len(disks):>2} disks "
                f"({spun_down} spun down), {exposed} targets: "
                f"{', '.join(disks) if disks else '-'}"
            )
        if unit.detached_disks:
            lines.append(f"    DETACHED: {', '.join(unit.detached_disks)}")
        if unit.failed_components:
            lines.append(f"    FAILED: {', '.join(unit.failed_components)}")
    return "\n".join(lines)
