"""Venti-style deduplicating backup overlay on UStore."""

from repro.backup.chunks import Chunk, FileVersion, chunk_file
from repro.backup.service import BackupService, provision_archive, synthetic_dataset
from repro.backup.store import ArchiveStore, ChunkLocation, SnapshotStats

__all__ = [
    "ArchiveStore",
    "BackupService",
    "Chunk",
    "ChunkLocation",
    "FileVersion",
    "SnapshotStats",
    "chunk_file",
    "provision_archive",
    "synthetic_dataset",
]
