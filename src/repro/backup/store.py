"""A Venti-style write-once archive store on UStore spaces.

The paper positions UStore as the raw-capacity substrate for upper
layer services like backup (§I, §IV); Venti [4] is its canonical
archival citation.  :class:`ArchiveStore` implements that layer: an
append-only chunk log across one or more mounted UStore spaces, a
fingerprint index for deduplication, and snapshot manifests.

Chunks are written sequentially (archival workloads are the fabric's
sweet spot: Table II shows ~185 MB/s sequential per disk), and reads of
deduplicated chunks are random I/O against the log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from repro.backup.chunks import Chunk, FileVersion, chunk_file
from repro.cluster.clientlib import MountedSpace
from repro.sim import Event, Simulator

__all__ = ["ArchiveStore", "ChunkLocation", "SnapshotStats"]


@dataclass(frozen=True)
class ChunkLocation:
    space_index: int
    offset: int
    size: int


@dataclass
class SnapshotStats:
    """Outcome of one snapshot."""

    snapshot_id: str
    logical_bytes: int = 0
    unique_bytes: int = 0
    chunks_total: int = 0
    chunks_new: int = 0
    write_seconds: float = 0.0

    @property
    def dedup_ratio(self) -> float:
        """Logical data per byte actually stored (>= 1.0)."""
        return self.logical_bytes / self.unique_bytes if self.unique_bytes else float("inf")


class ArchiveStore:
    """Append-only, deduplicated chunk store over mounted spaces."""

    def __init__(self, sim: Simulator, spaces: List[MountedSpace], space_bytes: int):
        if not spaces:
            raise ValueError("need at least one backing space")
        self.sim = sim
        self.spaces = spaces
        self.space_bytes = space_bytes
        self._index: Dict[str, ChunkLocation] = {}
        self._arena = 0
        self._write_offset = 0
        self.snapshots: Dict[str, List[Tuple[str, List[Chunk]]]] = {}
        self.stats_history: List[SnapshotStats] = []

    # -- space management ------------------------------------------------

    @property
    def stored_bytes(self) -> int:
        return sum(loc.size for loc in self._index.values())

    def _allot(self, size: int) -> ChunkLocation:
        if self._write_offset + size > self.space_bytes:
            self._arena += 1
            self._write_offset = 0
            if self._arena >= len(self.spaces):
                raise RuntimeError("archive store out of space")
        location = ChunkLocation(self._arena, self._write_offset, size)
        self._write_offset += size
        return location

    # -- snapshots ---------------------------------------------------------

    def snapshot(
        self, snapshot_id: str, files: List[FileVersion], chunk_bytes: int = 1024 * 1024
    ) -> Generator[Event, None, SnapshotStats]:
        """Back up ``files``; only chunks never seen before hit disks."""
        if snapshot_id in self.snapshots:
            raise ValueError(f"duplicate snapshot id {snapshot_id!r}")
        stats = SnapshotStats(snapshot_id=snapshot_id)
        manifest: List[Tuple[str, List[Chunk]]] = []
        start = self.sim.now
        for version in files:
            chunks = chunk_file(version, chunk_bytes)
            manifest.append((version.name, chunks))
            for chunk in chunks:
                stats.chunks_total += 1
                stats.logical_bytes += chunk.size
                if chunk.fingerprint in self._index:
                    continue  # deduplicated: no I/O at all
                location = self._allot(chunk.size)
                yield from self.spaces[location.space_index].write(
                    location.offset, location.size
                )
                self._index[chunk.fingerprint] = location
                stats.chunks_new += 1
                stats.unique_bytes += chunk.size
        stats.write_seconds = self.sim.now - start
        self.snapshots[snapshot_id] = manifest
        self.stats_history.append(stats)
        return stats

    def restore(
        self, snapshot_id: str, names: Optional[List[str]] = None
    ) -> Generator[Event, None, Dict[str, int]]:
        """Read every chunk of a snapshot (optionally a subset of files)."""
        manifest = self.snapshots.get(snapshot_id)
        if manifest is None:
            raise KeyError(f"unknown snapshot {snapshot_id!r}")
        wanted = set(names) if names is not None else None
        restored = 0
        chunks_read = 0
        start = self.sim.now
        for name, chunks in manifest:
            if wanted is not None and name not in wanted:
                continue
            for chunk in chunks:
                location = self._index[chunk.fingerprint]
                yield from self.spaces[location.space_index].read(
                    location.offset, location.size
                )
                restored += chunk.size
                chunks_read += 1
        return {
            "bytes_restored": restored,
            "chunks_read": chunks_read,
            "seconds": self.sim.now - start,
        }

    def contains(self, fingerprint: str) -> bool:
        return fingerprint in self._index
