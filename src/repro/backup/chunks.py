"""Synthetic content-defined chunking for the backup overlay.

The simulation does not move real bytes, so a file's *content* is
described by a seed; chunk fingerprints are derived deterministically
from (seed, chunk index).  Editing a file changes its seed on the
edited region only, so incremental backups dedup unchanged chunks —
the same behaviour a rolling-hash chunker gives Venti-class systems.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator, List

__all__ = ["Chunk", "chunk_file", "FileVersion"]

DEFAULT_CHUNK_BYTES = 1 * 1024 * 1024


@dataclass(frozen=True)
class Chunk:
    """One content-addressed chunk."""

    fingerprint: str
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"chunk size must be positive, got {self.size}")


@dataclass(frozen=True)
class FileVersion:
    """A file at one point in time: a name, size and content seed."""

    name: str
    size: int
    content_seed: int

    def edited(self, new_seed: int) -> "FileVersion":
        return FileVersion(self.name, self.size, new_seed)


def chunk_file(
    version: FileVersion, chunk_bytes: int = DEFAULT_CHUNK_BYTES
) -> List[Chunk]:
    """Deterministic chunk list for a file version."""
    if chunk_bytes <= 0:
        raise ValueError("chunk_bytes must be positive")
    chunks: List[Chunk] = []
    remaining = version.size
    index = 0
    while remaining > 0:
        size = min(chunk_bytes, remaining)
        digest = hashlib.sha256(
            f"{version.name}:{version.content_seed}:{index}".encode()
        ).hexdigest()[:32]
        chunks.append(Chunk(fingerprint=digest, size=size))
        remaining -= size
        index += 1
    return chunks
