"""A nightly-backup service over UStore: synthetic datasets + schedule.

Generates a synthetic file population, mutates a fraction of it between
backup rounds, and drives :class:`~repro.backup.store.ArchiveStore`
snapshots — the archival workload of §I ("accessed in large batches on
a predictable schedule").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List

from repro.backup.chunks import FileVersion
from repro.backup.store import ArchiveStore, SnapshotStats
from repro.cluster.deployment import Deployment
from repro.sim import Event
from repro.sim.rng import RngRegistry
from repro.workload.specs import MB

__all__ = ["BackupService", "synthetic_dataset"]


def synthetic_dataset(
    rng: RngRegistry,
    num_files: int = 50,
    mean_file_mb: float = 8.0,
    stream: str = "dataset",
) -> List[FileVersion]:
    """A plausible file-size population (log-ish spread around the mean)."""
    rand = rng.stream(stream)
    files: List[FileVersion] = []
    for index in range(num_files):
        scale = rand.choice((0.25, 0.5, 1.0, 1.0, 2.0, 4.0))
        size = max(1, int(mean_file_mb * scale * MB))
        files.append(
            FileVersion(name=f"file{index:04d}", size=size, content_seed=index)
        )
    return files


class BackupService:
    """Schedules incremental snapshots of a mutating dataset."""

    def __init__(
        self,
        deployment: Deployment,
        store: ArchiveStore,
        rng: RngRegistry,
        change_fraction: float = 0.1,
    ):
        if not 0.0 <= change_fraction <= 1.0:
            raise ValueError(f"change_fraction must be in [0,1], got {change_fraction}")
        self.deployment = deployment
        self.store = store
        self.change_fraction = change_fraction
        self._random = rng.stream("backup-service")
        self._seed_counter = 10_000
        self.dataset: List[FileVersion] = []

    def load_dataset(self, files: List[FileVersion]) -> None:
        self.dataset = list(files)

    def mutate_dataset(self) -> int:
        """Edit a random ``change_fraction`` of files; returns how many."""
        changed = 0
        for index, version in enumerate(self.dataset):
            if self._random.random() < self.change_fraction:
                self._seed_counter += 1
                self.dataset[index] = version.edited(self._seed_counter)
                changed += 1
        return changed

    def run_rounds(
        self, rounds: int, interval_seconds: float = 24 * 3600.0
    ) -> Generator[Event, None, List[SnapshotStats]]:
        """Take ``rounds`` snapshots, mutating the dataset in between."""
        results: List[SnapshotStats] = []
        for round_index in range(rounds):
            stats = yield from self.store.snapshot(
                f"snap-{round_index:03d}", self.dataset
            )
            results.append(stats)
            if round_index + 1 < rounds:
                self.mutate_dataset()
                yield self.deployment.sim.timeout(interval_seconds)
        return results


def provision_archive(
    deployment: Deployment,
    num_spaces: int = 2,
    space_bytes: int = 4096 * MB,
    service: str = "backup",
) -> Generator[Event, None, ArchiveStore]:
    """Allocate and mount UStore spaces for an archive store."""
    client = deployment.new_client(f"{service}-client", service=service)
    spaces = []
    used_disks: List[str] = []
    for _ in range(num_spaces):
        info = yield from client.allocate(space_bytes, exclude_disks=used_disks)
        from repro.cluster.namespace import parse_space_id

        used_disks.append(parse_space_id(info["space_id"])[1])
        space = yield from client.mount(info["space_id"])
        spaces.append(space)
    return ArchiveStore(deployment.sim, spaces, space_bytes)
