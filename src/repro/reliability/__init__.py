"""Reliability studies: availability, fabric-assisted rebuild, scrubbing."""

from repro.reliability.availability import (
    ArchitectureResult,
    AvailabilityStudy,
    StudyParams,
)
from repro.reliability.reconstruction import (
    RebuildDrill,
    RebuildEstimate,
    fabric_assisted_rebuild,
    network_rebuild,
)
from repro.reliability.scrubbing import LatentErrorModel, MediaError, Scrubber

__all__ = [
    "ArchitectureResult",
    "AvailabilityStudy",
    "LatentErrorModel",
    "MediaError",
    "RebuildDrill",
    "RebuildEstimate",
    "Scrubber",
    "StudyParams",
    "fabric_assisted_rebuild",
    "network_rebuild",
]
