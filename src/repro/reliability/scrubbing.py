"""Latent sector errors and scrubbing (§VIII, citing Schroeder et al.).

Long-term disk storage silently develops *latent sector errors* (LSEs):
regions that fail on read but are only discovered when someone reads
them.  Periodic scrubbing — sequentially reading the whole disk —
bounds the window during which an LSE can hide and collide with a disk
failure elsewhere.

This module adds an LSE overlay for :class:`SimulatedDisk` plus a
scrubber process, so availability studies and the backup overlay can
quantify scrub-interval trade-offs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Set, Tuple

from repro.disk.device import IoRequest, SimulatedDisk
from repro.sim import Event, Simulator
from repro.sim.rng import RngRegistry
from repro.workload.specs import MB

__all__ = ["LatentErrorModel", "MediaError", "Scrubber"]

YEAR = 365.0 * 24 * 3600.0


class MediaError(Exception):
    """A read touched a latent sector error."""


@dataclass
class LatentErrorModel:
    """Tracks LSE regions on one disk.

    ``annual_lse_rate`` is the expected number of new LSE regions per
    disk-year (field studies report a wide range; ~1/year for nearline
    disks is a common planning figure).  Each LSE affects one region of
    ``region_bytes``.
    """

    sim: Simulator
    disk: SimulatedDisk
    rng: RngRegistry
    annual_lse_rate: float = 1.0
    region_bytes: int = 8 * MB
    errors: Set[int] = field(default_factory=set)  # region indices
    detected: List[Tuple[float, int]] = field(default_factory=list)
    repaired: List[Tuple[float, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._random = self.rng.stream(f"lse:{self.disk.disk_id}")
        self._regions = max(1, self.disk.spec.capacity_bytes // self.region_bytes)
        self.sim.process(self._developer())

    @property
    def _resource(self) -> str:
        """Race-detector tag: the LSE set is shared by the developer
        process, application reads, and the scrubber."""
        return f"lse:{self.disk.disk_id}"

    def _developer(self) -> Generator[Event, None, None]:
        """Poisson arrival of new latent errors."""
        mean = YEAR / self.annual_lse_rate
        while True:
            gap = -mean * math.log(1.0 - self._random.random())
            yield self.sim.timeout(gap)
            self.sim.touch_resource(self._resource, write=True)
            self.errors.add(self._random.randrange(self._regions))

    # -- read-path hooks ----------------------------------------------------

    def regions_of(self, offset: int, size: int) -> range:
        first = offset // self.region_bytes
        last = (offset + size - 1) // self.region_bytes
        return range(first, last + 1)

    def check_read(self, offset: int, size: int) -> None:
        """Raise :class:`MediaError` if the read touches an LSE."""
        self.sim.touch_resource(self._resource, write=False)
        for region in self.regions_of(offset, size):
            if region in self.errors:
                self.detected.append((self.sim.now, region))
                raise MediaError(
                    f"{self.disk.disk_id}: latent sector error in region {region}"
                )

    def repair(self, region: int) -> None:
        """Rewrite from redundancy: the region becomes clean again."""
        self.sim.touch_resource(self._resource, write=True)
        if region in self.errors:
            self.errors.discard(region)
            self.repaired.append((self.sim.now, region))

    def read(self, offset: int, size: int) -> Generator[Event, None, float]:
        """A guarded read: disk service time + LSE check."""
        service = yield self.disk.submit(
            IoRequest(offset=offset, size=size, is_read=True)
        )
        self.check_read(offset, size)
        return service


class Scrubber:
    """Periodic sequential verification of a disk (one pass per interval).

    On detection, the scrubber invokes a repair callback (the upper
    layer's redundancy) and rewrites the region.  The headline metric is
    the *detection latency*: how long an LSE existed before a scrub (or
    an application read) found it.
    """

    def __init__(
        self,
        sim: Simulator,
        model: LatentErrorModel,
        scrub_interval: float = 14 * 24 * 3600.0,
        chunk_bytes: int = 64 * MB,
        scan_bytes: Optional[int] = None,
    ):
        self.sim = sim
        self.model = model
        self.scrub_interval = scrub_interval
        self.chunk_bytes = chunk_bytes
        # Scanning a whole 3 TB disk is millions of events; studies can
        # bound the scanned extent to the allocated region.
        self.scan_bytes = scan_bytes or model.disk.spec.capacity_bytes
        self.passes_completed = 0
        self.errors_found = 0
        self._process = sim.process(self._loop())

    def _loop(self) -> Generator[Event, None, None]:
        while True:
            yield self.sim.timeout(self.scrub_interval)
            yield from self._scrub_pass()
            self.passes_completed += 1

    def _scrub_pass(self) -> Generator[Event, None, None]:
        offset = 0
        while offset < self.scan_bytes:
            size = min(self.chunk_bytes, self.scan_bytes - offset)
            yield self.model.disk.submit(
                IoRequest(offset=offset, size=size, is_read=True)
            )
            for region in self.model.regions_of(offset, size):
                if region in self.model.errors:
                    self.model.detected.append((self.sim.now, region))
                    self.errors_found += 1
                    # Repair from redundancy (simulated as one rewrite).
                    yield self.model.disk.submit(
                        IoRequest(
                            offset=region * self.model.region_bytes,
                            size=min(self.model.region_bytes, self.scan_bytes),
                            is_read=False,
                        )
                    )
                    self.model.repair(region)
            offset += size
