"""Monte-Carlo availability study: single-attached JBOD vs UStore.

The paper argues (§I, §III-A) that the single point of failure in a
hub-tree or Backblaze-style pod is costly: when the host dies, *all* of
its disks are unreachable until the host is repaired, and software
redundancy must rebuild or the data waits.  UStore's reconfigurable
fabric turns the same event into a seconds-long switch-over.

This module quantifies that argument: it simulates years of host
failures (exponential inter-arrival, MTTF ≈ 3.4 months per §IV-E) and
repairs, and integrates disk-unavailability time under two
architectures:

* ``single_attached`` — disks are pinned to one host; unavailable for
  the whole host repair time;
* ``ustore`` — disks are switched to surviving hosts after the failover
  delay; only if every host of the unit is simultaneously down do the
  disks wait for a repair.

The result is expressed as disk-downtime hours per disk-year and as an
availability fraction ("nines").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.faults.injector import HOST_MTTF
from repro.sim.rng import RngRegistry

__all__ = ["ArchitectureResult", "AvailabilityStudy", "StudyParams"]

HOUR = 3600.0
YEAR = 365.0 * 24 * HOUR


@dataclass(frozen=True)
class StudyParams:
    """Knobs of the availability study."""

    num_hosts: int = 4
    disks_per_host: int = 4
    host_mttf: float = HOST_MTTF
    # Mean time to repair a crashed host (reimage/replace): 2 hours.
    host_mttr: float = 2 * HOUR
    # UStore failover delay per host failure (the paper's 5.8 s).
    failover_seconds: float = 5.8
    horizon_years: float = 100.0
    trials: int = 20


@dataclass(frozen=True)
class ArchitectureResult:
    """Aggregated unavailability for one architecture."""

    name: str
    disk_downtime_hours_per_disk_year: float
    availability: float
    host_failures_per_year: float

    @property
    def nines(self) -> float:
        """-log10 of the unavailability (the classic 'nines' count)."""
        unavailability = 1.0 - self.availability
        if unavailability <= 0:
            return float("inf")
        return -math.log10(unavailability)


class AvailabilityStudy:
    """Runs both architectures over identical failure traces."""

    def __init__(self, params: StudyParams = StudyParams(), seed: int = 1):
        self.params = params
        self._rng = RngRegistry(seed).stream("availability")

    # -- failure trace ------------------------------------------------------

    def _exponential(self, mean: float) -> float:
        return -mean * math.log(1.0 - self._rng.random())

    def _host_trace(self, horizon: float) -> List[Tuple[float, float]]:
        """(failure_time, repair_duration) events for one host."""
        events: List[Tuple[float, float]] = []
        t = self._exponential(self.params.host_mttf)
        while t < horizon:
            repair = self._exponential(self.params.host_mttr)
            events.append((t, repair))
            t += repair + self._exponential(self.params.host_mttf)
        return events

    # -- architectures -------------------------------------------------------

    def _downtime_single_attached(
        self, traces: List[List[Tuple[float, float]]]
    ) -> float:
        """Disk-seconds of unavailability: disks wait for host repair."""
        total = 0.0
        for host_events in traces:
            for _, repair in host_events:
                total += repair * self.params.disks_per_host
        return total

    def _downtime_ustore(self, traces: List[List[Tuple[float, float]]]) -> float:
        """Disks move to survivors after the failover delay.

        While k >= 1 hosts are down simultaneously, their disks are down
        only for the failover window — unless *all* hosts are down, in
        which case everything waits for the first repair.
        """
        params = self.params
        # Build a merged timeline of (time, host, up/down) transitions.
        transitions: List[Tuple[float, int, int]] = []
        for host, events in enumerate(traces):
            for start, repair in events:
                transitions.append((start, host, -1))
                transitions.append((start + repair, host, +1))
        transitions.sort()
        up = params.num_hosts
        total = 0.0
        all_down_since: Optional[float] = None
        for time, _host, delta in transitions:
            if delta < 0:
                up -= 1
                # The failing host's disks pay the failover window if
                # anyone survives to adopt them.
                if up >= 1:
                    total += params.failover_seconds * params.disks_per_host
                else:
                    all_down_since = time
            else:
                if up == 0 and all_down_since is not None:
                    # Total blackout ends: every disk waited it out.
                    blackout = time - all_down_since
                    total += blackout * params.num_hosts * params.disks_per_host
                    all_down_since = None
                up += 1
        return total

    # -- public API --------------------------------------------------------------

    def run(self) -> Dict[str, ArchitectureResult]:
        params = self.params
        horizon = params.horizon_years * YEAR
        downtime = {"single_attached": 0.0, "ustore": 0.0}
        failures = 0
        for _ in range(params.trials):
            traces = [self._host_trace(horizon) for _ in range(params.num_hosts)]
            failures += sum(len(t) for t in traces)
            downtime["single_attached"] += self._downtime_single_attached(traces)
            downtime["ustore"] += self._downtime_ustore(traces)
        disk_years = (
            params.trials * params.num_hosts * params.disks_per_host * params.horizon_years
        )
        total_disk_seconds = disk_years * YEAR
        results = {}
        for name, seconds in downtime.items():
            results[name] = ArchitectureResult(
                name=name,
                disk_downtime_hours_per_disk_year=seconds / HOUR / disk_years,
                availability=1.0 - seconds / total_disk_seconds,
                host_failures_per_year=failures
                / (params.trials * params.num_hosts * params.horizon_years),
            )
        return results
