"""Fabric-assisted data reconstruction (§IV-E's stated future work).

When a disk dies, the upper layer rebuilds its data from replicas.
Normally the replica reads stream across the data-center network from
other hosts, bottlenecked by the 1 GbE links and taxing the fabric of
unrelated services.  The paper observes that UStore's reconfigurable
interconnect enables an alternative: *switch the replica source disks
onto the rebuilding host* so the copy happens locally at disk speed,
leaving the network untouched.

Two estimators are provided:

* :func:`network_rebuild` / :func:`fabric_assisted_rebuild` —
  closed-form times from the calibrated models;
* :class:`RebuildDrill` — an event-driven drill on a live deployment:
  it actually migrates the source disk with a Master command and runs
  the copy as simulated I/O, so the switching overhead and bandwidth
  sharing are the real code paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator

from repro.cluster.deployment import Deployment
from repro.disk.model import DiskModel
from repro.disk.specs import ConnectionType
from repro.fabric.bandwidth import DEFAULT_PER_DIRECTION_CAPACITY
from repro.net.rpc import RpcClient
from repro.sim import Event
from repro.units import MB as MB_DECIMAL
from repro.workload.specs import MB, AccessPattern, WorkloadSpec

__all__ = [
    "RebuildDrill",
    "RebuildEstimate",
    "fabric_assisted_rebuild",
    "network_rebuild",
]

GBE_PAYLOAD = 125e6  # bytes/s on the DC network path


@dataclass(frozen=True)
class RebuildEstimate:
    strategy: str
    rebuild_bytes: int
    seconds: float
    network_bytes: int

    @property
    def rate_mb_s(self) -> float:
        return self.rebuild_bytes / self.seconds / MB_DECIMAL if self.seconds else 0.0


def _disk_seq_rate(size: int = 4 * MB) -> float:
    model = DiskModel(connection=ConnectionType.HUB_AND_SWITCH)
    return model.demand_bytes_per_second(
        WorkloadSpec(size, AccessPattern.SEQUENTIAL, 1.0)
    )


def network_rebuild(rebuild_bytes: int) -> RebuildEstimate:
    """Baseline: stream replicas from remote hosts over GbE."""
    disk = _disk_seq_rate()
    # Source disk read and destination write both fit their ports; the
    # 1 GbE host link is the bottleneck.
    rate = min(disk, GBE_PAYLOAD, DEFAULT_PER_DIRECTION_CAPACITY)
    return RebuildEstimate(
        strategy="network",
        rebuild_bytes=rebuild_bytes,
        seconds=rebuild_bytes / rate,
        network_bytes=rebuild_bytes,
    )


def fabric_assisted_rebuild(
    rebuild_bytes: int, switch_seconds: float = 5.0
) -> RebuildEstimate:
    """Switch the source disk to the rebuilding host, copy locally.

    Read (disk→host) and write (host→disk) travel opposite directions
    of the same duplex root port, so the copy runs at full disk speed.
    """
    disk = _disk_seq_rate()
    rate = min(disk, DEFAULT_PER_DIRECTION_CAPACITY)
    return RebuildEstimate(
        strategy="fabric-assisted",
        rebuild_bytes=rebuild_bytes,
        seconds=switch_seconds + rebuild_bytes / rate,
        network_bytes=0,
    )


class RebuildDrill:
    """Event-driven rebuild on a live deployment.

    Copies ``rebuild_bytes`` from a *source* disk to a *destination*
    disk.  In network mode both disks stay where they are and every
    chunk crosses the simulated network twice (read response + write
    request).  In fabric mode the Master first migrates the source disk
    onto the destination disk's host, then the copy is host-local.
    """

    def __init__(self, deployment: Deployment, chunk_bytes: int = 4 * MB):
        self.deployment = deployment
        self.chunk_bytes = chunk_bytes
        self.rpc = RpcClient(
            deployment.sim, deployment.network, "rebuild-drill"
        )

    def _copy(
        self, source: str, destination: str, rebuild_bytes: int
    ) -> Generator[Event, None, None]:
        sim = self.deployment.sim
        disks = self.deployment.disks
        offset = 0
        from repro.disk.device import IoRequest

        while offset < rebuild_bytes:
            size = min(self.chunk_bytes, rebuild_bytes - offset)
            yield disks[source].submit(
                IoRequest(offset=offset, size=size, is_read=True)
            )
            src_host = self.deployment.fabric.attached_host(source)
            dst_host = self.deployment.fabric.attached_host(destination)
            if src_host != dst_host:
                # Cross-host hop: serialize the chunk over GbE.
                yield sim.timeout(size / GBE_PAYLOAD)
                self._network_bytes += size
            yield disks[destination].submit(
                IoRequest(offset=offset, size=size, is_read=False)
            )
            offset += size

    def run(
        self,
        source: str,
        destination: str,
        rebuild_bytes: int,
        fabric_assisted: bool,
    ) -> Generator[Event, None, Dict]:
        sim = self.deployment.sim
        self._network_bytes = 0
        start = sim.now
        switch_seconds = 0.0
        if fabric_assisted:
            target_host = self.deployment.fabric.attached_host(destination)
            if self.deployment.fabric.attached_host(source) != target_host:
                master = self.deployment.active_master().address
                yield from self.rpc.call(
                    master, "master.migrate_disk", source, target_host, timeout=60.0
                )
            switch_seconds = sim.now - start
        yield from self._copy(source, destination, rebuild_bytes)
        return {
            "strategy": "fabric-assisted" if fabric_assisted else "network",
            "seconds": sim.now - start,
            "switch_seconds": switch_seconds,
            "network_bytes": self._network_bytes,
            "rebuild_bytes": rebuild_bytes,
        }
