"""Per-tenant / per-request energy attribution with a conservation identity.

The :class:`EnergyLedger` splits every sampled watt-interval of a
deployment into attributable components — per-disk active / spin-up /
idle / standby energy plus a fixed ``overhead`` account (fabric, fans,
host adapters, PSU loss) — and charges disk-active and spin-up energy
to the tenant and request that caused it, using the ownership stamps
the disk layer records from the existing ``TraceContext`` threading
(gateway admission → batch scheduler → ClientLib → iSCSI → disk).

Accounts (DESIGN §15):

* ``tenant:<name>`` — active/spin-up watts on a disk whose current
  busy interval is owned by a live trace of that tenant.
* ``system`` — owned disk work with no tenant (settle-phase I/O,
  traces minted without a tenant, stale scopes after crash/remount).
* ``idle`` — idle and spun-down (standby electronics) disk watts; no
  request caused them, so no tenant is blamed.
* ``overhead`` — everything that is not a disk: fabric switches/hubs,
  fans, USB host adapters, and PSU conversion loss.

The headline invariant mirrors the latency-attribution identity: the
per-account joules **sum to the PowerMeter wall-energy integral** over
any window.  It holds by construction — each sample's account watts
are derived from the very same wall figure the meter records, with
``overhead`` defined as the exact residual — so the only slack is
floating-point summation order, bounded by the documented relative
tolerance of :class:`ConservationAuditor` (default ``1e-9``).

The ledger is sample-driven and passive: it allocates nothing on the
I/O path, and when unarmed (no ledger passed to ``PowerMeter``) the
only cost on the request path is the ownership stamp — two attribute
writes per I/O — gated with the tracer under the ≤1.1x overhead check
in the gateway smoke.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    TYPE_CHECKING,
)

from repro.units import Joules, SimSeconds, Watts

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (power -> obs)
    from repro.obs.trace import TraceScope

__all__ = [
    "ACCOUNT_IDLE",
    "ACCOUNT_OVERHEAD",
    "ACCOUNT_SYSTEM",
    "ConservationAuditor",
    "DiskEnergyBook",
    "EnergyConservationError",
    "EnergyLedger",
    "EnergyRow",
    "SpinUpBlame",
    "tenant_account",
]

#: Idle + standby disk watts: no request caused them.
ACCOUNT_IDLE = "idle"
#: Fabric + fans + host adapters + PSU loss: the non-disk residual.
ACCOUNT_OVERHEAD = "overhead"
#: Owned disk work with no tenant attached (settle I/O, stale scopes).
ACCOUNT_SYSTEM = "system"
#: Prefix for tenant accounts, e.g. ``tenant:interactive``.
TENANT_PREFIX = "tenant:"

#: Default tier name for disks never classified via :meth:`EnergyLedger.set_tier`.
DEFAULT_TIER = "default"


def tenant_account(tenant: Optional[str]) -> str:
    """Account name for a tenant (``system`` when no tenant is known)."""
    return TENANT_PREFIX + tenant if tenant else ACCOUNT_SYSTEM


class EnergyConservationError(AssertionError):
    """The attributed joules failed to sum to the wall-energy integral."""


@dataclass(frozen=True)
class EnergyRow:
    """One attributed component of one power sample (wall watts)."""

    account: str
    disk_id: str  # "" for non-disk rows (overhead)
    bucket: str  # active | spinup | idle | standby | overhead
    trace_id: int  # -1 when no owning request
    watts: Watts


@dataclass(frozen=True)
class SpinUpBlame:
    """One spin-up, stamped with the exact sim time and owning trace."""

    time: SimSeconds
    disk_id: str
    account: str
    trace_id: int  # -1 when no owning request

    def as_dict(self) -> Dict[str, Any]:
        return {
            "time": self.time,
            "disk_id": self.disk_id,
            "account": self.account,
            "trace_id": self.trace_id,
        }


@dataclass
class DiskEnergyBook:
    """Per-disk joules split by spin-state bucket."""

    active: float = 0.0
    spinup: float = 0.0
    idle: float = 0.0
    standby: float = 0.0

    @property
    def total(self) -> float:
        return self.active + self.spinup + self.idle + self.standby

    def add(self, bucket: str, joules: float) -> None:
        if bucket == "active":
            self.active += joules
        elif bucket == "spinup":
            self.spinup += joules
        elif bucket == "idle":
            self.idle += joules
        elif bucket == "standby":
            self.standby += joules
        else:
            raise ValueError(f"unknown disk energy bucket {bucket!r}")

    def as_dict(self) -> Dict[str, float]:
        return {
            "active": self.active,
            "spinup": self.spinup,
            "idle": self.idle,
            "standby": self.standby,
            "total": self.total,
        }


class EnergyLedger:
    """Double-entry joule books over a sampled power series.

    Fed by ``PowerMeter`` (pass ``ledger=`` at construction): each
    sample closes the previous watt-interval ``[t_prev, t_now)`` at the
    *previously* recorded per-account watts — the same step-function
    semantics the meter's ``TimeSeries`` integrates — then records the
    fresh breakdown.  :meth:`finalize` rolls the books forward to an
    arbitrary end time exactly like ``PowerMeter.energy_joules`` does.
    """

    def __init__(self) -> None:
        #: cumulative joules per account name.
        self.accounts: Dict[str, float] = {}
        #: cumulative joules per disk, split by spin-state bucket.
        self.disks: Dict[str, DiskEnergyBook] = {}
        #: cumulative joules per owning trace id (spin-up + active).
        self.requests: Dict[int, float] = {}
        #: spin-up blame events, in exact sim-time order.
        self.blames: List[SpinUpBlame] = []
        #: disk id -> tier name (see :meth:`set_tier`).
        self.tiers: Dict[str, str] = {}
        #: (time, cumulative per-account joules) after every sample.
        self.checkpoints: List[Tuple[float, Dict[str, float]]] = []
        self.samples = 0
        self._checkpoint_times: List[float] = []
        self._last_time: Optional[float] = None
        self._last_rows: Tuple[EnergyRow, ...] = ()

    def _checkpoint(self, now: float) -> None:
        self.checkpoints.append((now, dict(self.accounts)))
        self._checkpoint_times.append(now)

    # -- classification ---------------------------------------------------

    def set_tier(self, disk_id: str, tier: str) -> None:
        """Classify a disk into a named tier (``hot`` / ``cold`` / ...)."""
        self.tiers[disk_id] = tier

    def tier_of(self, disk_id: str) -> str:
        return self.tiers.get(disk_id, DEFAULT_TIER)

    # -- feed (called by PowerMeter / disk listeners) ----------------------

    def on_spin_up(self, disk_id: str, now: float, blame: "TraceScope") -> None:
        """Disk spin-up listener: record exact-time blame for the surge."""
        owner = blame.owner()
        account = tenant_account(owner[0]) if owner is not None else ACCOUNT_SYSTEM
        trace_id = owner[1] if owner is not None else -1
        self.blames.append(
            SpinUpBlame(SimSeconds(now), disk_id, account, trace_id)
        )

    def record_sample(self, now: float, rows: Sequence[EnergyRow]) -> None:
        """Record the attributed breakdown of one power sample at ``now``.

        ``rows`` must sum (in order) to the wall watts the meter stored
        for the same instant — the conservation identity inherits its
        exactness from that per-sample equality.
        """
        if self._last_time is not None and now > self._last_time:
            self._apply(self._last_rows, now - self._last_time)
        self._last_time = now
        self._last_rows = tuple(rows)
        self.samples += 1
        self._checkpoint(now)

    def finalize(self, end: float) -> None:
        """Roll the books forward to ``end`` at the last sampled watts.

        Mirrors the meter's integral, which extends the final sample's
        value to the end of the window.  Idempotent for a fixed ``end``;
        later samples simply continue from there.
        """
        if self._last_time is None or end <= self._last_time:
            return
        self._apply(self._last_rows, end - self._last_time)
        self._last_time = end
        self._checkpoint(end)

    def _apply(self, rows: Sequence[EnergyRow], span: float) -> None:
        for row in rows:
            joules = row.watts * span
            self.accounts[row.account] = (
                self.accounts.get(row.account, 0.0) + joules
            )
            if row.disk_id:
                book = self.disks.get(row.disk_id)
                if book is None:
                    book = self.disks.setdefault(row.disk_id, DiskEnergyBook())
                book.add(row.bucket, joules)
            if row.trace_id >= 0:
                self.requests[row.trace_id] = (
                    self.requests.get(row.trace_id, 0.0) + joules
                )

    # -- queries -----------------------------------------------------------

    def attributed_joules(self) -> Joules:
        """Total joules across every account (summed in sorted-key order)."""
        return Joules(
            sum(self.accounts[name] for name in sorted(self.accounts))
        )

    def account_joules(self) -> Dict[str, float]:
        """Per-account cumulative joules, sorted by account name."""
        return {name: self.accounts[name] for name in sorted(self.accounts)}

    def tier_joules(self) -> Dict[str, Dict[str, float]]:
        """Per-tier joules aggregated from the per-disk books."""
        tiers: Dict[str, DiskEnergyBook] = {}
        for disk_id in sorted(self.disks):
            agg = tiers.setdefault(self.tier_of(disk_id), DiskEnergyBook())
            book = self.disks[disk_id]
            agg.active += book.active
            agg.spinup += book.spinup
            agg.idle += book.idle
            agg.standby += book.standby
        return {name: tiers[name].as_dict() for name in sorted(tiers)}

    def _cumulative_at(self, t: float) -> Dict[str, float]:
        """Cumulative per-account joules at time ``t``.

        Linear interpolation between checkpoints is *exact*: watts are
        stepwise-constant per sample interval, so cumulative energy is
        piecewise-linear in time.  Beyond the last checkpoint the last
        recorded breakdown extrapolates, matching :meth:`finalize`.
        """
        points = self.checkpoints
        if not points or t <= points[0][0]:
            return {}
        index = bisect_right(self._checkpoint_times, t)
        if index >= len(points):
            totals = dict(points[-1][1])
            span = t - points[-1][0]
            for row in self._last_rows:
                totals[row.account] = totals.get(row.account, 0.0) + row.watts * span
            return totals
        t0, before = points[index - 1]
        t1, after = points[index]
        if t1 <= t0:
            return dict(after)
        frac = (t - t0) / (t1 - t0)
        names = set(before) | set(after)
        return {
            name: before.get(name, 0.0)
            + frac * (after.get(name, 0.0) - before.get(name, 0.0))
            for name in names
        }

    def window(self, t0: float, t1: float) -> Dict[str, float]:
        """Exact per-account joules spent in the window ``[t0, t1]``."""
        if t1 < t0:
            raise ValueError(f"bad window [{t0}, {t1}]")
        start = self._cumulative_at(t0)
        end = self._cumulative_at(t1)
        names = sorted(set(start) | set(end))
        return {n: end.get(n, 0.0) - start.get(n, 0.0) for n in names}

    def windowed_series(self, step: SimSeconds) -> List[Dict[str, Any]]:
        """Per-account joules in consecutive ``step``-wide windows."""
        if step <= 0:
            raise ValueError("step must be positive")
        if not self.checkpoints:
            return []
        start = self.checkpoints[0][0]
        end = self.checkpoints[-1][0]
        out: List[Dict[str, Any]] = []
        t = start
        while t < end:
            upper = min(t + step, end)
            out.append(
                {"t0": t, "t1": upper, "accounts": self.window(t, upper)}
            )
            t = upper
        return out

    # -- export ------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe, key-sorted snapshot of every book."""
        return {
            "samples": self.samples,
            "accounts": self.account_joules(),
            "attributed_joules": self.attributed_joules(),
            "tiers": self.tier_joules(),
            "disks": {
                disk_id: self.disks[disk_id].as_dict()
                for disk_id in sorted(self.disks)
            },
            "requests": {
                str(trace_id): self.requests[trace_id]
                for trace_id in sorted(self.requests)
            },
            "spin_up_blames": [blame.as_dict() for blame in self.blames],
        }

    def to_json(self) -> str:
        """Canonical JSON: byte-identical across same-seed replays."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))


class ConservationAuditor:
    """Asserts the energy conservation identity over any window.

    ``attributed == wall`` up to floating-point summation order: the
    ledger derives each sample's rows from the very watts figure the
    meter integrates, with ``overhead`` the exact residual, so the only
    slack is reassociation error — bounded by ``rel_tolerance`` scaled
    by the wall energy (documented default ``1e-9``, i.e. nanojoules
    per joule).
    """

    def __init__(
        self,
        meter: "MeterLike",
        ledger: EnergyLedger,
        rel_tolerance: float = 1e-9,
    ) -> None:
        self.meter = meter
        self.ledger = ledger
        self.rel_tolerance = rel_tolerance

    def audit(self, end: float) -> Dict[str, Any]:
        """Roll the ledger to ``end`` and compare against the meter."""
        self.ledger.finalize(end)
        wall = float(self.meter.energy_joules(SimSeconds(end)))
        attributed = float(self.ledger.attributed_joules())
        residual = attributed - wall
        bound = self.rel_tolerance * max(1.0, abs(wall))
        return {
            "wall_joules": wall,
            "attributed_joules": attributed,
            "residual": residual,
            "tolerance": bound,
            "conserved": abs(residual) <= bound,
        }

    def assert_conserved(self, end: float) -> Dict[str, Any]:
        """Audit and raise :class:`EnergyConservationError` on failure."""
        report = self.audit(end)
        if not report["conserved"]:
            raise EnergyConservationError(
                "energy attribution identity violated: "
                f"attributed {report['attributed_joules']!r} J vs wall "
                f"{report['wall_joules']!r} J "
                f"(residual {report['residual']!r} > {report['tolerance']!r})"
            )
        return report


class MeterLike(Protocol):
    """Structural stand-in for ``PowerMeter`` (avoids an import cycle)."""

    def energy_joules(self, end_time: Optional[SimSeconds] = None) -> Joules:
        """Wall-energy integral of the sampled series up to ``end_time``."""
        ...
