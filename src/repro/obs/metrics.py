"""Sim-time metrics: counters, gauges and fixed-bucket histograms.

Every instrument reads timestamps from the simulator clock the registry
is bound to — never the wall clock — so two same-seed replays produce
byte-identical metric dumps (the ``DET002`` contract extends to the
observability layer).  Percentiles come from fixed buckets rather than
reservoirs: a reservoir needs a random source, which would either
perturb the experiment's RNG streams or require its own, and either way
the dump would stop being a pure function of the simulated execution.

The disabled path is :data:`NULL_REGISTRY`, a shared
:class:`NullRegistry` whose instruments are no-op singletons.
Components fetch their instruments once at construction time and call
``inc``/``observe`` unconditionally on the hot path; with the null
registry those calls are empty method bodies, so a simulation without
metrics pays one no-op call per instrumented operation and nothing
else.
"""

from __future__ import annotations

from bisect import bisect_left
from types import TracebackType
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Type

__all__ = [
    "Counter",
    "DEFAULT_DEPTH_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "SpanRecord",
]

#: Queue-depth style buckets (small integer counts).
DEFAULT_DEPTH_BUCKETS: Tuple[float, ...] = (
    0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0, 64.0,
)

#: Latency-style buckets in seconds (sub-ms to minutes).
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0,
)

_Clock = Callable[[], float]


def _zero_clock() -> float:
    return 0.0


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} can only increase; got {amount}")
        self.value += amount

    def as_dict(self) -> Dict[str, Any]:
        return {"value": self.value}


class Gauge:
    """A point-in-time value, stamped with the sim time of the last set."""

    __slots__ = ("name", "value", "updated_at", "_registry")

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self.value = 0.0
        self.updated_at = 0.0
        self._registry = registry

    def set(self, value: float) -> None:
        self.value = value
        self.updated_at = self._registry.now()

    def add(self, delta: float) -> None:
        self.set(self.value + delta)

    def as_dict(self) -> Dict[str, Any]:
        return {"value": self.value, "updated_at": self.updated_at}


class Histogram:
    """Fixed-bucket histogram with estimated percentiles.

    ``bounds`` are inclusive upper bucket edges; one overflow bucket
    catches everything beyond the last edge.  Percentile queries report
    the upper edge of the bucket holding the requested rank (clamped to
    the observed maximum), which is deterministic and needs no sample
    storage.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "observed_min", "observed_max")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name!r} needs ascending bucket bounds")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.observed_min = 0.0
        self.observed_max = 0.0

    def observe(self, value: float) -> None:
        if self.count == 0:
            self.observed_min = value
            self.observed_max = value
        else:
            if value < self.observed_min:
                self.observed_min = value
            if value > self.observed_max:
                self.observed_max = value
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def overflow(self) -> int:
        """Samples beyond the last bucket edge (the hidden tail)."""
        return self.counts[-1]

    def percentile(self, q: float) -> float:
        """Upper bucket edge at rank ``q`` (0..100), clamped to the max."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile q must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        rank = (q / 100.0) * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if index >= len(self.bounds):
                    return self.observed_max
                return min(self.bounds[index], self.observed_max)
        return self.observed_max

    def as_dict(self) -> Dict[str, Any]:
        """Export with the exact (non-bucketed) ``sum``/``min``/``max``
        and the overflow-bucket count alongside the bucket estimates, so
        bucket-derived percentiles can always be sanity-checked against
        the true extremes (``p99 <= max``) and a tail hiding beyond the
        last edge is visible rather than silently folded into it."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "overflow": self.overflow,
            "sum": self.total,
            "min": self.observed_min,
            "max": self.observed_max,
            "mean": self.mean(),
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
        }


class SpanRecord:
    """One completed (or still-open) trace span in simulated time."""

    __slots__ = ("name", "start", "end", "depth", "index", "parent_index")

    def __init__(
        self,
        name: str,
        start: float,
        depth: int,
        index: int,
        parent_index: Optional[int],
    ) -> None:
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.depth = depth
        self.index = index
        self.parent_index = parent_index

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0


class _SpanHandle:
    """Context manager returned by :meth:`MetricsRegistry.span`."""

    __slots__ = ("_registry", "_name", "_record")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._record: Optional[SpanRecord] = None

    def __enter__(self) -> SpanRecord:
        self._record = self._registry._open_span(self._name)
        return self._record

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        if self._record is not None:
            self._registry._close_span(self._record)


class MetricsRegistry:
    """Get-or-create registry of named instruments plus trace spans.

    Bind it to a simulator clock with :meth:`bind_clock` (done
    automatically by ``Simulator(metrics=...)``); an unbound registry
    stamps everything at t=0 but still counts correctly, so one
    registry can be carried across several sequential simulators to
    aggregate an experiment's whole run.
    """

    #: Dump schema version, bumped on incompatible layout changes.
    SCHEMA_VERSION = 1

    def __init__(self, clock: Optional[_Clock] = None) -> None:
        self._clock: _Clock = clock if clock is not None else _zero_clock
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self.spans: List[SpanRecord] = []
        self._span_stack: List[SpanRecord] = []

    @property
    def enabled(self) -> bool:
        return True

    def now(self) -> float:
        return self._clock()

    def bind_clock(self, clock: _Clock) -> None:
        """Point the registry at a (new) simulator's clock."""
        self._clock = clock

    # -- instruments -----------------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = Counter(name)
            self._counters[name] = instrument
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = Gauge(name, self)
            self._gauges[name] = instrument
        return instrument

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = Histogram(name, bounds)
            self._histograms[name] = instrument
        return instrument

    # -- spans -----------------------------------------------------------

    def span(self, name: str) -> _SpanHandle:
        """Context manager recording a sim-time span; nests via a stack."""
        return _SpanHandle(self, name)

    def _open_span(self, name: str) -> SpanRecord:
        parent = self._span_stack[-1] if self._span_stack else None
        record = SpanRecord(
            name=name,
            start=self._clock(),
            depth=len(self._span_stack),
            index=len(self.spans),
            parent_index=parent.index if parent is not None else None,
        )
        self.spans.append(record)
        self._span_stack.append(record)
        return record

    def _close_span(self, record: SpanRecord) -> None:
        record.end = self._clock()
        if self._span_stack and self._span_stack[-1] is record:
            self._span_stack.pop()
        elif record in self._span_stack:
            self._span_stack.remove(record)

    # -- introspection ---------------------------------------------------

    def counters(self) -> Dict[str, Counter]:
        return dict(self._counters)

    def gauges(self) -> Dict[str, Gauge]:
        return dict(self._gauges)

    def histograms(self) -> Dict[str, Histogram]:
        return dict(self._histograms)

    def span_summary(self) -> Dict[str, Dict[str, float]]:
        """Spans aggregated by name: count / total / max duration."""
        summary: Dict[str, Dict[str, float]] = {}
        for record in self.spans:
            if record.end is None:
                continue
            entry = summary.setdefault(
                record.name, {"count": 0.0, "total_seconds": 0.0, "max_seconds": 0.0}
            )
            entry["count"] += 1.0
            entry["total_seconds"] += record.duration
            entry["max_seconds"] = max(entry["max_seconds"], record.duration)
        return summary

    def dump(self) -> Dict[str, Any]:
        """Deterministic, JSON-safe snapshot of every instrument."""
        return {
            "version": self.SCHEMA_VERSION,
            "counters": {
                name: self._counters[name].value for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].as_dict() for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].as_dict()
                for name in sorted(self._histograms)
            },
            "spans": {
                name: stats for name, stats in sorted(self.span_summary().items())
            },
        }

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self.spans.clear()
        self._span_stack.clear()


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class _NullSpanHandle(_SpanHandle):
    __slots__ = ()

    def __enter__(self) -> SpanRecord:
        return _NULL_SPAN

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """The disabled registry: shared no-op instruments, empty dumps.

    ``NULL_REGISTRY`` is process-wide shared state, which is safe only
    because every method is a no-op — nothing observed through it can
    leak between simulators or runs.
    """

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null", self)
        self._null_histogram = _NullHistogram("null", (1.0,))
        self._null_span = _NullSpanHandle(self, "null")

    @property
    def enabled(self) -> bool:
        return False

    def bind_clock(self, clock: _Clock) -> None:
        pass

    def counter(self, name: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        return self._null_gauge

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        return self._null_histogram

    def span(self, name: str) -> _SpanHandle:
        return self._null_span


_NULL_SPAN = SpanRecord("null", 0.0, 0, -1, None)

#: Shared disabled registry; components default to this when a
#: simulator is built without metrics.
NULL_REGISTRY = NullRegistry()
