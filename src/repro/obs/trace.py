"""Causal per-request tracing with critical-path latency attribution.

A :class:`TraceContext` is carried explicitly on a request (no ambient
globals, so the determinism lint and the race detector stay clean) and
accumulates two kinds of data as the request flows through the system:

* **phase segments** — contiguous ``[start, end]`` intervals labelled
  with a component name (``queue_wait``, ``power_wait``, ``spinup``,
  ``transfer``, …).  Segments are stamped at *phase boundaries*: each
  call to :meth:`TraceContext.phase` attributes the interval since the
  previous boundary to the named component and advances the boundary.
  Because the boundaries telescope, the segment durations (plus a
  final ``other`` remainder closed by :meth:`TraceContext.finish`)
  always sum to the measured end-to-end latency *exactly* — the
  attribution identity asserted by :class:`CriticalPathAnalyzer`.
* **typed events** — instantaneous annotations (session errors,
  remounts, controller attempts) with sim-time stamps.

Cross-host propagation uses :class:`TraceScope`, a cheap epoch-stamped
handle passed through the iSCSI RPC layer (the simulated RPC passes
objects by reference in-process).  When the client abandons an attempt
(timeout → remount), it calls :meth:`TraceContext.invalidate_scopes`;
stale server-side processes still holding the old scope then stamp
nothing, so a doomed attempt's residue cannot pollute the attribution
of the retry.  All timestamps come from the simulator clock bound via
:meth:`RequestTracer.bind_clock`, never the wall clock.

The disabled path mirrors :data:`~repro.obs.metrics.NULL_REGISTRY`:
components fetch ``sim.tracer`` once and call it unconditionally; with
:data:`NULL_TRACER` every call is an empty method body on shared
singletons (:data:`NULL_TRACE`, :data:`NULL_SCOPE`), so an untraced
simulation pays one no-op call per instrumented step and nothing else.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "COMPONENTS",
    "CriticalPathAnalyzer",
    "InstantRecord",
    "NULL_SCOPE",
    "NULL_TRACE",
    "NULL_TRACER",
    "NullTraceContext",
    "NullTraceScope",
    "NullTracer",
    "PhaseSegment",
    "RequestTracer",
    "TraceContext",
    "TraceEvent",
    "TraceScope",
]

#: The component taxonomy of the request path, in pipeline order.
#: ``other`` is the closing remainder — nonzero only when time passed
#: between the last explicit phase boundary and completion.
COMPONENTS: Tuple[str, ...] = (
    "queue_wait",          # admission -> power budget becomes the binding constraint
    "power_wait",          # blocked on the PowerAccountant's wattage budget
    "batch_wait",          # serialized behind earlier requests of the same batch
    "network",             # RPC request/response travel + endpoint dispatch
    "disk_queue",          # waiting in the disk's command queue
    "spinup",              # mechanical spin-up of a spun-down disk
    "seek_rotation",       # positioning (seek + rotational latency)
    "bandwidth_throttle",  # protocol overhead, fabric hops, chunking, turnaround
    "transfer",            # media transfer at the platter rate
    "failover",            # session recovery: remount + doomed-attempt residue
    "pack_wait",           # object buffered in an open shard awaiting flush
    "flush",               # shard flush in flight (buffer -> durable media)
    "other",               # closing remainder (unattributed tail)
)

_Clock = Callable[[], float]


def _zero_clock() -> float:
    return 0.0


class TraceEvent:
    """One instantaneous, typed annotation on a trace."""

    __slots__ = ("name", "time", "attrs")

    def __init__(self, name: str, time: float, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.time = time
        self.attrs = attrs

    def as_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "time": self.time, "attrs": dict(self.attrs)}


class PhaseSegment:
    """One contiguous interval of a trace attributed to a component."""

    __slots__ = ("component", "start", "end")

    def __init__(self, component: str, start: float, end: float) -> None:
        self.component = component
        self.start = start
        self.end = end

    @property
    def duration(self) -> float:
        return self.end - self.start

    def as_dict(self) -> Dict[str, Any]:
        return {"component": self.component, "start": self.start, "end": self.end}


class InstantRecord:
    """A tracer-level instant event not tied to one request (faults,
    SLO alerts, control-plane actions)."""

    __slots__ = ("name", "time", "attrs")

    def __init__(self, name: str, time: float, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.time = time
        self.attrs = attrs

    def as_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "time": self.time, "attrs": dict(self.attrs)}


class TraceContext:
    """The per-request trace: phase boundaries, events, and identity."""

    __slots__ = (
        "tracer",
        "trace_id",
        "name",
        "kind",
        "tenant",
        "attrs",
        "start",
        "end",
        "status",
        "segments",
        "events",
        "_boundary",
        "_epoch",
        "_finished",
    )

    def __init__(
        self,
        tracer: "RequestTracer",
        trace_id: int,
        name: str,
        kind: str,
        tenant: Optional[str],
        attrs: Dict[str, Any],
        start: float,
    ) -> None:
        self.tracer = tracer
        self.trace_id = trace_id
        self.name = name
        self.kind = kind
        self.tenant = tenant
        self.attrs = attrs
        self.start = start
        self.end: Optional[float] = None
        self.status: Optional[str] = None
        self.segments: List[PhaseSegment] = []
        self.events: List[TraceEvent] = []
        self._boundary = start
        self._epoch = 0
        self._finished = False

    @property
    def enabled(self) -> bool:
        return True

    # -- phase boundaries -------------------------------------------------

    def phase(self, component: str) -> None:
        """Attribute the time since the last boundary to ``component``."""
        self.phase_at(component, self.tracer.now())

    def phase_at(self, component: str, boundary: float) -> None:
        """Close a phase at an explicit (possibly retroactive) boundary.

        Used by the disk layer to decompose one mechanical service
        interval into seek/throttle/transfer after the fact, without
        scheduling extra simulation events.  Boundaries at or before
        the current one produce no segment (zero-length phases are
        dropped; the boundary never moves backwards, so the telescoping
        sum identity is preserved structurally).
        """
        if self._finished or boundary <= self._boundary:
            return
        self.segments.append(PhaseSegment(component, self._boundary, boundary))
        self._boundary = boundary

    # -- events & annotations --------------------------------------------

    def event(self, name: str, **attrs: Any) -> None:
        """Record an instantaneous typed event on this trace."""
        if self._finished:
            return
        self.events.append(TraceEvent(name, self.tracer.now(), attrs))

    def annotate(self, **attrs: Any) -> None:
        """Attach (or overwrite) key/value attributes on the trace."""
        self.attrs.update(attrs)

    # -- cross-host scopes ------------------------------------------------

    def scope(self) -> "TraceScope":
        """A handle for the current attempt, valid until invalidated."""
        return TraceScope(self, self._epoch)

    def invalidate_scopes(self) -> None:
        """Disown every outstanding scope (the attempt was abandoned)."""
        self._epoch += 1

    # -- completion -------------------------------------------------------

    def finish(self, status: str) -> None:
        """Close the trace: stamp the end, attribute the remainder.

        The interval between the last phase boundary and the end lands
        in ``other``, so the segments always partition ``[start, end]``
        completely.  Completion hands the trace to the tracer's sinks
        (SLO monitor, flight recorder, exporters); a second call is a
        no-op.
        """
        if self._finished:
            return
        end = self.tracer.now()
        self.phase_at("other", end)
        self.end = end
        self.status = status
        self._finished = True
        self._epoch += 1
        self.tracer._complete(self)

    # -- derived ----------------------------------------------------------

    @property
    def latency(self) -> float:
        """End-to-end sim seconds (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def breakdown(self) -> Dict[str, float]:
        """Total seconds per component over this trace's segments."""
        totals: Dict[str, float] = {}
        for segment in self.segments:
            totals[segment.component] = (
                totals.get(segment.component, 0.0) + segment.duration
            )
        return totals


class TraceScope:
    """An epoch-stamped handle onto one attempt of a traced request.

    Passed by reference through the simulated RPC layer; every stamp is
    gated on the epoch captured at creation, so a scope held by a stale
    server-side process (client timed out and remounted) becomes inert
    the moment the client calls ``invalidate_scopes``.
    """

    __slots__ = ("_ctx", "_epoch")

    def __init__(self, ctx: TraceContext, epoch: int) -> None:
        self._ctx = ctx
        self._epoch = epoch

    @property
    def enabled(self) -> bool:
        return self._epoch == self._ctx._epoch

    def owner(self) -> Optional[Tuple[Optional[str], int]]:
        """``(tenant, trace_id)`` while this scope is live, else ``None``.

        The disk layer stamps busy/spin-up intervals with this pair so
        the energy ledger can charge joules to the owning tenant and
        request.  A stale scope (crashed attempt after
        ``invalidate_scopes``) yields ``None``, booking orphaned media
        work to the ``system`` account instead of a tenant.
        """
        if self._epoch == self._ctx._epoch:
            return (self._ctx.tenant, self._ctx.trace_id)
        return None

    def phase(self, component: str) -> None:
        if self._epoch == self._ctx._epoch:
            self._ctx.phase(component)

    def phase_at(self, component: str, boundary: float) -> None:
        if self._epoch == self._ctx._epoch:
            self._ctx.phase_at(component, boundary)

    def event(self, name: str, **attrs: Any) -> None:
        if self._epoch == self._ctx._epoch:
            self._ctx.event(name, **attrs)


class RequestTracer:
    """The armed tracer: mints contexts, collects completions/instants.

    Bind it to a simulator clock with :meth:`bind_clock` (done
    automatically by ``Simulator(tracer=...)``); like the metrics
    registry, one tracer may be carried across sequential simulators —
    trace ids keep increasing and the clock rebinds to each new run.
    """

    def __init__(self, clock: Optional[_Clock] = None) -> None:
        self._clock: _Clock = clock if clock is not None else _zero_clock
        self._next_id = 1
        self.completed: List[TraceContext] = []
        self.instants: List[InstantRecord] = []
        self._sinks: List[Callable[[TraceContext], None]] = []
        self._instant_sinks: List[Callable[[InstantRecord], None]] = []

    @property
    def enabled(self) -> bool:
        return True

    def now(self) -> float:
        return self._clock()

    def bind_clock(self, clock: _Clock) -> None:
        """Point the tracer at a (new) simulator's clock."""
        self._clock = clock

    # -- minting ----------------------------------------------------------

    def start(
        self,
        name: str,
        kind: str = "request",
        tenant: Optional[str] = None,
        **attrs: Any,
    ) -> TraceContext:
        """Open a new trace context starting now."""
        trace_id = self._next_id
        self._next_id += 1
        return TraceContext(
            self, trace_id, name, kind, tenant, attrs, self._clock()
        )

    def instant(self, name: str, **attrs: Any) -> None:
        """Record a tracer-level instant event (fault, alert, …)."""
        record = InstantRecord(name, self._clock(), attrs)
        self.instants.append(record)
        for sink in self._instant_sinks:
            sink(record)

    # -- sinks ------------------------------------------------------------

    def add_sink(self, sink: Callable[[TraceContext], None]) -> None:
        """Call ``sink(ctx)`` on every completed trace, in registration
        order (register a flight recorder *before* an SLO monitor so the
        triggering trace is in the ring when the alert fires)."""
        self._sinks.append(sink)

    def remove_sink(self, sink: Callable[[TraceContext], None]) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)

    def add_instant_sink(self, sink: Callable[[InstantRecord], None]) -> None:
        self._instant_sinks.append(sink)

    def remove_instant_sink(self, sink: Callable[[InstantRecord], None]) -> None:
        if sink in self._instant_sinks:
            self._instant_sinks.remove(sink)

    def _complete(self, ctx: TraceContext) -> None:
        self.completed.append(ctx)
        for sink in self._sinks:
            sink(ctx)

    def clear(self) -> None:
        """Drop collected traces/instants (sinks stay registered)."""
        self.completed.clear()
        self.instants.clear()


class NullTraceScope(TraceScope):
    """The disabled scope: shared, inert, safe to pass anywhere."""

    __slots__ = ()

    def __init__(self) -> None:  # noqa: super().__init__ intentionally skipped
        pass

    @property
    def enabled(self) -> bool:
        return False

    def owner(self) -> Optional[Tuple[Optional[str], int]]:
        return None

    def phase(self, component: str) -> None:
        pass

    def phase_at(self, component: str, boundary: float) -> None:
        pass

    def event(self, name: str, **attrs: Any) -> None:
        pass


class NullTraceContext(TraceContext):
    """The disabled context: every method an empty body.

    Shared process-wide as :data:`NULL_TRACE`, which is safe only
    because nothing recorded through it is kept — requests default to
    it so the untraced hot path is a handful of no-op calls.
    """

    __slots__ = ()

    def __init__(self) -> None:  # noqa: super().__init__ intentionally skipped
        pass

    @property
    def enabled(self) -> bool:
        return False

    def phase(self, component: str) -> None:
        pass

    def phase_at(self, component: str, boundary: float) -> None:
        pass

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def annotate(self, **attrs: Any) -> None:
        pass

    def scope(self) -> TraceScope:
        return NULL_SCOPE

    def invalidate_scopes(self) -> None:
        pass

    def finish(self, status: str) -> None:
        pass

    @property
    def latency(self) -> float:
        return 0.0

    def breakdown(self) -> Dict[str, float]:
        return {}


class NullTracer(RequestTracer):
    """The disabled tracer: mints the shared null context, keeps nothing."""

    def __init__(self) -> None:
        super().__init__()

    @property
    def enabled(self) -> bool:
        return False

    def bind_clock(self, clock: _Clock) -> None:
        pass

    def start(
        self,
        name: str,
        kind: str = "request",
        tenant: Optional[str] = None,
        **attrs: Any,
    ) -> TraceContext:
        return NULL_TRACE

    def instant(self, name: str, **attrs: Any) -> None:
        pass


#: Shared disabled singletons; components default to these when a
#: simulator is built without a tracer.
NULL_SCOPE = NullTraceScope()
NULL_TRACE = NullTraceContext()
NULL_TRACER = NullTracer()


class CriticalPathAnalyzer:
    """Decompose completed traces into per-component latency.

    The core contract is the *attribution identity*: for every finished
    trace the component durations sum to the measured end-to-end
    latency.  :meth:`analyze` verifies it per trace; :meth:`aggregate`
    folds a population into per-component totals for reports.
    """

    def __init__(self, tolerance: float = 1e-9) -> None:
        self.tolerance = tolerance

    def analyze(self, ctx: TraceContext) -> Dict[str, Any]:
        """Per-component breakdown of one finished trace.

        Returns ``{"trace_id", "latency", "components", "residual",
        "identity_ok", "critical_component"}`` where ``residual`` is
        the (float-tolerance) difference between the component sum and
        the measured latency.
        """
        if ctx.end is None:
            raise ValueError(f"trace {ctx.trace_id} is not finished")
        components = ctx.breakdown()
        total = 0.0
        for component in sorted(components):
            total += components[component]
        latency = ctx.latency
        residual = latency - total
        critical = ""
        worst = -1.0
        for component in COMPONENTS:
            spent = components.get(component, 0.0)
            if spent > worst:
                worst = spent
                critical = component
        return {
            "trace_id": ctx.trace_id,
            "latency": latency,
            "components": components,
            "residual": residual,
            "identity_ok": abs(residual) <= self.tolerance * max(1.0, latency),
            "critical_component": critical,
        }

    def aggregate(self, traces: List[TraceContext]) -> Dict[str, Any]:
        """Population view: totals/shares per component + identity check."""
        totals: Dict[str, float] = {}
        latency_sum = 0.0
        finished = 0
        identity_failures = 0
        for ctx in traces:
            if ctx.end is None:
                continue
            finished += 1
            report = self.analyze(ctx)
            if not report["identity_ok"]:
                identity_failures += 1
            latency_sum += ctx.latency
            for component, spent in report["components"].items():
                totals[component] = totals.get(component, 0.0) + spent
        shares = {
            component: (totals[component] / latency_sum if latency_sum > 0 else 0.0)
            for component in totals
        }
        return {
            "traces": finished,
            "latency_total": latency_sum,
            "components": {name: totals[name] for name in sorted(totals)},
            "shares": {name: shares[name] for name in sorted(shares)},
            "identity_failures": identity_failures,
        }
