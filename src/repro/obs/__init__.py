"""repro.obs — sim-time observability: metrics, tracing, SLO, exporters.

The registry and the request tracer are driven by the simulator clock
(never the wall clock), so every metric dump and every trace export is
a deterministic function of the simulated execution: two same-seed
replays export byte-identical JSON.  See DESIGN.md, "Observability"
and "Request tracing & latency attribution".
"""

from repro.obs.energy import (
    ACCOUNT_IDLE,
    ACCOUNT_OVERHEAD,
    ACCOUNT_SYSTEM,
    ConservationAuditor,
    DiskEnergyBook,
    EnergyConservationError,
    EnergyLedger,
    EnergyRow,
    SpinUpBlame,
    tenant_account,
)
from repro.obs.export import export_json, export_text
from repro.obs.metrics import (
    DEFAULT_DEPTH_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    SpanRecord,
)
from repro.obs.slo import FlightRecorder, SloAlert, SloMonitor, SloObjective
from repro.obs.trace import (
    COMPONENTS,
    NULL_SCOPE,
    NULL_TRACE,
    NULL_TRACER,
    CriticalPathAnalyzer,
    InstantRecord,
    NullTraceContext,
    NullTracer,
    PhaseSegment,
    RequestTracer,
    TraceContext,
    TraceEvent,
    TraceScope,
)
from repro.obs.trace_export import (
    chrome_trace_events,
    export_chrome_trace,
    export_trace_jsonl,
    trace_to_dict,
)

__all__ = [
    "ACCOUNT_IDLE",
    "ACCOUNT_OVERHEAD",
    "ACCOUNT_SYSTEM",
    "COMPONENTS",
    "ConservationAuditor",
    "Counter",
    "CriticalPathAnalyzer",
    "DiskEnergyBook",
    "EnergyConservationError",
    "EnergyLedger",
    "EnergyRow",
    "SpinUpBlame",
    "DEFAULT_DEPTH_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "InstantRecord",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_SCOPE",
    "NULL_TRACE",
    "NULL_TRACER",
    "NullRegistry",
    "NullTraceContext",
    "NullTracer",
    "PhaseSegment",
    "RequestTracer",
    "SloAlert",
    "SloMonitor",
    "SloObjective",
    "SpanRecord",
    "TraceContext",
    "TraceEvent",
    "TraceScope",
    "chrome_trace_events",
    "export_chrome_trace",
    "export_json",
    "export_text",
    "export_trace_jsonl",
    "tenant_account",
    "trace_to_dict",
]
