"""repro.obs — sim-time observability: metrics registry, spans, exporters.

The registry is driven by the simulator clock (never the wall clock),
so every metric dump is a deterministic function of the simulated
execution: two same-seed replays export byte-identical JSON.  See
DESIGN.md, "Observability".
"""

from repro.obs.export import export_json, export_text
from repro.obs.metrics import (
    DEFAULT_DEPTH_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    SpanRecord,
)

__all__ = [
    "Counter",
    "DEFAULT_DEPTH_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "SpanRecord",
    "export_json",
    "export_text",
]
