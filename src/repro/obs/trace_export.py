"""Exporters for completed request traces.

Three formats, all canonical (sorted keys, fixed separators) so two
same-seed replays produce byte-identical output:

* :func:`trace_to_dict` — one trace as a JSON-safe dict, including its
  per-component breakdown.
* :func:`export_trace_jsonl` — one canonical-JSON line per trace, the
  replayable per-request record (and the byte stream compared by
  ``repro check-determinism``).
* :func:`export_chrome_trace` — Chrome ``trace_event`` JSON (the
  ``traceEvents`` array form), loadable by Perfetto / chrome://tracing:
  one complete (``"X"``) event per trace plus one per phase segment,
  instant (``"i"``) events for annotations, and metadata (``"M"``)
  records naming processes.  Processes map to tenants (requests) or
  the system lane; threads map to trace ids.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.obs.trace import InstantRecord, TraceContext

__all__ = [
    "chrome_trace_events",
    "export_chrome_trace",
    "export_trace_jsonl",
    "trace_to_dict",
]

#: pid reserved for system-kind traces and tracer-level instants.
_SYSTEM_PID = 0


def trace_to_dict(ctx: TraceContext) -> Dict[str, Any]:
    """One trace as a canonical, JSON-safe dict."""
    return {
        "trace_id": ctx.trace_id,
        "name": ctx.name,
        "kind": ctx.kind,
        "tenant": ctx.tenant,
        "start": ctx.start,
        "end": ctx.end,
        "status": ctx.status,
        "latency": ctx.latency,
        "attrs": {key: ctx.attrs[key] for key in sorted(ctx.attrs)},
        "segments": [segment.as_dict() for segment in ctx.segments],
        "events": [event.as_dict() for event in ctx.events],
        "breakdown": ctx.breakdown(),
    }


def export_trace_jsonl(traces: Iterable[TraceContext]) -> str:
    """Canonical JSONL: one byte-stable line per completed trace."""
    lines = [
        json.dumps(trace_to_dict(ctx), sort_keys=True, separators=(",", ":"))
        for ctx in traces
    ]
    return "\n".join(lines)


def _micros(seconds: float) -> float:
    return seconds * 1e6


def _tenant_pids(traces: Sequence[TraceContext]) -> Dict[str, int]:
    """Stable tenant → pid mapping (sorted, so replay-independent)."""
    tenants = sorted({ctx.tenant for ctx in traces if ctx.tenant is not None})
    return {tenant: index + 1 for index, tenant in enumerate(tenants)}


def chrome_trace_events(
    traces: Sequence[TraceContext],
    instants: Sequence[InstantRecord] = (),
) -> List[Dict[str, Any]]:
    """The ``traceEvents`` array for the Chrome ``trace_event`` format.

    Every entry carries the required keys (``name``, ``ph``, ``ts``,
    ``pid``, ``tid``); complete events add ``dur``.  Timestamps are
    microseconds of sim time.
    """
    pids = _tenant_pids(traces)
    events: List[Dict[str, Any]] = []
    events.append(
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0.0,
            "pid": _SYSTEM_PID,
            "tid": 0,
            "args": {"name": "system"},
        }
    )
    for tenant in sorted(pids):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0.0,
                "pid": pids[tenant],
                "tid": 0,
                "args": {"name": f"tenant:{tenant}"},
            }
        )
    for ctx in traces:
        if ctx.end is None:
            continue
        pid = pids.get(ctx.tenant, _SYSTEM_PID) if ctx.tenant else _SYSTEM_PID
        tid = ctx.trace_id
        args: Dict[str, Any] = {
            "status": ctx.status,
            "trace_id": ctx.trace_id,
        }
        for key in sorted(ctx.attrs):
            args[key] = ctx.attrs[key]
        events.append(
            {
                "name": ctx.name,
                "cat": ctx.kind,
                "ph": "X",
                "ts": _micros(ctx.start),
                "dur": _micros(ctx.latency),
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
        for segment in ctx.segments:
            events.append(
                {
                    "name": segment.component,
                    "cat": "phase",
                    "ph": "X",
                    "ts": _micros(segment.start),
                    "dur": _micros(segment.duration),
                    "pid": pid,
                    "tid": tid,
                    "args": {},
                }
            )
        for event in ctx.events:
            events.append(
                {
                    "name": event.name,
                    "cat": "event",
                    "ph": "i",
                    "s": "t",
                    "ts": _micros(event.time),
                    "pid": pid,
                    "tid": tid,
                    "args": {key: event.attrs[key] for key in sorted(event.attrs)},
                }
            )
    for instant in instants:
        events.append(
            {
                "name": instant.name,
                "cat": "instant",
                "ph": "i",
                "s": "g",
                "ts": _micros(instant.time),
                "pid": _SYSTEM_PID,
                "tid": 0,
                "args": {key: instant.attrs[key] for key in sorted(instant.attrs)},
            }
        )
    return events


def export_chrome_trace(
    traces: Sequence[TraceContext],
    instants: Sequence[InstantRecord] = (),
    indent: Optional[int] = None,
) -> str:
    """Canonical Chrome ``trace_event`` JSON (object form with
    ``traceEvents``), loadable by Perfetto and chrome://tracing."""
    document = {
        "displayTimeUnit": "ms",
        "traceEvents": chrome_trace_events(traces, instants),
    }
    if indent is not None and indent > 0:
        return json.dumps(document, sort_keys=True, indent=indent)
    return json.dumps(document, sort_keys=True, separators=(",", ":"))
