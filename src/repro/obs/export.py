"""Exporters for :class:`~repro.obs.metrics.MetricsRegistry` dumps.

Two formats:

* :func:`export_json` — canonical JSON (sorted keys, no whitespace
  variation), so two same-seed replays produce byte-identical output.
* :func:`export_text` — fixed-width text for terminals and logs.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.obs.metrics import MetricsRegistry

__all__ = ["export_json", "export_text"]


def export_json(registry: MetricsRegistry, indent: int = 0) -> str:
    """Serialise ``registry.dump()`` as canonical JSON.

    ``indent=0`` gives the compact byte-stable form used by the
    determinism checks; a positive indent pretty-prints for humans
    (still key-sorted, so equally stable).
    """
    dump = registry.dump()
    if indent > 0:
        return json.dumps(dump, sort_keys=True, indent=indent)
    return json.dumps(dump, sort_keys=True, separators=(",", ":"))


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def export_text(registry: MetricsRegistry) -> str:
    """Fixed-width text rendering of every instrument in the registry."""
    dump: Dict[str, Any] = registry.dump()
    lines: List[str] = [f"metrics dump (schema v{dump['version']})"]

    counters: Dict[str, float] = dump["counters"]
    if counters:
        lines.append("")
        lines.append("counters:")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {_format_value(counters[name])}")

    gauges: Dict[str, Dict[str, float]] = dump["gauges"]
    if gauges:
        lines.append("")
        lines.append("gauges:")
        width = max(len(name) for name in gauges)
        for name in sorted(gauges):
            entry = gauges[name]
            lines.append(
                f"  {name:<{width}}  {_format_value(entry['value'])}"
                f"  (at t={_format_value(entry['updated_at'])})"
            )

    histograms: Dict[str, Dict[str, Any]] = dump["histograms"]
    if histograms:
        lines.append("")
        lines.append("histograms:")
        width = max(len(name) for name in histograms)
        for name in sorted(histograms):
            entry = histograms[name]
            line = (
                f"  {name:<{width}}  n={entry['count']}"
                f" mean={_format_value(entry['mean'])}"
                f" p50={_format_value(entry['p50'])}"
                f" p95={_format_value(entry['p95'])}"
                f" p99={_format_value(entry['p99'])}"
                f" max={_format_value(entry['max'])}"
                f" sum={_format_value(entry['sum'])}"
            )
            if entry.get("overflow"):
                line += f" overflow={entry['overflow']}"
            lines.append(line)

    spans: Dict[str, Dict[str, float]] = dump["spans"]
    if spans:
        lines.append("")
        lines.append("spans:")
        width = max(len(name) for name in spans)
        for name in sorted(spans):
            entry = spans[name]
            lines.append(
                f"  {name:<{width}}  count={_format_value(entry['count'])}"
                f" total={_format_value(entry['total_seconds'])}s"
                f" max={_format_value(entry['max_seconds'])}s"
            )

    if len(lines) == 1:
        lines.append("  (no instruments registered)")
    return "\n".join(lines)
