"""SLO error-budget burn-rate monitoring and the trace flight recorder.

Both consume the :class:`~repro.obs.trace.RequestTracer` streams and
run entirely on sim time, so their outputs (alerts, ring dumps) are a
deterministic function of the simulated execution.

**Burn-rate math.**  A tenant's objective ``o`` (e.g. 0.95) allows an
error budget of ``1 - o`` bad requests.  Over a rolling window the
monitor computes ``bad_fraction = bad / total`` and the *burn rate*
``bad_fraction / (1 - o)`` — the multiple of the sustainable error
rate at which the budget is currently being consumed (burn 1.0 ≈
exactly spending the budget; burn 2.0 ≈ spending it twice as fast).
An alert fires when the burn rate reaches ``fire_threshold`` with at
least ``min_events`` requests in the window, and clears (hysteresis)
only once it drops below ``clear_threshold``.  A request is *bad* when
it failed, was rejected, or completed past its SLO deadline.

**Flight recorder.**  A bounded ring of the last ``capacity`` completed
traces.  When a trigger instant fires (``fault.*`` injection or an
``slo.alert``), the recorder snapshots the ring into a canonical-JSON
dump — the "what led up to this" record.  Register the recorder on the
tracer *before* the monitor so the triggering trace is already in the
ring when the monitor's alert instant arrives.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro.obs.trace import InstantRecord, RequestTracer, TraceContext

__all__ = ["FlightRecorder", "SloAlert", "SloMonitor", "SloObjective"]


class SloObjective:
    """One tenant's availability objective and alerting policy."""

    __slots__ = (
        "tenant",
        "objective",
        "window_seconds",
        "fire_threshold",
        "clear_threshold",
        "min_events",
    )

    def __init__(
        self,
        tenant: str,
        objective: float = 0.95,
        window_seconds: float = 60.0,
        fire_threshold: float = 2.0,
        clear_threshold: float = 1.0,
        min_events: int = 5,
    ) -> None:
        if not 0.0 < objective < 1.0:
            raise ValueError(f"objective must be in (0, 1), got {objective}")
        if clear_threshold > fire_threshold:
            raise ValueError("clear_threshold must not exceed fire_threshold")
        self.tenant = tenant
        self.objective = objective
        self.window_seconds = window_seconds
        self.fire_threshold = fire_threshold
        self.clear_threshold = clear_threshold
        self.min_events = min_events


class SloAlert:
    """One fire or clear transition of a tenant's burn-rate alert."""

    __slots__ = ("tenant", "kind", "time", "burn_rate", "bad", "total")

    def __init__(
        self, tenant: str, kind: str, time: float, burn_rate: float, bad: int, total: int
    ) -> None:
        self.tenant = tenant
        self.kind = kind  # "fire" | "clear"
        self.time = time
        self.burn_rate = burn_rate
        self.bad = bad
        self.total = total

    def as_dict(self) -> Dict[str, Any]:
        return {
            "tenant": self.tenant,
            "kind": self.kind,
            "time": self.time,
            "burn_rate": self.burn_rate,
            "bad": self.bad,
            "total": self.total,
        }


def _is_bad(ctx: TraceContext) -> bool:
    if ctx.status != "ok":
        return True
    return bool(ctx.attrs.get("slo_missed", False))


class SloMonitor:
    """Rolling per-tenant error-budget burn rates over completed traces.

    Registers itself as a completion sink on ``tracer``; every finished
    request-kind trace updates its tenant's window and may fire/clear a
    burn-rate alert.  Alerts are recorded on :attr:`alerts` and emitted
    into the tracer's instant stream as ``slo.alert`` / ``slo.clear``
    (which is what triggers the flight recorder).  Call :meth:`detach`
    when the run is over if the tracer outlives the monitor.
    """

    def __init__(
        self, tracer: RequestTracer, objectives: Sequence[SloObjective]
    ) -> None:
        self.tracer = tracer
        self.objectives: Dict[str, SloObjective] = {}
        for objective in objectives:
            if objective.tenant in self.objectives:
                raise ValueError(f"duplicate objective for {objective.tenant!r}")
            self.objectives[objective.tenant] = objective
        # Per-tenant rolling window of (completion time, was_bad).
        self._windows: Dict[str, Deque[Tuple[float, bool]]] = {
            tenant: deque() for tenant in self.objectives
        }
        self._firing: Dict[str, bool] = {tenant: False for tenant in self.objectives}
        self.alerts: List[SloAlert] = []
        tracer.add_sink(self._on_complete)

    def detach(self) -> None:
        self.tracer.remove_sink(self._on_complete)

    def burn_rate(self, tenant: str) -> float:
        """The tenant's current windowed burn rate (0.0 when idle)."""
        objective = self.objectives[tenant]
        window = self._windows[tenant]
        if not window:
            return 0.0
        bad = sum(1 for _, was_bad in window if was_bad)
        return (bad / len(window)) / (1.0 - objective.objective)

    def firing(self, tenant: str) -> bool:
        return self._firing[tenant]

    def _on_complete(self, ctx: TraceContext) -> None:
        if ctx.kind != "request" or ctx.tenant is None:
            return
        objective = self.objectives.get(ctx.tenant)
        if objective is None or ctx.end is None:
            return
        now = ctx.end
        window = self._windows[ctx.tenant]
        window.append((now, _is_bad(ctx)))
        horizon = now - objective.window_seconds
        while window and window[0][0] < horizon:
            window.popleft()
        total = len(window)
        bad = sum(1 for _, was_bad in window if was_bad)
        burn = (bad / total) / (1.0 - objective.objective) if total else 0.0
        if (
            not self._firing[ctx.tenant]
            and total >= objective.min_events
            and burn >= objective.fire_threshold
        ):
            self._firing[ctx.tenant] = True
            self._transition(ctx.tenant, "fire", now, burn, bad, total)
        elif self._firing[ctx.tenant] and burn < objective.clear_threshold:
            self._firing[ctx.tenant] = False
            self._transition(ctx.tenant, "clear", now, burn, bad, total)

    def _transition(
        self, tenant: str, kind: str, time: float, burn: float, bad: int, total: int
    ) -> None:
        self.alerts.append(SloAlert(tenant, kind, time, burn, bad, total))
        self.tracer.instant(
            "slo.alert" if kind == "fire" else "slo.clear",
            tenant=tenant,
            burn_rate=burn,
            bad=bad,
            total=total,
        )

    def summary(self) -> Dict[str, Any]:
        """JSON-safe view: per-tenant state plus the alert history."""
        tenants: Dict[str, Any] = {}
        for tenant in sorted(self.objectives):
            window = self._windows[tenant]
            tenants[tenant] = {
                "objective": self.objectives[tenant].objective,
                "window_events": len(window),
                "burn_rate": self.burn_rate(tenant),
                "firing": self._firing[tenant],
                "alerts": sum(
                    1 for a in self.alerts if a.tenant == tenant and a.kind == "fire"
                ),
            }
        return {
            "tenants": tenants,
            "alerts": [alert.as_dict() for alert in self.alerts],
        }


class FlightRecorder:
    """Bounded ring of recent traces, dumped on alert or fault.

    ``trigger_prefixes`` selects which instant events snapshot the ring
    (by default fault injections and SLO alert fires).  Dumps are plain
    dicts (canonical-JSON-ready via
    :func:`repro.obs.trace_export.export_trace_jsonl` conventions) kept
    on :attr:`dumps`; the ring itself can be serialized at any time
    with :meth:`snapshot`.
    """

    def __init__(
        self,
        tracer: RequestTracer,
        capacity: int = 32,
        trigger_prefixes: Sequence[str] = ("fault.", "slo.alert"),
        max_dumps: int = 16,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.tracer = tracer
        self.capacity = capacity
        self.trigger_prefixes: Tuple[str, ...] = tuple(trigger_prefixes)
        self.max_dumps = max_dumps
        self._ring: Deque[TraceContext] = deque(maxlen=capacity)
        self.dumps: List[Dict[str, Any]] = []
        self.triggers_seen = 0
        tracer.add_sink(self._on_complete)
        tracer.add_instant_sink(self._on_instant)

    def detach(self) -> None:
        self.tracer.remove_sink(self._on_complete)
        self.tracer.remove_instant_sink(self._on_instant)

    def _on_complete(self, ctx: TraceContext) -> None:
        self._ring.append(ctx)

    def _on_instant(self, record: InstantRecord) -> None:
        matched = False
        for prefix in self.trigger_prefixes:
            if record.name.startswith(prefix):
                matched = True
                break
        if not matched:
            return
        self.triggers_seen += 1
        if len(self.dumps) < self.max_dumps:
            self.dumps.append(
                {
                    "trigger": record.as_dict(),
                    "traces": self.snapshot(),
                }
            )

    def snapshot(self) -> List[Dict[str, Any]]:
        """The current ring as export-ready dicts (oldest first)."""
        from repro.obs.trace_export import trace_to_dict

        return [trace_to_dict(ctx) for ctx in self._ring]

    def last(self, n: Optional[int] = None) -> List[TraceContext]:
        """The most recent ``n`` traces in the ring (all by default)."""
        items = list(self._ring)
        if n is None:
            return items
        return items[-n:]
