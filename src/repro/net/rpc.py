"""Request/response RPC over the simulated network.

Handlers may return either a plain value or a generator (a simulation
process) whose return value becomes the response — so a handler can
perform simulated disk I/O before replying.  Remote exceptions are
re-raised at the caller as :class:`RemoteError`; lost messages surface
as :class:`RpcTimeout`.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Generator, Optional

from repro.net.network import Message, Network
from repro.sim import Event, Interrupt, Simulator

__all__ = ["RemoteError", "RpcClient", "RpcServer", "RpcTimeout"]


class RpcTimeout(Exception):
    """No response arrived within the deadline."""


class RemoteError(Exception):
    """The remote handler raised; carries the original message."""


_REQUEST = "rpc_request"
_RESPONSE = "rpc_response"


class RpcServer:
    """Dispatches incoming requests on one network node."""

    def __init__(self, sim: Simulator, network: Network, address: str):
        self.sim = sim
        self.network = network
        self.address = address
        if address not in network:
            network.add_node(address)
        self._node = network.node(address)
        self._handlers: Dict[str, Callable[..., Any]] = {}
        self.requests_served = 0
        sim.process(self._serve_loop())

    def register(self, method: str, handler: Callable[..., Any]) -> None:
        if method in self._handlers:
            raise ValueError(f"handler for {method!r} already registered")
        self._handlers[method] = handler

    def _serve_loop(self) -> Generator[Event, Message, None]:
        while True:
            # Predicate get: responses and raw messages on the same node
            # stay available for their own consumers.
            message = yield self._node.inbox.get(
                lambda m: isinstance(m.payload, dict)
                and m.payload.get("kind") == _REQUEST
            )
            self.sim.process(self._handle(message, message.payload))

    def _handle(self, message: Message, payload: dict) -> Generator[Event, Any, None]:
        method = payload["method"]
        request_id = payload["id"]
        response: Dict[str, Any] = {"kind": _RESPONSE, "id": request_id}
        handler = self._handlers.get(method)
        if handler is None:
            response["error"] = f"no such method {method!r}"
        else:
            try:
                result = handler(*payload.get("args", ()), **payload.get("kwargs", {}))
                if hasattr(result, "send") and hasattr(result, "throw"):
                    result = yield self.sim.process(result)
                response["result"] = result
            except Interrupt:
                # A kernel interrupt (server torn down mid-request) must
                # reach the kernel, not be forwarded as an RPC error.
                raise
            except Exception as exc:  # noqa: BLE001 - forwarded to caller
                response["error"] = f"{type(exc).__name__}: {exc}"
        self.requests_served += 1
        self.network.send(
            self.address, message.src, response, size=payload.get("response_size", 256)
        )


class RpcClient:
    """Issues requests from one network node and matches responses."""

    def __init__(self, sim: Simulator, network: Network, address: str):
        self.sim = sim
        self.network = network
        self.address = address
        if address not in network:
            network.add_node(address)
        self._node = network.node(address)
        self._ids = itertools.count(1)
        self._pending: Dict[int, Event] = {}
        sim.process(self._response_loop())

    def _response_loop(self) -> Generator[Event, Message, None]:
        while True:
            message = yield self._node.inbox.get(
                lambda m: isinstance(m.payload, dict)
                and m.payload.get("kind") == _RESPONSE
            )
            payload = message.payload
            waiter = self._pending.pop(payload["id"], None)
            if waiter is None or waiter.triggered:
                continue  # response after timeout: drop
            if "error" in payload:
                waiter.fail(RemoteError(payload["error"]))
            else:
                waiter.succeed(payload.get("result"))

    def call(
        self,
        target: str,
        method: str,
        *args: Any,
        timeout: float = 5.0,
        request_size: int = 256,
        response_size: int = 256,
        **kwargs: Any,
    ) -> Generator[Event, Any, Any]:
        """Generator process performing one call; yields the result.

        Use as ``result = yield sim.process(client.call(...))`` or
        ``yield from`` inside another process.
        """
        request_id = next(self._ids)
        payload = {
            "kind": _REQUEST,
            "id": request_id,
            "method": method,
            "args": args,
            "kwargs": kwargs,
            "response_size": response_size,
        }
        waiter = self.sim.event()
        self._pending[request_id] = waiter
        self.network.send(self.address, target, payload, size=request_size)
        deadline = self.sim.timeout(timeout)
        result = yield self.sim.any_of([waiter, deadline])
        if not waiter.triggered:
            self._pending.pop(request_id, None)
            raise RpcTimeout(f"{method} to {target} timed out after {timeout}s")
        if not waiter.ok:
            raise waiter.value
        return waiter.value
