"""A simulated data-center network.

Message passing with configurable latency and (optional) per-message
serialization delay.  Nodes are addressed by name; a crashed node
silently drops traffic in both directions, and explicit partitions can
sever pairs of nodes — enough to exercise heartbeat loss, failover and
remount behaviour in the management stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set, Tuple

from repro.sim import Simulator, Store
from repro.sim.rng import RngRegistry

__all__ = ["Message", "NetNode", "Network"]


@dataclass(frozen=True)
class Message:
    src: str
    dst: str
    payload: Any
    size: int = 0
    sent_at: float = 0.0


class NetNode:
    """One addressable endpoint with an inbox."""

    def __init__(self, sim: Simulator, address: str):
        self.sim = sim
        self.address = address
        self.inbox: Store = Store(sim)
        self.alive = True

    def receive(self):
        """Event yielding the next :class:`Message`."""
        return self.inbox.get()


class Network:
    """Connects nodes; delivers messages with latency."""

    def __init__(
        self,
        sim: Simulator,
        rng: Optional[RngRegistry] = None,
        latency: float = 0.2e-3,
        jitter: float = 0.05e-3,
        bandwidth: float = 1.25e8,  # 1 GbE payload bytes/s
    ):
        self.sim = sim
        self.latency = latency
        self.jitter = jitter
        self.bandwidth = bandwidth
        self._rng = (rng or RngRegistry(0)).stream("network")
        self._nodes: Dict[str, NetNode] = {}
        self._partitions: Set[Tuple[str, str]] = set()
        self.delivered_count = 0
        self.dropped_count = 0
        self.bytes_carried = 0

    # -- membership ------------------------------------------------------

    def add_node(self, address: str) -> NetNode:
        if address in self._nodes:
            raise ValueError(f"duplicate network address {address!r}")
        node = NetNode(self.sim, address)
        self._nodes[address] = node
        return node

    def node(self, address: str) -> NetNode:
        return self._nodes[address]

    def __contains__(self, address: str) -> bool:
        return address in self._nodes

    def set_alive(self, address: str, alive: bool) -> None:
        self._nodes[address].alive = alive

    def is_alive(self, address: str) -> bool:
        return address in self._nodes and self._nodes[address].alive

    # -- partitions -----------------------------------------------------

    def partition(self, a: str, b: str) -> None:
        """Block traffic between ``a`` and ``b`` (both directions)."""
        self._partitions.add((min(a, b), max(a, b)))

    def heal(self, a: str, b: str) -> None:
        self._partitions.discard((min(a, b), max(a, b)))

    def heal_all(self) -> None:
        self._partitions.clear()

    def _blocked(self, a: str, b: str) -> bool:
        return (min(a, b), max(a, b)) in self._partitions

    # -- transmission ------------------------------------------------------

    def send(self, src: str, dst: str, payload: Any, size: int = 256) -> None:
        """Fire-and-forget message; dropped if either side is down."""
        if src not in self._nodes:
            raise ValueError(f"unknown sender {src!r}")
        if dst not in self._nodes:
            self.dropped_count += 1
            return
        if not self._nodes[src].alive:
            self.dropped_count += 1
            return
        message = Message(src=src, dst=dst, payload=payload, size=size, sent_at=self.sim.now)
        delay = self.latency + size / self.bandwidth
        if self.jitter > 0:
            delay += self._rng.uniform(0, self.jitter)

        def deliver() -> None:
            node = self._nodes.get(dst)
            if node is None or not node.alive or self._blocked(src, dst):
                self.dropped_count += 1
                return
            if not self._nodes[src].alive:
                # Sender died mid-flight; the packet is already on the
                # wire, deliver it anyway (TCP would too).
                pass
            self.delivered_count += 1
            self.bytes_carried += size
            node.inbox.put(message)

        if self._blocked(src, dst):
            self.dropped_count += 1
            return
        self.sim.call_in(delay, deliver)
