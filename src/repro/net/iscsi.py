"""A simulated iSCSI-like block protocol (§IV-B, §IV-D).

EndPoints expose allocated storage spaces as *targets*; clients log in
through an :class:`IscsiInitiator` and issue block I/O that travels the
simulated network, is served by the backing simulated disk, and returns
with realistic transfer delays.  A dead host or a removed target turns
into :class:`SessionError` at the initiator — which is what triggers
the ClientLib's automatic remount (§IV-D).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from repro.disk.device import IoRequest, SimulatedDisk
from repro.net.network import Network
from repro.net.rpc import RemoteError, RpcClient, RpcServer, RpcTimeout
from repro.obs.trace import NULL_SCOPE, TraceScope
from repro.sim import Event, Simulator
from repro.units import Bytes, SimSeconds

__all__ = [
    "IscsiInitiator",
    "IscsiSession",
    "IscsiTargetServer",
    "SessionError",
    "StorageVolume",
]


class SessionError(Exception):
    """The session is unusable (host down, target gone, disk moved)."""


@dataclass
class StorageVolume:
    """A slice of one disk exposed as a block target.

    Covers the paper's three allocation granularities: a whole disk, a
    partition, or a big file within a disk — all are (disk, offset,
    length) ranges at this level.
    """

    volume_id: str
    disk: SimulatedDisk
    offset: Bytes = Bytes(0)
    length: Optional[Bytes] = None

    def __post_init__(self) -> None:
        if self.length is None:
            self.length = self.disk.spec.capacity_bytes - self.offset
        if self.offset < 0 or self.length <= 0:
            raise ValueError("invalid volume geometry")

    def submit(
        self, offset: Bytes, size: Bytes, is_read: bool, scope: TraceScope = NULL_SCOPE
    ) -> Event:
        if offset < 0 or offset + size > self.length:
            raise ValueError(
                f"I/O beyond volume {self.volume_id!r}: "
                f"offset={offset} size={size} length={self.length}"
            )
        return self.disk.submit(
            IoRequest(offset=self.offset + offset, size=size, is_read=is_read),
            scope,
        )


class IscsiTargetServer:
    """The target side, embedded in a host's EndPoint."""

    def __init__(self, sim: Simulator, network: Network, address: str):
        self.sim = sim
        self.address = address
        self.rpc = RpcServer(sim, network, address)
        self._volumes: Dict[str, StorageVolume] = {}
        self._sessions: Dict[int, str] = {}  # session id -> target name
        self._session_ids = itertools.count(1)
        self._m_logins = sim.metrics.counter("iscsi.logins")
        self._m_ios = sim.metrics.counter("iscsi.ios")
        self._m_bytes = sim.metrics.counter("iscsi.bytes")
        self.rpc.register("iscsi.login", self._login)
        self.rpc.register("iscsi.logout", self._logout)
        self.rpc.register("iscsi.io", self._io)
        self.rpc.register("iscsi.readv", self._readv)
        self.rpc.register("iscsi.list_targets", self._list_targets)

    # -- target management (called by the EndPoint) -------------------------

    def expose(self, target_name: str, volume: StorageVolume) -> None:
        if target_name in self._volumes:
            raise ValueError(f"target {target_name!r} already exposed")
        self._volumes[target_name] = volume

    def withdraw(self, target_name: str) -> None:
        self._volumes.pop(target_name, None)
        stale = [s for s, t in self._sessions.items() if t == target_name]
        for session_id in stale:
            del self._sessions[session_id]

    def exposed_targets(self) -> list:
        return sorted(self._volumes)

    # -- RPC handlers ---------------------------------------------------------

    def _login(self, target_name: str) -> int:
        if target_name not in self._volumes:
            raise SessionError(f"no such target {target_name!r}")
        session_id = next(self._session_ids)
        self._sessions[session_id] = target_name
        self._m_logins.inc()
        return session_id

    def _logout(self, session_id: int) -> bool:
        return self._sessions.pop(session_id, None) is not None

    def _list_targets(self) -> list:
        return self.exposed_targets()

    def _io(
        self,
        session_id: int,
        offset: Bytes,
        size: Bytes,
        is_read: bool,
        trace_scope: TraceScope = NULL_SCOPE,
    ):
        target_name = self._sessions.get(session_id)
        if target_name is None:
            raise SessionError(f"stale session {session_id}")
        volume = self._volumes.get(target_name)
        if volume is None:
            raise SessionError(f"target {target_name!r} withdrawn")
        service_time = yield volume.submit(offset, size, is_read, trace_scope)
        self._m_ios.inc()
        self._m_bytes.inc(size)
        return {"ok": True, "service_time": service_time}

    def _readv(
        self,
        session_id: int,
        extents: Sequence[Tuple[Bytes, Bytes]],
        trace_scope: TraceScope = NULL_SCOPE,
    ):
        """Serve a vector of read extents as one sequential media pass.

        The disk sees a single I/O over the covering envelope
        ``[min(offset), max(offset + size))`` — the whole point of
        sub-block coalescing: passengers between the envelope's edges
        cost sequential bandwidth, not extra seeks.
        """
        target_name = self._sessions.get(session_id)
        if target_name is None:
            raise SessionError(f"stale session {session_id}")
        volume = self._volumes.get(target_name)
        if volume is None:
            raise SessionError(f"target {target_name!r} withdrawn")
        if not extents:
            raise ValueError("iscsi.readv needs at least one extent")
        start = min(offset for offset, _ in extents)
        end = max(offset + size for offset, size in extents)
        envelope = Bytes(end - start)
        service_time = yield volume.submit(
            Bytes(start), envelope, True, trace_scope
        )
        self._m_ios.inc()
        self._m_bytes.inc(envelope)
        return {
            "ok": True,
            "service_time": service_time,
            "extents": len(extents),
            "envelope_bytes": envelope,
        }


class IscsiSession:
    """An initiator-side logged-in session."""

    def __init__(self, initiator: "IscsiInitiator", host_address: str, target_name: str, session_id: int):
        self.initiator = initiator
        self.host_address = host_address
        self.target_name = target_name
        self.session_id = session_id
        self.connected = True

    def read(
        self, offset: Bytes, size: Bytes, scope: TraceScope = NULL_SCOPE
    ) -> Generator[Event, None, dict]:
        return self._io(offset, size, is_read=True, scope=scope)

    def write(
        self, offset: Bytes, size: Bytes, scope: TraceScope = NULL_SCOPE
    ) -> Generator[Event, None, dict]:
        return self._io(offset, size, is_read=False, scope=scope)

    def readv(
        self,
        extents: List[Tuple[Bytes, Bytes]],
        scope: TraceScope = NULL_SCOPE,
    ) -> Generator[Event, None, dict]:
        """Vectored read: one round trip, one media pass, many extents.

        The request ships the extent list (small); the response carries
        the covering envelope's bytes back — the transfer cost of
        coalescing is modelled honestly, passengers included.
        """
        if not self.connected:
            raise SessionError("session closed")
        if not extents:
            raise ValueError("readv needs at least one extent")
        start = min(offset for offset, _ in extents)
        end = max(offset + size for offset, size in extents)
        request_size = 256 + 16 * len(extents)
        response_size = 256 + (end - start)
        extra = {}
        if scope.enabled:
            extra["trace_scope"] = scope
        try:
            result = yield from self.initiator.rpc.call(
                self.host_address,
                "iscsi.readv",
                self.session_id,
                tuple(extents),
                timeout=self.initiator.io_timeout,
                request_size=request_size,
                response_size=response_size,
                **extra,
            )
        except (RpcTimeout, RemoteError) as exc:
            self.connected = False
            self.initiator._m_session_errors.inc()
            raise SessionError(str(exc)) from exc
        scope.phase("network")
        return result

    def _io(
        self,
        offset: Bytes,
        size: Bytes,
        is_read: bool,
        scope: TraceScope = NULL_SCOPE,
    ) -> Generator[Event, None, dict]:
        if not self.connected:
            raise SessionError("session closed")
        request_size = 256 if is_read else 256 + size
        response_size = 256 + size if is_read else 256
        extra = {}
        if scope.enabled:
            # The simulated RPC passes kwargs by reference in-process,
            # so the scope rides the request to the target server.  The
            # untraced hot path ships nothing.
            extra["trace_scope"] = scope
        try:
            result = yield from self.initiator.rpc.call(
                self.host_address,
                "iscsi.io",
                self.session_id,
                offset,
                size,
                is_read,
                timeout=self.initiator.io_timeout,
                request_size=request_size,
                response_size=response_size,
                **extra,
            )
        except (RpcTimeout, RemoteError) as exc:
            self.connected = False
            self.initiator._m_session_errors.inc()
            raise SessionError(str(exc)) from exc
        # Response travel back from the endpoint (the disk layer closed
        # its last boundary when the media transfer ended).
        scope.phase("network")
        return result

    def logout(self) -> Generator[Event, None, None]:
        if not self.connected:
            return
        self.connected = False
        try:
            yield from self.initiator.rpc.call(
                self.host_address, "iscsi.logout", self.session_id, timeout=2.0
            )
        except (RpcTimeout, RemoteError):
            pass


class IscsiInitiator:
    """The client side: logs in to targets and issues block I/O."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        address: str,
        io_timeout: SimSeconds = SimSeconds(10.0),
    ):
        self.sim = sim
        self.address = address
        self.io_timeout = io_timeout
        self.rpc = RpcClient(sim, network, address)
        self._m_session_errors = sim.metrics.counter("iscsi.session_errors")

    def login(
        self, host_address: str, target_name: str, timeout: SimSeconds = SimSeconds(3.0)
    ) -> Generator[Event, None, IscsiSession]:
        try:
            session_id = yield from self.rpc.call(
                host_address, "iscsi.login", target_name, timeout=timeout
            )
        except (RpcTimeout, RemoteError) as exc:
            raise SessionError(str(exc)) from exc
        return IscsiSession(self, host_address, target_name, session_id)
