"""Simulated network, RPC and the iSCSI-like block protocol."""

from repro.net.iscsi import (
    IscsiInitiator,
    IscsiSession,
    IscsiTargetServer,
    SessionError,
    StorageVolume,
)
from repro.net.network import Message, NetNode, Network
from repro.net.rpc import RemoteError, RpcClient, RpcServer, RpcTimeout

__all__ = [
    "IscsiInitiator",
    "IscsiSession",
    "IscsiTargetServer",
    "Message",
    "NetNode",
    "Network",
    "RemoteError",
    "RpcClient",
    "RpcServer",
    "RpcTimeout",
    "SessionError",
    "StorageVolume",
]
