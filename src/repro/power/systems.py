"""System-level power comparison (§VII-C, Table V).

Computes the amortized power of a 16-disk unit for three systems in the
two archival states the paper compares:

* **spinning** — disks serving read/write;
* **powered off** — disks (and what can be gated) powered down.

UStore and Pergamum are composed from measured component numbers
(Tables III/IV, §VII-C and the Pergamum estimates in the text); the
EMC DD860/ES30 rows are the published measurements the paper quotes
from [33].
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.disk.specs import TOSHIBA_POWER_SATA, TOSHIBA_POWER_USB
from repro.fabric.power import FabricPowerModel
from repro.fabric.topology import Fabric
from repro.units import Watts

__all__ = [
    "PowerBreakdown",
    "dd860_power",
    "pergamum_power",
    "ustore_power",
]

#: §VII-C constants.
FAN_POWER = Watts(1.0)  # each
FAN_COUNT = 6
USB_HOST_ADAPTER_POWER = Watts(2.5)  # each
USB_HOST_ADAPTER_COUNT = 4
PSU_EFFICIENCY = 0.90  # "90plus" supply

#: Pergamum per-tome estimates from the text.
PERGAMUM_ARM_ACTIVE = Watts(2.5)
PERGAMUM_ARM_IDLE = Watts(0.8)
PERGAMUM_ETHERNET_ACTIVE = Watts(1.5)
PERGAMUM_ETHERNET_IDLE = Watts(0.5)

#: EMC DD860/ES30 (15 disks), quoted from Li et al. [33] via Table V.
DD860_SPINNING = Watts(222.5)
DD860_POWERED_OFF = Watts(83.5)


@dataclass(frozen=True)
class PowerBreakdown:
    """Watts at the wall, with the pre-PSU component subtotal."""

    disks: Watts
    interconnect: Watts
    fans: Watts
    adapters: Watts

    @property
    def dc_total(self) -> Watts:
        return Watts(self.disks + self.interconnect + self.fans + self.adapters)

    @property
    def wall_total(self) -> Watts:
        return Watts(self.dc_total / PSU_EFFICIENCY)


def ustore_power(fabric: Fabric, spinning: bool, num_disks: int = 16) -> PowerBreakdown:
    """UStore unit power from its component models."""
    fabric_model = FabricPowerModel(fabric)
    if spinning:
        disks = Watts(num_disks * TOSHIBA_POWER_USB.active)
        interconnect = Watts(fabric_model.total_power())
    else:
        # Relays cut the enclosures (disk + bridge), and the hosts cut
        # power to the fabric's hub subtrees as well (§VII-C: "hosts can
        # directly cut the power to the root hubs").
        disks = Watts(0.0)
        for node_id in fabric_model.powered:
            kind = fabric.node(node_id).kind.value
            if kind in ("disk", "bridge", "hub"):
                fabric_model.set_powered(node_id, False)
        interconnect = Watts(fabric_model.total_power())  # switches only
    return PowerBreakdown(
        disks=disks,
        interconnect=interconnect,
        fans=Watts(FAN_POWER * FAN_COUNT),
        adapters=Watts(USB_HOST_ADAPTER_POWER * USB_HOST_ADAPTER_COUNT),
    )


def pergamum_power(spinning: bool, num_disks: int = 16) -> PowerBreakdown:
    """Pergamum tomes (no NVRAM), same disks/fans/supply as UStore."""
    if spinning:
        disks = Watts(num_disks * TOSHIBA_POWER_SATA.active)
        interconnect = Watts(
            num_disks * (PERGAMUM_ARM_ACTIVE + PERGAMUM_ETHERNET_ACTIVE)
        )
    else:
        disks = Watts(0.0)
        interconnect = Watts(
            num_disks * (PERGAMUM_ARM_IDLE + PERGAMUM_ETHERNET_IDLE)
        )
    return PowerBreakdown(
        disks=disks,
        interconnect=interconnect,
        fans=Watts(FAN_POWER * FAN_COUNT),
        adapters=Watts(0.0),
    )


def dd860_power(spinning: bool) -> Watts:
    """Published DD860/ES30 wall power (15 disks)."""
    return DD860_SPINNING if spinning else DD860_POWERED_OFF
