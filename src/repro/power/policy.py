"""Spin-down policies (§IV-F) as standalone, ablatable strategies.

UStore's default policy spins a disk down after a fixed idle interval,
and doubles that interval for disks observed to thrash (spin up and
down too frequently).  Upper-layer services with better knowledge of
their workload can replace it entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol

from repro.disk.device import SimulatedDisk
from repro.disk.states import DiskPowerState
from repro.obs.trace import TraceScope
from repro.sim import Simulator
from repro.units import SimSeconds

__all__ = [
    "AdaptiveTimeoutPolicy",
    "FixedTimeoutPolicy",
    "PolicyHandle",
    "SpinDownPolicy",
    "run_policy",
]


class SpinDownPolicy(Protocol):
    """What :func:`run_policy` needs from a policy object."""

    def timeout_for(self, disk_id: str) -> SimSeconds:
        """Current idle timeout for one disk."""
        ...

    def on_spin_up(self, disk_id: str, now: SimSeconds) -> None:
        """Observe a wake-up (for adaptivity)."""
        ...


@dataclass
class FixedTimeoutPolicy:
    """Spin down after a constant idle interval."""

    idle_timeout: SimSeconds = SimSeconds(300.0)

    def timeout_for(self, disk_id: str) -> SimSeconds:
        return self.idle_timeout

    def on_spin_up(self, disk_id: str, now: SimSeconds) -> None:
        """Fixed policy ignores wake-ups."""


@dataclass
class AdaptiveTimeoutPolicy:
    """§IV-F: double a disk's idle timeout when it thrashes.

    A disk that spins up more than ``thrash_limit`` times within
    ``thrash_window`` seconds gets its idle timeout doubled (capped at
    ``max_timeout``), trading a little idle power for far fewer
    mechanical spin cycles.
    """

    idle_timeout: SimSeconds = SimSeconds(300.0)
    thrash_limit: int = 3
    thrash_window: SimSeconds = SimSeconds(3600.0)
    max_timeout: SimSeconds = SimSeconds(4 * 3600.0)
    _timeouts: Dict[str, SimSeconds] = field(default_factory=dict)
    _wakeups: Dict[str, List[SimSeconds]] = field(default_factory=dict)

    def timeout_for(self, disk_id: str) -> SimSeconds:
        return self._timeouts.get(disk_id, self.idle_timeout)

    def on_spin_up(self, disk_id: str, now: SimSeconds) -> None:
        events = self._wakeups.setdefault(disk_id, [])
        events.append(now)
        cutoff = now - self.thrash_window
        events[:] = [t for t in events if t >= cutoff]
        if len(events) > self.thrash_limit:
            current = self.timeout_for(disk_id)
            self._timeouts[disk_id] = SimSeconds(
                min(current * 2.0, self.max_timeout)
            )
            events.clear()


@dataclass
class PolicyHandle:
    """Cancellation handle for a running :func:`run_policy` loop."""

    stopped: bool = False
    _detach: Optional[Callable[[], None]] = None

    def stop(self) -> None:
        self.stopped = True
        if self._detach is not None:
            # Unhook spin-up listeners immediately; the defer callback
            # itself lapses (inert) at its next firing.
            self._detach()
            self._detach = None


def run_policy(
    sim: Simulator,
    disks: Dict[str, SimulatedDisk],
    policy: SpinDownPolicy,
    check_interval: SimSeconds = SimSeconds(10.0),
) -> PolicyHandle:
    """Drive a spin-down policy over ``disks`` on the deferred fast path.

    Each check is a raw :meth:`Simulator.defer` callback that
    reschedules itself — no Timeout/Event allocation per interval, so
    a fleet of policy loops costs the kernel nothing between checks.
    Wake-ups reach ``policy.on_spin_up`` through per-disk spin-up
    listeners at the *exact* sim time of the surge (not quantised to
    the next check boundary, as the old ``spin_up_count`` polling was).
    Returns a :class:`PolicyHandle`; :meth:`PolicyHandle.stop` detaches
    the listeners immediately and lets the loop lapse at its next
    firing, so a stopped-and-restarted policy never ticks twice.
    """
    handle = PolicyHandle()

    def on_spin_up(disk_id: str, now: float, blame: TraceScope) -> None:
        if not handle.stopped:
            policy.on_spin_up(disk_id, SimSeconds(now))

    for disk in disks.values():
        disk.add_spin_up_listener(on_spin_up)

    def detach() -> None:
        for disk in disks.values():
            disk.remove_spin_up_listener(on_spin_up)

    handle._detach = detach

    def check() -> None:
        if handle.stopped:
            return
        for disk_id, disk in disks.items():
            if disk.power_state is not DiskPowerState.IDLE:
                continue
            if sim.now - disk.idle_since >= policy.timeout_for(disk_id):
                disk.spin_down()
        sim.defer(check_interval, check)

    sim.defer(check_interval, check)
    return handle
