"""Whole-deployment power metering.

Samples instantaneous power of a running deployment (disks in their
current spin states, the fabric with its power gating, fans, host
adapters, PSU loss) into a time series for energy integration.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.cluster.deployment import Deployment
from repro.fabric.power import FabricPowerModel
from repro.power.systems import (
    FAN_COUNT,
    FAN_POWER,
    PSU_EFFICIENCY,
    USB_HOST_ADAPTER_COUNT,
    USB_HOST_ADAPTER_POWER,
)
from repro.sim import Event, TimeSeries
from repro.units import Joules, SimSeconds, Watts

__all__ = ["PowerMeter"]


class PowerMeter:
    """Periodic power sampling over a deployment."""

    def __init__(
        self, deployment: Deployment, interval: SimSeconds = SimSeconds(1.0)
    ):
        self.deployment = deployment
        self.interval = interval
        self.series = TimeSeries("wall_power_watts")
        self.fabric_model = FabricPowerModel(deployment.fabric)
        self._process = None

    def instantaneous_watts(self) -> Watts:
        """Wall power right now."""
        disks = sum(
            disk.power_draw(disk.default_power_profile())
            for disk in self.deployment.disks.values()
        )
        # Keep the fabric gating model in sync with relay state.
        for disk_id, powered in self.deployment.relays.closed.items():
            self.fabric_model.powered[disk_id] = powered
            bridge = f"bridge{disk_id[len('disk'):]}"
            if bridge in self.fabric_model.powered:
                self.fabric_model.powered[bridge] = powered
        dc_total = (
            disks
            + self.fabric_model.total_power()
            + FAN_POWER * FAN_COUNT
            + USB_HOST_ADAPTER_POWER * USB_HOST_ADAPTER_COUNT
        )
        return Watts(dc_total / PSU_EFFICIENCY)

    def start(self) -> None:
        if self._process is not None:
            return
        sim = self.deployment.sim

        def loop() -> Generator[Event, None, None]:
            while True:
                self.series.sample(sim.now, self.instantaneous_watts())
                yield sim.timeout(self.interval)

        self._process = sim.process(loop())

    def energy_joules(self, end_time: Optional[SimSeconds] = None) -> Joules:
        end = end_time if end_time is not None else self.deployment.sim.now
        return Joules(
            self.series.time_weighted_mean(end)
            * (end - (self.series.times[0] if self.series.times else 0.0))
        )
