"""Whole-deployment power metering.

Samples instantaneous power of a running deployment (disks in their
current spin states, the fabric with its power gating, fans, host
adapters, PSU loss) into a time series for energy integration.

With an :class:`~repro.obs.energy.EnergyLedger` armed, every sample is
also decomposed into attributable wall-watt rows — per-disk
active/spin-up/idle/standby (each divided by PSU efficiency so the
books are in wall joules) plus an ``overhead`` row defined as the
*exact residual* against the sampled wall figure — so the ledger's
accounts sum to the meter's energy integral by construction (the
conservation identity of DESIGN §15).
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.cluster.deployment import Deployment
from repro.disk.states import DiskPowerState
from repro.fabric.power import FabricPowerModel
from repro.obs.energy import (
    ACCOUNT_IDLE,
    ACCOUNT_OVERHEAD,
    EnergyLedger,
    EnergyRow,
    tenant_account,
)
from repro.power.systems import (
    FAN_COUNT,
    FAN_POWER,
    PSU_EFFICIENCY,
    USB_HOST_ADAPTER_COUNT,
    USB_HOST_ADAPTER_POWER,
)
from repro.sim import Event, TimeSeries
from repro.units import Joules, SimSeconds, Watts

__all__ = ["PowerMeter"]


class PowerMeter:
    """Periodic power sampling over a deployment."""

    def __init__(
        self,
        deployment: Deployment,
        interval: SimSeconds = SimSeconds(1.0),
        ledger: Optional[EnergyLedger] = None,
    ):
        self.deployment = deployment
        self.interval = interval
        self.series = TimeSeries("wall_power_watts")
        self.fabric_model = FabricPowerModel(deployment.fabric)
        self.ledger = ledger
        self._process = None
        # Track relay state by subscription (one initial sync, then a
        # callback per flip) instead of re-deriving the whole gating map
        # from the relay bank on every sample.
        for disk_id, powered in deployment.relays.closed.items():
            self._apply_relay(disk_id, powered)
        deployment.relays.add_listener(self._apply_relay)
        if ledger is not None:
            # Spin-up blame events, at exact sim time with owning trace.
            for disk_id in sorted(deployment.disks):
                deployment.disks[disk_id].add_spin_up_listener(
                    ledger.on_spin_up
                )

    def _apply_relay(self, disk_id: str, powered: bool) -> None:
        """Mirror one relay flip into the fabric power-gating model."""
        self.fabric_model.powered[disk_id] = powered
        bridge = f"bridge{disk_id[len('disk'):]}"
        if bridge in self.fabric_model.powered:
            self.fabric_model.powered[bridge] = powered

    def instantaneous_watts(self) -> Watts:
        """Wall power right now."""
        disks = sum(
            disk.power_draw(disk.default_power_profile())
            for disk in self.deployment.disks.values()
        )
        dc_total = (
            disks
            + self.fabric_model.total_power()
            + FAN_POWER * FAN_COUNT
            + USB_HOST_ADAPTER_POWER * USB_HOST_ADAPTER_COUNT
        )
        return Watts(dc_total / PSU_EFFICIENCY)

    def _sample(self, now: float) -> None:
        wall = self.instantaneous_watts()
        self.series.sample(now, wall)
        if self.ledger is not None:
            self.ledger.record_sample(now, self._attribute(wall))

    def _attribute(self, wall: Watts) -> List[EnergyRow]:
        """Split one sampled wall figure into attributable rows.

        Disk rows carry the ownership stamps the disk layer maintains
        from the trace threading; the final ``overhead`` row is the
        exact residual ``wall - sum(disk rows)``, so the rows always
        sum back to ``wall`` up to float reassociation.
        """
        rows: List[EnergyRow] = []
        attributed = 0.0
        for disk_id, disk in self.deployment.disks.items():
            state = disk.states.state
            if state is DiskPowerState.POWERED_OFF:
                continue
            watts = (
                disk.power_draw(disk.default_power_profile()) / PSU_EFFICIENCY
            )
            if watts == 0.0:
                continue
            if state is DiskPowerState.ACTIVE:
                owner = disk.busy_owner
                bucket = "active"
            elif state is DiskPowerState.SPINNING_UP:
                owner = disk.spinup_owner
                bucket = "spinup"
            else:
                owner = None
                bucket = "idle" if state is DiskPowerState.IDLE else "standby"
            if bucket in ("active", "spinup"):
                account = tenant_account(owner[0] if owner else None)
                trace_id = owner[1] if owner is not None else -1
            else:
                account = ACCOUNT_IDLE
                trace_id = -1
            rows.append(EnergyRow(account, disk_id, bucket, trace_id, Watts(watts)))
            attributed += watts
        rows.append(
            EnergyRow(
                ACCOUNT_OVERHEAD,
                "",
                "overhead",
                -1,
                Watts(wall - attributed),
            )
        )
        return rows

    def start(self) -> None:
        if self._process is not None:
            return
        sim = self.deployment.sim

        def loop() -> Generator[Event, None, None]:
            while True:
                self._sample(sim.now)
                yield sim.timeout(self.interval)

        self._process = sim.process(loop())

    def energy_joules(self, end_time: Optional[SimSeconds] = None) -> Joules:
        end = end_time if end_time is not None else self.deployment.sim.now
        return Joules(
            self.series.time_weighted_mean(end)
            * (end - (self.series.times[0] if self.series.times else 0.0))
        )
