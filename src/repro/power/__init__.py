"""Power models: policies, accounting, and rival-system comparisons."""

from repro.power.accounting import PowerMeter
from repro.power.policy import (
    AdaptiveTimeoutPolicy,
    FixedTimeoutPolicy,
    PolicyHandle,
    SpinDownPolicy,
    run_policy,
)
from repro.power.systems import (
    DD860_POWERED_OFF,
    DD860_SPINNING,
    PowerBreakdown,
    dd860_power,
    pergamum_power,
    ustore_power,
)

__all__ = [
    "AdaptiveTimeoutPolicy",
    "DD860_POWERED_OFF",
    "DD860_SPINNING",
    "FixedTimeoutPolicy",
    "PolicyHandle",
    "PowerBreakdown",
    "PowerMeter",
    "SpinDownPolicy",
    "dd860_power",
    "pergamum_power",
    "run_policy",
    "ustore_power",
]
