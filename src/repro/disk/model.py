"""Analytic disk service-time model (reproduces Table II).

The model computes the expected service time of one I/O under a
:class:`~repro.workload.specs.WorkloadSpec` for a given connection type,
then derives steady-state IOPS / MB/s at queue depth 1 (the paper's
Iometer configuration uses one worker per disk).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.disk.specs import (
    CONNECTIONS,
    ConnectionProfile,
    ConnectionType,
    DiskSpec,
    DT01ACA300,
)
from repro.units import (
    Bytes,
    BytesPerSec,
    MBps,
    SimSeconds,
    bytes_per_sec_to_mbps,
)
from repro.workload.specs import WorkloadSpec

__all__ = ["DiskModel", "ThroughputEstimate"]

# Number of hub/switch hops on the prototype's H&S path (two hubs, two
# switches, §VII-A).
_PROTOTYPE_FABRIC_HOPS = 4


@dataclass(frozen=True)
class ThroughputEstimate:
    """Steady-state throughput of one disk under one workload."""

    spec: WorkloadSpec
    service_time: SimSeconds  # expected per I/O
    iops: float
    bytes_per_second: BytesPerSec

    @property
    def mb_per_second(self) -> MBps:
        return bytes_per_sec_to_mbps(self.bytes_per_second)


class DiskModel:
    """Service-time model for one disk behind one connection type."""

    def __init__(
        self,
        disk: DiskSpec = DT01ACA300,
        connection: ConnectionType = ConnectionType.HUB_AND_SWITCH,
        fabric_hops: int = _PROTOTYPE_FABRIC_HOPS,
    ):
        self.disk = disk
        self.connection = connection
        self.profile: ConnectionProfile = CONNECTIONS[connection]
        self.fabric_hops = fabric_hops

    # -- single-operation service times ---------------------------------

    def _transfer_time(self, size: Bytes) -> SimSeconds:
        return SimSeconds(size / self.disk.media_rate)

    def _extra_crossings(self, size: Bytes) -> int:
        """Track boundaries crossed by a random transfer beyond the first."""
        return max(0, math.ceil(size / self.disk.track_bytes) - 1)

    def op_service_time(self, spec: WorkloadSpec, is_read: bool) -> SimSeconds:
        """Expected service time of a single read or write under ``spec``."""
        profile = self.profile
        time = profile.overhead_read if is_read else profile.overhead_write
        time += profile.fabric_hop_latency * self.fabric_hops
        time += self._transfer_time(spec.transfer_size)
        if not spec.is_sequential:
            time += self.disk.positioning_read if is_read else self.disk.positioning_write
            chunk = profile.chunk_read if is_read else profile.chunk_write
            time += chunk * self._extra_crossings(spec.transfer_size)
        return SimSeconds(time)

    def service_components(
        self, spec: WorkloadSpec, is_read: bool
    ) -> "Tuple[float, float]":
        """``(seek_rotation, throttle)`` parts of one op's service time.

        Mirrors :meth:`op_service_time` term by term for latency
        attribution: ``seek_rotation`` is the mechanical positioning
        cost (random I/O only); ``throttle`` covers protocol overhead,
        fabric hop latency and track-crossing chunk stalls — everything
        that is not media transfer.  Callers derive the transfer part
        as the *residual* ``service - seek - throttle`` so the three
        components sum to the already-scheduled service time exactly,
        whatever floating-point grouping produced it.
        """
        profile = self.profile
        throttle = profile.overhead_read if is_read else profile.overhead_write
        throttle += profile.fabric_hop_latency * self.fabric_hops
        seek = 0.0
        if not spec.is_sequential:
            seek = (
                self.disk.positioning_read if is_read else self.disk.positioning_write
            )
            chunk = profile.chunk_read if is_read else profile.chunk_write
            throttle += chunk * self._extra_crossings(spec.transfer_size)
        return seek, throttle

    def mix_penalty(self, spec: WorkloadSpec) -> float:
        """Extra expected time per op due to read/write turnaround.

        The penalty applies per direction change; with read fraction
        ``p`` the per-op change probability is ``2·p·(1-p)`` (0.5 at a
        50/50 mix, 0 for pure workloads).
        """
        p = spec.read_fraction
        change_rate = 2.0 * p * (1.0 - p)
        if change_rate == 0.0:
            return 0.0
        if spec.is_sequential:
            unit = (
                self.profile.mix_fixed
                + self.profile.mix_transfer_factor * self._transfer_time(spec.transfer_size)
            )
        else:
            unit = self.profile.rand_mix_fixed
        # Normalize so the calibrated constants are exact at 50/50.
        return unit * (change_rate / 0.5)

    def service_time(self, spec: WorkloadSpec) -> SimSeconds:
        """Expected service time per I/O across the read/write mix."""
        p = spec.read_fraction
        expected = 0.0
        if p > 0:
            expected += p * self.op_service_time(spec, is_read=True)
        if p < 1:
            expected += (1 - p) * self.op_service_time(spec, is_read=False)
        return SimSeconds(expected + self.mix_penalty(spec))

    # -- steady-state throughput ------------------------------------------

    def throughput(self, spec: WorkloadSpec) -> ThroughputEstimate:
        """Queue-depth-1 steady-state throughput (the Table II setup)."""
        service = self.service_time(spec)
        iops = 1.0 / service
        return ThroughputEstimate(
            spec=spec,
            service_time=service,
            iops=iops,
            bytes_per_second=BytesPerSec(iops * spec.transfer_size),
        )

    def demand_bytes_per_second(self, spec: WorkloadSpec) -> BytesPerSec:
        """The disk-limited data rate (input to the fabric share model)."""
        return self.throughput(spec).bytes_per_second
