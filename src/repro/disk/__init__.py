"""Disk models: service times, spin states, and the simulated device."""

from repro.disk.device import DiskBusyError, DiskOfflineError, IoRequest, SimulatedDisk
from repro.disk.model import DiskModel, ThroughputEstimate
from repro.disk.specs import (
    CONNECTIONS,
    ConnectionProfile,
    ConnectionType,
    DiskPowerProfile,
    DiskSpec,
    DT01ACA300,
    TOSHIBA_POWER_SATA,
    TOSHIBA_POWER_USB,
)
from repro.disk.states import DiskPowerState, DiskStateError, SpinStateMachine

__all__ = [
    "CONNECTIONS",
    "ConnectionProfile",
    "ConnectionType",
    "DiskBusyError",
    "DiskModel",
    "DiskOfflineError",
    "DiskPowerProfile",
    "DiskPowerState",
    "DiskSpec",
    "DiskStateError",
    "DT01ACA300",
    "IoRequest",
    "SimulatedDisk",
    "SpinStateMachine",
    "ThroughputEstimate",
    "TOSHIBA_POWER_SATA",
    "TOSHIBA_POWER_USB",
]
