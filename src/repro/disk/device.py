"""A simulated hard disk serving I/O in the discrete-event world.

:class:`SimulatedDisk` combines the analytic service-time model with a
power-state machine and a FIFO command queue (queue depth 1 at the
media, as in the prototype's Iometer runs).  It also keeps per-state
residency times so the power-accounting layer can integrate energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional, Tuple

from repro.disk.model import DiskModel
from repro.disk.specs import (
    ConnectionType,
    DiskPowerProfile,
    DiskSpec,
    DT01ACA300,
    TOSHIBA_POWER_SATA,
    TOSHIBA_POWER_USB,
)
from repro.disk.states import DiskPowerState, DiskStateError, SpinStateMachine
from repro.obs import DEFAULT_DEPTH_BUCKETS
from repro.obs.trace import NULL_SCOPE, TraceScope
from repro.sim import Event, Resource, Simulator
from repro.workload.specs import AccessPattern, WorkloadSpec

__all__ = [
    "DiskBusyError",
    "DiskOfflineError",
    "IoRequest",
    "SimulatedDisk",
    "SpinUpListener",
]

#: ``(disk_id, sim_now, blame_scope)`` — fired synchronously inside
#: :meth:`SimulatedDisk.spin_up`, so listeners (spin-down policies, the
#: energy ledger) see the exact sim time and owning trace of the surge.
SpinUpListener = Callable[[str, float, TraceScope], None]

#: ``(tenant, trace_id)`` ownership stamp for a busy/spin-up interval.
OwnerStamp = Optional[Tuple[Optional[str], int]]


class DiskOfflineError(Exception):
    """I/O issued to a powered-off or failed disk."""


class DiskBusyError(Exception):
    """Raised when an exclusive operation overlaps another."""


@dataclass(frozen=True)
class IoRequest:
    """One block I/O against a disk."""

    offset: int
    size: int
    is_read: bool
    sequential_hint: bool = True

    def __post_init__(self) -> None:
        if self.offset < 0 or self.size <= 0:
            raise ValueError(f"invalid I/O geometry offset={self.offset} size={self.size}")


class SimulatedDisk:
    """One disk: service model + spin states + command queue."""

    def __init__(
        self,
        sim: Simulator,
        disk_id: str,
        spec: DiskSpec = DT01ACA300,
        connection: ConnectionType = ConnectionType.HUB_AND_SWITCH,
        initial_state: DiskPowerState = DiskPowerState.IDLE,
    ):
        self.sim = sim
        self.disk_id = disk_id
        self.spec = spec
        self.connection = connection
        self.model = DiskModel(disk=spec, connection=connection)
        self.states = SpinStateMachine(initial_state)
        self.failed = False
        self._queue = Resource(sim, capacity=1, name=f"disk-queue:{disk_id}")
        self._last_io_end = 0.0
        self._last_offset_end: Optional[int] = None
        self._last_is_read: Optional[bool] = None
        self.completed_ios = 0
        self.bytes_read = 0
        self.bytes_written = 0
        # Per-state residency bookkeeping for energy accounting.
        self._state_entered = sim.now
        self._residency: Dict[DiskPowerState, float] = {s: 0.0 for s in DiskPowerState}
        # Ownership stamps for the energy ledger: who the current ACTIVE
        # (busy) interval and in-flight spin-up belong to.  None when the
        # work has no live owning trace (system I/O, stale scopes).
        self.busy_owner: OwnerStamp = None
        self.spinup_owner: OwnerStamp = None
        self._spin_listeners: List[SpinUpListener] = []
        # Obs instruments, fetched once; aggregated across all disks of a
        # simulator so the dump stays small at deployment scale.
        metrics = sim.metrics
        self._m_ios = metrics.counter("disk.ios")
        self._m_bytes_read = metrics.counter("disk.bytes_read")
        self._m_bytes_written = metrics.counter("disk.bytes_written")
        self._m_spin_ups = metrics.counter("disk.spin_ups")
        self._m_queue_depth = metrics.histogram(
            "disk.queue_depth", DEFAULT_DEPTH_BUCKETS
        )
        self._m_service = metrics.histogram("disk.service_seconds")

    # -- power-state handling --------------------------------------------

    @property
    def power_state(self) -> DiskPowerState:
        return self.states.state

    def _enter_state(self, new_state: DiskPowerState) -> None:
        self._residency[self.states.state] += self.sim.now - self._state_entered
        self.states.transition(new_state)
        self._state_entered = self.sim.now

    def residency(self, state: DiskPowerState) -> float:
        """Total time spent in ``state`` so far (including current)."""
        total = self._residency[state]
        if self.states.state is state:
            total += self.sim.now - self._state_entered
        return total

    def power_draw(self, profile: DiskPowerProfile) -> float:
        """Instantaneous watts for a given power profile."""
        state = self.states.state
        if state is DiskPowerState.POWERED_OFF:
            return 0.0
        if state is DiskPowerState.SPUN_DOWN:
            return profile.spun_down
        if state is DiskPowerState.ACTIVE:
            return profile.active
        if state is DiskPowerState.SPINNING_UP:
            # Spin-up draws peak current; model as active draw.
            return profile.active
        return profile.idle

    def default_power_profile(self) -> DiskPowerProfile:
        if self.connection is ConnectionType.SATA:
            return TOSHIBA_POWER_SATA
        return TOSHIBA_POWER_USB

    def energy_joules(self, profile: Optional[DiskPowerProfile] = None) -> float:
        """Energy integrated over state residencies so far."""
        prof = profile or self.default_power_profile()
        watts = {
            DiskPowerState.POWERED_OFF: 0.0,
            DiskPowerState.SPUN_DOWN: prof.spun_down,
            DiskPowerState.SPINNING_UP: prof.active,
            DiskPowerState.IDLE: prof.idle,
            DiskPowerState.ACTIVE: prof.active,
        }
        return sum(self.residency(state) * watts[state] for state in DiskPowerState)

    def spin_down(self) -> None:
        if self.states.state is DiskPowerState.IDLE:
            self._enter_state(DiskPowerState.SPUN_DOWN)

    def power_off(self) -> None:
        if self.states.state in (DiskPowerState.IDLE, DiskPowerState.SPUN_DOWN):
            self._enter_state(DiskPowerState.POWERED_OFF)

    def power_on(self) -> None:
        if self.states.state is DiskPowerState.POWERED_OFF:
            self._enter_state(DiskPowerState.SPUN_DOWN)

    def add_spin_up_listener(self, listener: SpinUpListener) -> None:
        """Notify ``listener(disk_id, now, blame)`` on every spin-up start."""
        self._spin_listeners.append(listener)

    def remove_spin_up_listener(self, listener: SpinUpListener) -> None:
        if listener in self._spin_listeners:
            self._spin_listeners.remove(listener)

    def spin_up(self, blame: TraceScope = NULL_SCOPE) -> Event:
        """Begin spinning up; the returned event fires when ready.

        ``blame`` names the request whose arrival forced the surge; it
        stamps :attr:`spinup_owner` for the energy ledger and rides the
        spin-up listener callbacks (exact sim time, owning trace).
        """
        if self.states.state is DiskPowerState.POWERED_OFF:
            raise DiskStateError("power the disk on before spinning up")
        done = self.sim.event()
        if self.states.is_spinning:
            done.succeed()
            return done
        if self.states.state is DiskPowerState.SPINNING_UP:
            raise DiskBusyError("spin-up already in progress")
        self._enter_state(DiskPowerState.SPINNING_UP)
        self._m_spin_ups.inc()
        self.spinup_owner = blame.owner()
        for listener in self._spin_listeners:
            listener(self.disk_id, self.sim.now, blame)

        def finish() -> None:
            self._enter_state(DiskPowerState.IDLE)
            self.spinup_owner = None
            done.succeed()

        self.sim.call_in(self.spec.spin_up_time, finish)
        return done

    # -- failure ----------------------------------------------------------

    def fail(self) -> None:
        self.failed = True

    def repair(self) -> None:
        self.failed = False

    # -- I/O ----------------------------------------------------------------

    def _spec_for(self, request: IoRequest) -> WorkloadSpec:
        sequential = request.sequential_hint and (
            self._last_offset_end is None or request.offset == self._last_offset_end
        )
        return WorkloadSpec(
            transfer_size=request.size,
            pattern=AccessPattern.SEQUENTIAL if sequential else AccessPattern.RANDOM,
            read_fraction=1.0 if request.is_read else 0.0,
        )

    def submit(self, request: IoRequest, scope: TraceScope = NULL_SCOPE) -> "Event":
        """Submit one I/O; returns a process event with the service time."""
        # Depth seen by this request: in-service holders plus waiters.
        self._m_queue_depth.observe(self._queue.users + self._queue.queue_length)
        return self.sim.process(self._serve(request, scope))

    def _serve(
        self, request: IoRequest, scope: TraceScope = NULL_SCOPE
    ) -> Generator[Event, None, float]:
        # Everything between the initiator's send and this point is
        # request travel + endpoint dispatch.
        scope.phase("network")
        if self.failed:
            raise DiskOfflineError(f"{self.disk_id}: disk failed")
        if self.states.state is DiskPowerState.POWERED_OFF:
            raise DiskOfflineError(f"{self.disk_id}: disk powered off")
        yield self._queue.request()
        scope.phase("disk_queue")
        try:
            if self.failed:
                raise DiskOfflineError(f"{self.disk_id}: disk failed")
            if not self.states.is_spinning:
                if self.states.state is DiskPowerState.SPUN_DOWN:
                    yield self.spin_up(blame=scope)
                else:  # SPINNING_UP from someone else's wake-up
                    while not self.states.is_spinning:
                        yield self.sim.timeout(0.05)
                scope.phase("spinup")
            spec = self._spec_for(request)
            self.busy_owner = scope.owner()
            was_idle = self.states.state is DiskPowerState.IDLE
            if was_idle:
                self._enter_state(DiskPowerState.ACTIVE)
            service = self.model.service_time(spec)
            # Direction turnaround: charge the calibrated mixed-workload
            # penalty whenever consecutive commands change direction, so
            # alternating read/write streams reproduce the Table II
            # 50%-mix columns.
            turnaround = 0.0
            if self._last_is_read is not None and self._last_is_read != request.is_read:
                profile = self.model.profile
                if spec.is_sequential:
                    turnaround = (
                        profile.mix_fixed
                        + profile.mix_transfer_factor
                        * (request.size / self.spec.media_rate)
                    )
                else:
                    turnaround = profile.rand_mix_fixed
                service += turnaround
            self._last_is_read = request.is_read
            service_started = self.sim.now
            yield self.sim.timeout(service)
            if scope.enabled:
                # Decompose the single already-elapsed service interval
                # retroactively (no extra sim events, so traced and
                # untraced runs replay identically): positioning, then
                # protocol/fabric/turnaround throttle, then the media
                # transfer as the exact residual.
                seek, throttle = self.model.service_components(
                    spec, request.is_read
                )
                throttle += turnaround
                scope.phase_at("seek_rotation", service_started + seek)
                scope.phase_at(
                    "bandwidth_throttle", service_started + seek + throttle
                )
                scope.phase("transfer")
            if self.failed:
                raise DiskOfflineError(f"{self.disk_id}: disk failed mid-transfer")
            self._last_offset_end = request.offset + request.size
            self._last_io_end = self.sim.now
            self.completed_ios += 1
            self._m_ios.inc()
            self._m_service.observe(service)
            if request.is_read:
                self.bytes_read += request.size
                self._m_bytes_read.inc(request.size)
            else:
                self.bytes_written += request.size
                self._m_bytes_written.inc(request.size)
            if self.states.state is DiskPowerState.ACTIVE:
                self._enter_state(DiskPowerState.IDLE)
            return service
        finally:
            self.busy_owner = None
            self._queue.release()

    @property
    def idle_since(self) -> float:
        """Simulated time of the last I/O completion."""
        return self._last_io_end
