"""Disk and connection parameters, calibrated to the paper's prototype.

The prototype uses Toshiba DT01ACA300 3TB 7200rpm disks (§V-B),
connected either natively over SATA or through a SATA-to-USB 3.0 bridge
(SSK HE-G130).  The service-time model in :mod:`repro.disk.model`
decomposes one I/O into::

    T = command_overhead(connection, op)
      + positioning(op)              # random access only
      + transfer_size / media_rate
      + chunk_penalty(connection, op) * extra_track_crossings  # random only
      + mix_penalty(connection, size)                          # mixed only

Every constant below is calibrated from Table II of the paper (see the
inline derivations); the *model* is mechanical, the *numbers* are the
prototype's.  Power constants come from Table III (disk) and §VII-C
(bridge, switch, hub in :mod:`repro.fabric.power`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "ConnectionProfile",
    "ConnectionType",
    "DiskPowerProfile",
    "DiskSpec",
    "CONNECTIONS",
    "DT01ACA300",
    "TOSHIBA_POWER_SATA",
    "TOSHIBA_POWER_USB",
]


class ConnectionType(enum.Enum):
    """The three connection configurations of Table II."""

    SATA = "SATA"
    USB = "USB"
    HUB_AND_SWITCH = "H&S"


@dataclass(frozen=True)
class DiskSpec:
    """Mechanical parameters of one disk model.

    ``positioning_read/write`` are the average seek + rotational-latency
    costs of a random access (writes pay extra settle time; the Table II
    derivation gives 5.14 ms for reads and 11.45 ms for writes on the
    DT01ACA300).  ``track_bytes`` approximates the data per track on the
    outer zones; random transfers larger than a track pay a head-switch
    penalty per extra track (the *chunk penalty*, which depends on the
    connection because the USB bridge write-caches across crossings).
    """

    name: str
    capacity_bytes: int
    rpm: int
    media_rate: float  # sustained B/s on outer zones
    positioning_read: float  # s
    positioning_write: float  # s
    track_bytes: int
    spin_up_time: float  # s, spun-down -> ready
    spin_down_time: float  # s, ready -> spun-down

    @property
    def rotation_time(self) -> float:
        return 60.0 / self.rpm


@dataclass(frozen=True)
class ConnectionProfile:
    """Per-connection service-time constants (calibrated to Table II).

    * ``overhead_read/write`` — fixed per-command cost.  SATA: 54/68 µs.
      USB adds the bridge's protocol translation: 165/141 µs (writes are
      cheaper than reads through the bridge because it acknowledges
      writes from its buffer).
    * ``chunk_read/write`` — extra cost per additional track crossed by
      a *random* transfer.  On SATA a random 4 MB write pays ~11.9 ms
      per crossing (head settle, Table II: 57.5 MB/s); the bridge's
      write-back cache halves it and its read-ahead hides read
      crossings entirely (USB 4 MB random read is *faster* than SATA,
      147.9 vs 129.1 MB/s).
    * ``mix_fixed/mix_transfer_factor`` — the penalty a 50/50 mix pays
      per operation over the pure-workload mean, modelled as
      ``a + b * transfer_time`` (read/write direction turnaround).
    * ``rand_mix_fixed`` — the (much smaller) mixing penalty for random
      workloads, where turnaround hides inside positioning.
    * ``fabric_hop_latency`` — added per hub/switch hop (H&S column);
      negligible, per the paper's conclusion.
    """

    connection: ConnectionType
    overhead_read: float
    overhead_write: float
    chunk_read: float
    chunk_write: float
    mix_fixed: float
    mix_transfer_factor: float
    rand_mix_fixed: float
    fabric_hop_latency: float = 0.0


# -- Toshiba DT01ACA300 (3TB, 7200 rpm) --------------------------------------

DT01ACA300 = DiskSpec(
    name="TOSHIBA DT01ACA300",
    capacity_bytes=3 * 10**12,
    rpm=7200,
    # Table II, 4MB sequential read: 184.8-185.8 MB/s -> ~186 MB/s media.
    media_rate=186e6,
    # Table II, 4KB random read @ SATA: 191.9 IO/s = 5.211 ms; minus
    # 54 us overhead + 21 us transfer -> 5.14 ms positioning.
    positioning_read=5.14e-3,
    # 4KB random write @ SATA: 86.9 IO/s = 11.507 ms -> 11.45 ms.
    positioning_write=11.45e-3,
    track_bytes=1 * 1024 * 1024,
    spin_up_time=8.0,
    spin_down_time=3.0,
)


_SATA = ConnectionProfile(
    connection=ConnectionType.SATA,
    # 4KB seq read 13378 IO/s -> 74.75 us = overhead + 21 us transfer.
    overhead_read=53.7e-6,
    # 4KB seq write 11211 IO/s -> 89.2 us.
    overhead_write=68.2e-6,
    # 4MB random read 129.1 MB/s -> 31.0 ms; 3 extra crossings -> 1.1 ms each.
    chunk_read=1.10e-3,
    # 4MB random write 57.5 MB/s -> 69.6 ms; 3 crossings -> 11.9 ms each.
    chunk_write=11.87e-3,
    # 4KB seq 50% 8066 IO/s and 4MB seq 50% 105.7 MB/s -> a + b*T fit.
    mix_fixed=28e-6,
    mix_transfer_factor=0.672,
    # 4KB rand 50% 105.4 IO/s vs 119.6 mean -> ~1.1 ms.
    rand_mix_fixed=1.13e-3,
)

_USB = ConnectionProfile(
    connection=ConnectionType.USB,
    # 4KB seq read 5380 IO/s -> 185.9 us.
    overhead_read=164.9e-6,
    # 4KB seq write 6166 IO/s -> 162.2 us.
    overhead_write=141.2e-6,
    # 4MB random read 147.9 MB/s: read-ahead hides crossings.
    chunk_read=0.0,
    # 4MB random write 79.3 MB/s -> 50.4 ms; 3 crossings -> 5.4 ms each.
    chunk_write=5.38e-3,
    # 4KB seq 50% 4294 IO/s and 4MB seq 50% 119.7 MB/s -> a + b*T fit.
    mix_fixed=55e-6,
    mix_transfer_factor=0.470,
    rand_mix_fixed=1.0e-3,
)

_HS = ConnectionProfile(
    connection=ConnectionType.HUB_AND_SWITCH,
    # Table II shows H&S within noise of plain USB: hub/switch hops add
    # ~1 us each (two hubs + two switches on the prototype path).
    overhead_read=_USB.overhead_read,
    overhead_write=_USB.overhead_write,
    chunk_read=_USB.chunk_read,
    chunk_write=_USB.chunk_write,
    mix_fixed=_USB.mix_fixed,
    mix_transfer_factor=_USB.mix_transfer_factor,
    rand_mix_fixed=_USB.rand_mix_fixed,
    fabric_hop_latency=1e-6,
)

CONNECTIONS = {
    ConnectionType.SATA: _SATA,
    ConnectionType.USB: _USB,
    ConnectionType.HUB_AND_SWITCH: _HS,
}


@dataclass(frozen=True)
class DiskPowerProfile:
    """Power draw (watts) of one disk in each state (Table III)."""

    spun_down: float
    idle: float
    active: float


#: Table III, SATA row: the bare disk.
TOSHIBA_POWER_SATA = DiskPowerProfile(spun_down=0.05, idle=4.71, active=6.66)

#: Table III, USB-bridge row: disk + bridge as measured at the enclosure.
TOSHIBA_POWER_USB = DiskPowerProfile(spun_down=1.56, idle=5.76, active=7.56)
