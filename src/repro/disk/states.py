"""Disk power-state machine (spin up/down, §IV-F and Table III)."""

from __future__ import annotations

import enum

__all__ = ["DiskPowerState", "DiskStateError", "SpinStateMachine"]


class DiskStateError(Exception):
    """Raised on an invalid power-state transition."""


class DiskPowerState(enum.Enum):
    POWERED_OFF = "powered_off"
    SPUN_DOWN = "spun_down"
    SPINNING_UP = "spinning_up"
    IDLE = "idle"
    ACTIVE = "active"


# Allowed transitions; ACTIVE<->IDLE toggles freely with I/O activity.
_TRANSITIONS = {
    DiskPowerState.POWERED_OFF: {DiskPowerState.SPUN_DOWN},
    DiskPowerState.SPUN_DOWN: {DiskPowerState.SPINNING_UP, DiskPowerState.POWERED_OFF},
    DiskPowerState.SPINNING_UP: {DiskPowerState.IDLE},
    DiskPowerState.IDLE: {
        DiskPowerState.ACTIVE,
        DiskPowerState.SPUN_DOWN,
        DiskPowerState.POWERED_OFF,
    },
    DiskPowerState.ACTIVE: {DiskPowerState.IDLE},
}


class SpinStateMachine:
    """Tracks one disk's power state and counts spin cycles.

    The spin-up counter feeds the adaptive spin-down policy of §IV-F
    (a host lengthens the idle timeout of a disk that thrashes).
    """

    def __init__(self, initial: DiskPowerState = DiskPowerState.IDLE):
        self.state = initial
        self.spin_up_count = 0
        self.spin_down_count = 0

    @property
    def is_spinning(self) -> bool:
        return self.state in (DiskPowerState.IDLE, DiskPowerState.ACTIVE)

    @property
    def is_available(self) -> bool:
        """True when the disk can accept I/O without a spin-up."""
        return self.is_spinning

    def transition(self, new_state: DiskPowerState) -> None:
        if new_state is self.state:
            return
        allowed = _TRANSITIONS[self.state]
        if new_state not in allowed:
            raise DiskStateError(
                f"illegal transition {self.state.value} -> {new_state.value}"
            )
        if new_state is DiskPowerState.SPINNING_UP:
            self.spin_up_count += 1
        if new_state is DiskPowerState.SPUN_DOWN and self.state is not DiskPowerState.POWERED_OFF:
            self.spin_down_count += 1
        self.state = new_state
