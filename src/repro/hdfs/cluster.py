"""Assembling a mini-HDFS cluster on top of a UStore deployment (§VII-B).

The paper's overlay experiment: Hadoop on the four prototype hosts, one
namenode and three datanodes, three-way replication, with UStore disks
as datanode storage.  :func:`build_hdfs_on_ustore` reproduces that
arrangement over a :class:`~repro.cluster.deployment.Deployment`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List

from repro.cluster.deployment import Deployment
from repro.hdfs.client import HdfsClient
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode
from repro.sim import Event
from repro.workload.specs import MB

__all__ = ["HdfsOnUstore", "build_hdfs_on_ustore"]


@dataclass
class HdfsOnUstore:
    deployment: Deployment
    namenode: NameNode
    datanodes: Dict[str, DataNode]
    spaces: Dict[str, str]  # dn id -> backing UStore space id

    def new_client(self, name: str) -> HdfsClient:
        return HdfsClient(
            self.deployment.sim, self.deployment.network, name, self.namenode.address
        )

    def backing_disk_of(self, dn_id: str) -> str:
        from repro.cluster.namespace import parse_space_id

        return parse_space_id(self.spaces[dn_id])[1]


def build_hdfs_on_ustore(
    deployment: Deployment,
    num_datanodes: int = 3,
    space_bytes: int = 2048 * MB,
    replication: int = 3,
) -> Generator[Event, None, HdfsOnUstore]:
    """Allocate UStore spaces and start the mini-HDFS processes.

    One host runs the namenode; ``num_datanodes`` others each run a
    datanode whose storage is a UStore space allocated with that host
    as the locality hint (matching §VII-B: one host for the namenode,
    three hosts for datanodes, three replicas).
    """
    sim = deployment.sim
    hosts = deployment.fabric.hosts()
    if num_datanodes + 1 > len(hosts):
        raise ValueError("need one host for the namenode plus one per datanode")
    namenode = NameNode(
        sim, deployment.network, address="namenode", replication=replication
    )
    datanodes: Dict[str, DataNode] = {}
    spaces: Dict[str, str] = {}
    used_disks: List[str] = []
    for index, host in enumerate(hosts[1 : num_datanodes + 1]):
        dn_id = f"dn{index}"
        client = deployment.new_client(f"hdfs.{dn_id}", service="hdfs")
        # Replicas must live on distinct spindles, so exclude the disks
        # earlier datanodes received (overriding same-service affinity).
        info = yield from client.allocate(
            space_bytes, locality_hint=host, exclude_disks=used_disks
        )
        from repro.cluster.namespace import parse_space_id

        used_disks.append(parse_space_id(info["space_id"])[1])
        space = yield from client.mount(info["space_id"])
        datanodes[dn_id] = DataNode(
            sim,
            deployment.network,
            dn_id,
            namenode.address,
            storage=space,
            capacity=space_bytes,
        )
        spaces[dn_id] = info["space_id"]
    return HdfsOnUstore(
        deployment=deployment, namenode=namenode, datanodes=datanodes, spaces=spaces
    )
