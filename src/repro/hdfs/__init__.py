"""Mini-HDFS overlay service used by the §VII-B experiment."""

from repro.hdfs.client import HdfsClient, WriteReport
from repro.hdfs.cluster import HdfsOnUstore, build_hdfs_on_ustore
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import BlockInfo, NameNode

__all__ = [
    "BlockInfo",
    "DataNode",
    "HdfsClient",
    "HdfsOnUstore",
    "NameNode",
    "WriteReport",
    "build_hdfs_on_ustore",
]
