"""Mini-HDFS datanode storing its blocks on a UStore mounted space.

Exactly the deployment of §VII-B: the datanode process runs on a
UStore host, and its block storage is a UStore space mounted through
the ClientLib.  When the Controller switches the backing disk to
another host, the datanode's I/O stalls for the remount window and then
resumes — which the write pipeline surfaces to the HDFS client as a
transient, seconds-long error.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.cluster.clientlib import ClientLib, MountedSpace, StorageUnavailableError
from repro.net.network import Network
from repro.net.rpc import RemoteError, RpcClient, RpcServer, RpcTimeout
from repro.sim import Event, Simulator

__all__ = ["DataNode"]


class DataNode:
    """One datanode: block store + pipeline forwarding."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        dn_id: str,
        namenode_address: str,
        storage: MountedSpace,
        capacity: int,
        heartbeat_interval: float = 1.0,
        forward_timeout: float = 8.0,
    ):
        self.sim = sim
        self.dn_id = dn_id
        self.address = f"dn.{dn_id}"
        self.namenode_address = namenode_address
        self.storage = storage
        self.capacity = capacity
        self.heartbeat_interval = heartbeat_interval
        self.forward_timeout = forward_timeout
        self.alive = True
        self.network = network
        # Local block map: block id -> (offset, size committed so far).
        self.block_offsets: Dict[str, int] = {}
        self.block_sizes: Dict[str, int] = {}
        self._next_offset = 0
        self.packets_stored = 0
        self.rpc = RpcServer(sim, network, self.address)
        self.rpc_client = RpcClient(sim, network, f"{self.address}.client")
        self.rpc.register("dn.write_packet", self._on_write_packet)
        self.rpc.register("dn.read", self._on_read)
        self.rpc.register("dn.blocks", self._on_blocks)
        sim.process(self._register_and_heartbeat())

    def crash(self) -> None:
        self.alive = False
        self.network.set_alive(self.address, False)
        self.network.set_alive(f"{self.address}.client", False)

    def _register_and_heartbeat(self) -> Generator[Event, None, None]:
        while True:
            try:
                yield from self.rpc_client.call(
                    self.namenode_address, "nn.register", self.dn_id, self.address,
                    timeout=2.0,
                )
                break
            except (RpcTimeout, RemoteError):
                yield self.sim.timeout(1.0)
        while self.alive:
            yield self.sim.timeout(self.heartbeat_interval)
            try:
                yield from self.rpc_client.call(
                    self.namenode_address, "nn.heartbeat", self.dn_id, timeout=2.0
                )
            except (RpcTimeout, RemoteError):
                continue

    # -- block placement within the mounted space ---------------------------

    def _offset_for(self, block_id: str, block_capacity: int) -> int:
        if block_id not in self.block_offsets:
            if self._next_offset + block_capacity > self.capacity:
                raise RuntimeError(f"{self.dn_id}: out of space")
            self.block_offsets[block_id] = self._next_offset
            self.block_sizes[block_id] = 0
            self._next_offset += block_capacity
        return self.block_offsets[block_id]

    # -- RPC handlers -----------------------------------------------------------

    def _on_write_packet(
        self,
        block_id: str,
        packet_offset: int,
        size: int,
        block_capacity: int,
        downstream: List[dict],
    ):
        """Persist one packet locally, then forward down the pipeline."""

        def handle() -> Generator[Event, None, dict]:
            base = self._offset_for(block_id, block_capacity)
            # Persist to the UStore space; a disk switch mid-write shows
            # up here as a remount-length stall.
            yield from self.storage.write(base + packet_offset, size)
            self.block_sizes[block_id] = max(
                self.block_sizes[block_id], packet_offset + size
            )
            self.packets_stored += 1
            acks = [self.dn_id]
            if downstream:
                nxt, rest = downstream[0], downstream[1:]
                reply = yield from self.rpc_client.call(
                    nxt["address"],
                    "dn.write_packet",
                    block_id,
                    packet_offset,
                    size,
                    block_capacity,
                    rest,
                    timeout=self.forward_timeout,
                    request_size=size + 256,
                )
                acks.extend(reply["acks"])
            return {"acks": acks}

        return handle()

    def _on_read(self, block_id: str, offset: int, size: int):
        if block_id not in self.block_offsets:
            raise KeyError(f"{self.dn_id} has no {block_id}")
        stored = self.block_sizes[block_id]
        if offset + size > stored:
            raise ValueError(f"read past committed data ({offset + size} > {stored})")

        def handle() -> Generator[Event, None, dict]:
            base = self.block_offsets[block_id]
            result = yield from self.storage.read(base + offset, size)
            return {"ok": True, "dn": self.dn_id, "service_time": result["service_time"]}

        return handle()

    def _on_blocks(self) -> List[str]:
        return sorted(self.block_offsets)
