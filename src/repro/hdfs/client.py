"""Mini-HDFS client: streaming writes with pipeline recovery.

Reproduces the client behaviour the paper relies on in §VII-B: when a
packet ack fails (a datanode stalled because its UStore disk was
switched away), the client retries, excluding the slow node only after
repeated failures — so a disk switch appears as a few seconds of error
and the write then resumes.  Reads simply pick another replica, so they
are not interrupted at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from repro.net.network import Network
from repro.net.rpc import RemoteError, RpcClient, RpcTimeout
from repro.sim import Event, Simulator
from repro.workload.specs import MB

__all__ = ["HdfsClient", "WriteReport"]

DEFAULT_BLOCK_SIZE = 64 * MB
DEFAULT_PACKET_SIZE = 4 * MB


@dataclass
class WriteReport:
    """What the client observed while writing a file."""

    path: str
    bytes_written: int = 0
    packets: int = 0
    errors: int = 0
    stall_seconds: float = 0.0
    longest_stall: float = 0.0
    pipelines_rebuilt: int = 0
    error_times: List[float] = field(default_factory=list)
    packet_latencies: List[float] = field(default_factory=list)

    @property
    def slowest_packet(self) -> float:
        """Worst client-visible packet time, including retries — the
        §VII-B disruption metric ('error only for several seconds')."""
        return max(self.packet_latencies, default=0.0)


class HdfsClient:
    """Write/read files against the mini-HDFS cluster."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        address: str,
        namenode_address: str = "namenode",
        block_size: int = DEFAULT_BLOCK_SIZE,
        packet_size: int = DEFAULT_PACKET_SIZE,
        packet_timeout: float = 3.0,
        max_retries_per_pipeline: int = 2,
    ):
        self.sim = sim
        self.address = address
        self.namenode_address = namenode_address
        self.block_size = block_size
        self.packet_size = packet_size
        self.packet_timeout = packet_timeout
        self.max_retries_per_pipeline = max_retries_per_pipeline
        self.rpc = RpcClient(sim, network, address)

    # -- namenode helpers ------------------------------------------------------

    def _nn(self, method: str, *args) -> Generator[Event, None, object]:
        result = yield from self.rpc.call(
            self.namenode_address, method, *args, timeout=5.0
        )
        return result

    # -- write path ---------------------------------------------------------------

    def write_file(self, path: str, size: int) -> Generator[Event, None, WriteReport]:
        """Create ``path`` and stream ``size`` bytes through pipelines."""
        report = WriteReport(path=path)
        yield from self._nn("nn.create", path)
        remaining = size
        while remaining > 0:
            block_bytes = min(self.block_size, remaining)
            yield from self._write_block(path, block_bytes, report)
            remaining -= block_bytes
        return report

    def _write_block(
        self, path: str, block_bytes: int, report: WriteReport
    ) -> Generator[Event, None, None]:
        exclude: List[str] = []
        grant = yield from self._nn("nn.add_block", path, exclude)
        pipeline = grant["pipeline"]
        block_id = grant["block_id"]
        offset = 0
        consecutive_failures = 0
        packet_start = self.sim.now
        while offset < block_bytes:
            size = min(self.packet_size, block_bytes - offset)
            head, rest = pipeline[0], pipeline[1:]
            attempt_start = self.sim.now
            try:
                reply = yield from self.rpc.call(
                    head["address"],
                    "dn.write_packet",
                    block_id,
                    offset,
                    size,
                    self.block_size,
                    rest,
                    timeout=self.packet_timeout,
                    request_size=size + 256,
                )
                offset += size
                report.bytes_written += size
                report.packets += 1
                report.packet_latencies.append(self.sim.now - packet_start)
                packet_start = self.sim.now
                consecutive_failures = 0
            except (RpcTimeout, RemoteError):
                stall = self.sim.now - attempt_start
                report.errors += 1
                report.error_times.append(attempt_start)
                report.stall_seconds += stall
                report.longest_stall = max(report.longest_stall, stall)
                consecutive_failures += 1
                if consecutive_failures > self.max_retries_per_pipeline and len(pipeline) > 1:
                    # Drop the unresponsive head and continue with the
                    # remaining replicas (HDFS pipeline recovery).
                    pipeline = pipeline[1:]
                    report.pipelines_rebuilt += 1
                    consecutive_failures = 0
        replicas = [stage["dn_id"] for stage in pipeline]
        yield from self._nn("nn.commit_block", block_id, block_bytes, replicas)

    # -- read path -----------------------------------------------------------------

    def read_file(self, path: str) -> Generator[Event, None, dict]:
        """Read every block, preferring the first reachable replica."""
        blocks = yield from self._nn("nn.locate", path)
        bytes_read = 0
        replica_switches = 0
        for block in blocks:
            offset = 0
            while offset < block["size"]:
                size = min(self.packet_size, block["size"] - offset)
                done = False
                for index, replica in enumerate(block["replicas"]):
                    try:
                        yield from self.rpc.call(
                            replica["address"],
                            "dn.read",
                            block["block_id"],
                            offset,
                            size,
                            timeout=self.packet_timeout,
                            response_size=size + 256,
                        )
                        done = True
                        if index > 0:
                            replica_switches += 1
                        break
                    except (RpcTimeout, RemoteError):
                        continue
                if not done:
                    raise RuntimeError(
                        f"no replica served {block['block_id']} @ {offset}"
                    )
                offset += size
                bytes_read += size
        return {"bytes_read": bytes_read, "replica_switches": replica_switches}
