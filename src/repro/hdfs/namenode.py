"""Mini-HDFS namenode (the §VII-B overlay experiment's metadata server).

Tracks files as block lists, block replica locations, and datanode
liveness through heartbeats.  Placement picks the least-loaded live
datanodes, which is all the replication policy the experiment needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.net.network import Network
from repro.net.rpc import RpcServer
from repro.sim import Simulator

__all__ = ["BlockInfo", "NameNode"]

DEFAULT_REPLICATION = 3


@dataclass
class BlockInfo:
    block_id: str
    size: int
    replicas: List[str] = field(default_factory=list)  # datanode ids


class NameNode:
    """Single metadata server (as in Hadoop 1.x, used by the paper)."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        address: str = "namenode",
        replication: int = DEFAULT_REPLICATION,
        heartbeat_timeout: float = 5.0,
    ):
        self.sim = sim
        self.address = address
        self.replication = replication
        self.heartbeat_timeout = heartbeat_timeout
        self.files: Dict[str, List[str]] = {}  # path -> block ids
        self.blocks: Dict[str, BlockInfo] = {}
        self.datanodes: Dict[str, str] = {}  # dn id -> rpc address
        self.last_heartbeat: Dict[str, float] = {}
        self._block_counter = 0
        self.rpc = RpcServer(sim, network, address)
        self.rpc.register("nn.register", self._on_register)
        self.rpc.register("nn.heartbeat", self._on_heartbeat)
        self.rpc.register("nn.create", self._on_create)
        self.rpc.register("nn.add_block", self._on_add_block)
        self.rpc.register("nn.commit_block", self._on_commit_block)
        self.rpc.register("nn.locate", self._on_locate)
        self.rpc.register("nn.file_info", self._on_file_info)

    # -- liveness -----------------------------------------------------------

    def live_datanodes(self) -> List[str]:
        now = self.sim.now
        return sorted(
            dn
            for dn, last in self.last_heartbeat.items()
            if now - last <= self.heartbeat_timeout
        )

    def _on_register(self, dn_id: str, address: str) -> bool:
        self.datanodes[dn_id] = address
        self.last_heartbeat[dn_id] = self.sim.now
        return True

    def _on_heartbeat(self, dn_id: str) -> bool:
        if dn_id not in self.datanodes:
            raise RuntimeError(f"unregistered datanode {dn_id!r}")
        self.last_heartbeat[dn_id] = self.sim.now
        return True

    # -- namespace ------------------------------------------------------------

    def _on_create(self, path: str) -> bool:
        if path in self.files:
            raise FileExistsError(path)
        self.files[path] = []
        return True

    def _load_of(self, dn_id: str) -> int:
        return sum(1 for b in self.blocks.values() if dn_id in b.replicas)

    def _on_add_block(self, path: str, exclude: Optional[List[str]] = None) -> dict:
        """Allocate a new block and choose its replica pipeline."""
        if path not in self.files:
            raise FileNotFoundError(path)
        exclude_set = set(exclude or ())
        candidates = [dn for dn in self.live_datanodes() if dn not in exclude_set]
        if not candidates:
            raise RuntimeError("no live datanodes")
        candidates.sort(key=lambda dn: (self._load_of(dn), dn))
        pipeline = candidates[: self.replication]
        block_id = f"blk_{self._block_counter}"
        self._block_counter += 1
        self.blocks[block_id] = BlockInfo(block_id=block_id, size=0)
        self.files[path].append(block_id)
        return {
            "block_id": block_id,
            "pipeline": [
                {"dn_id": dn, "address": self.datanodes[dn]} for dn in pipeline
            ],
        }

    def _on_commit_block(self, block_id: str, size: int, replicas: List[str]) -> bool:
        info = self.blocks.get(block_id)
        if info is None:
            raise KeyError(block_id)
        info.size = size
        info.replicas = list(replicas)
        return True

    def _on_locate(self, path: str) -> List[dict]:
        """Block list with live replica addresses, in file order."""
        if path not in self.files:
            raise FileNotFoundError(path)
        live = set(self.live_datanodes())
        located = []
        for block_id in self.files[path]:
            info = self.blocks[block_id]
            located.append(
                {
                    "block_id": block_id,
                    "size": info.size,
                    "replicas": [
                        {"dn_id": dn, "address": self.datanodes[dn]}
                        for dn in info.replicas
                        if dn in live
                    ],
                }
            )
        return located

    def _on_file_info(self, path: str) -> dict:
        if path not in self.files:
            raise FileNotFoundError(path)
        blocks = self.files[path]
        return {
            "path": path,
            "blocks": len(blocks),
            "size": sum(self.blocks[b].size for b in blocks),
        }
