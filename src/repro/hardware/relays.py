"""Power relays and rolling spin-up (§III-B).

Each HDD enclosure's 12 V feed passes through a relay the Controller
can open and close.  At power-on time the relays are closed in a
staggered sequence ("rolling spin-up") so tens of disks do not draw
their spin-up surge simultaneously and overwhelm the power supply.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional

from repro.disk.device import SimulatedDisk
from repro.sim import Event, Simulator
from repro.usbsim.bus import UsbBus

__all__ = ["RelayBank", "RelayListener", "rolling_spin_up"]

#: ``(disk_id, powered)`` — fired on every relay state *change*, so
#: observers (the power meter's fabric-gating model) can track relay
#: state by subscription instead of re-scanning the bank every sample.
RelayListener = Callable[[str, bool], None]


class RelayBank:
    """One relay per disk enclosure; open relay = enclosure dark."""

    def __init__(self, sim: Simulator, disks: Dict[str, SimulatedDisk], bus: Optional[UsbBus] = None):
        self.sim = sim
        self.disks = disks
        self.bus = bus
        self.closed: Dict[str, bool] = {d: True for d in disks}
        self._listeners: List[RelayListener] = []

    def add_listener(self, listener: RelayListener) -> None:
        """Call ``listener(disk_id, powered)`` on every relay flip."""
        self._listeners.append(listener)

    def remove_listener(self, listener: RelayListener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def _notify(self, disk_id: str, powered: bool) -> None:
        for listener in self._listeners:
            listener(disk_id, powered)

    def open_relay(self, disk_id: str) -> None:
        """Cut power: the disk drops off the USB bus immediately."""
        self._require(disk_id)
        if not self.closed[disk_id]:
            return
        self.closed[disk_id] = False
        disk = self.disks[disk_id]
        if disk.states.is_spinning:
            disk.spin_down()
        disk.power_off()
        if self.bus is not None:
            self.bus.set_disk_power(disk_id, False)
        self._notify(disk_id, False)

    def close_relay(self, disk_id: str) -> Event:
        """Restore power; returns an event firing when the disk is ready."""
        self._require(disk_id)
        disk = self.disks[disk_id]
        if self.closed[disk_id] and disk.states.is_spinning:
            done = self.sim.event()
            done.succeed()
            return done
        was_closed = self.closed[disk_id]
        self.closed[disk_id] = True
        disk.power_on()
        ready = disk.spin_up()
        if self.bus is not None:
            # The bridge enumerates as soon as the enclosure has power.
            self.bus.set_disk_power(disk_id, True)
        if not was_closed:
            self._notify(disk_id, True)
        return ready

    def is_powered(self, disk_id: str) -> bool:
        self._require(disk_id)
        return self.closed[disk_id]

    def _require(self, disk_id: str) -> None:
        if disk_id not in self.disks:
            raise KeyError(f"unknown disk {disk_id!r}")


def rolling_spin_up(
    sim: Simulator,
    relays: RelayBank,
    disk_ids: Optional[List[str]] = None,
    stagger: float = 2.0,
    group_size: int = 4,
) -> Generator[Event, None, float]:
    """Close relays in groups of ``group_size`` every ``stagger`` seconds.

    Returns (as the process result) the time when every disk is ready.
    Limiting concurrent spin-ups bounds the power-supply surge: a 7200rpm
    3.5" disk draws ~2x its active power while spinning up.
    """
    ids = list(disk_ids if disk_ids is not None else relays.disks)
    pending = []
    for start in range(0, len(ids), group_size):
        group = ids[start : start + group_size]
        for disk_id in group:
            pending.append(relays.close_relay(disk_id))
        if start + group_size < len(ids):
            yield sim.timeout(stagger)
    if pending:
        yield sim.all_of(pending)
    return sim.now
