"""The control plane's microcontrollers (§III-B).

Switch control signals come from a microcontroller attached over USB to
a controlling host.  To avoid a single point of failure, a second
microcontroller on a different host is wired in: the two output
vectors are XOR-ed to form the final switch signals, and during normal
operation only one of them is powered.  When the primary host dies, the
backup microcontroller is powered on and takes over — flipping its own
bits reproduces any desired signal because of the XOR.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.fabric.components import FabricError, Switch
from repro.fabric.topology import Fabric

__all__ = ["ControlPlane", "Microcontroller"]


class Microcontroller:
    """One Arduino-style board driving the switch signal lines."""

    def __init__(self, mc_id: str, switch_ids: List[str]):
        self.mc_id = mc_id
        self.powered = False
        self.failed = False
        self.outputs: Dict[str, int] = {sw: 0 for sw in switch_ids}

    def set_output(self, switch_id: str, value: int) -> None:
        if not self.powered or self.failed:
            raise FabricError(f"microcontroller {self.mc_id!r} is not operational")
        if switch_id not in self.outputs:
            raise FabricError(f"{self.mc_id!r} has no line for {switch_id!r}")
        if value not in (0, 1):
            raise FabricError(f"signal must be 0/1, got {value!r}")
        self.outputs[switch_id] = value

    def effective_outputs(self) -> Dict[str, int]:
        """Lines float to 0 when the board is unpowered or failed."""
        if not self.powered or self.failed:
            return {sw: 0 for sw in self.outputs}
        return dict(self.outputs)


class ControlPlane:
    """Two XOR-ed microcontrollers driving a fabric's switches."""

    def __init__(self, fabric: Fabric):
        self.fabric = fabric
        switch_ids = [s.node_id for s in fabric.switches]
        self.primary = Microcontroller("mc-primary", switch_ids)
        self.backup = Microcontroller("mc-backup", switch_ids)
        self.primary.powered = True
        self._sync_switches()

    @property
    def active(self) -> Optional[Microcontroller]:
        for mc in (self.primary, self.backup):
            if mc.powered and not mc.failed:
                return mc
        return None

    def signal(self, switch_id: str) -> int:
        """The XOR-combined control signal for one switch."""
        a = self.primary.effective_outputs().get(switch_id, 0)
        b = self.backup.effective_outputs().get(switch_id, 0)
        return a ^ b

    def set_switch(self, switch_id: str, state: int) -> None:
        """Drive one switch to ``state`` through the active board."""
        mc = self.active
        if mc is None:
            raise FabricError("no operational microcontroller")
        other = self.backup if mc is self.primary else self.primary
        desired_own = state ^ other.effective_outputs().get(switch_id, 0)
        mc.set_output(switch_id, desired_own)
        self._apply(switch_id)

    def failover_to_backup(self) -> None:
        """Power on the backup after losing the primary (§III-B).

        The backup initializes its outputs to reproduce the current
        switch states so that powering it on glitches nothing.
        """
        current = {s.node_id: s.state for s in self.fabric.switches}
        self.primary.powered = False
        self.backup.powered = True
        for switch_id, state in current.items():
            # With the primary dark its lines are 0, so backup = state.
            self.backup.outputs[switch_id] = state
            self._apply(switch_id)

    def _apply(self, switch_id: str) -> None:
        switch = self.fabric.node(switch_id)
        assert isinstance(switch, Switch)
        value = self.signal(switch_id)
        if switch.state != value:
            switch.turn(value)

    def _sync_switches(self) -> None:
        """Align microcontroller outputs with the fabric's initial states."""
        for switch in self.fabric.switches:
            self.primary.outputs[switch.node_id] = switch.state
