"""Hardware control plane: microcontrollers, relays, rolling spin-up."""

from repro.hardware.microcontroller import ControlPlane, Microcontroller
from repro.hardware.relays import RelayBank, rolling_spin_up

__all__ = ["ControlPlane", "Microcontroller", "RelayBank", "rolling_spin_up"]
