"""Experiment: Figure 6 — switching time vs number of disks switched.

Switches N disks from their current hosts to one target host in a
single Master command and decomposes the delay the way the paper does:

* **part 1** — disk safely rejected from the old host → recognized by
  the new host's USB driver (grows with N: enumeration serializes);
* **part 2** — recognized → exposed on the network as an iSCSI target;
* **part 3** — exposed → remounted by the ClientLib.

Each disk count is repeated several times (the paper uses 6) with
different seeds; a ClientLib with a polling reader is mounted on one of
the switched disks so the remount is observed end to end.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.cluster.deployment import DeploymentConfig, build_deployment
from repro.cluster.namespace import target_name
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.common import conflict_free_batch, format_table
from repro.net.rpc import RpcClient
from repro.obs import MetricsRegistry
from repro.sim import Event, Interrupt
from repro.workload.specs import KB, MB

__all__ = ["DISK_COUNTS", "EXPERIMENT", "run", "run_single"]

DISK_COUNTS = (1, 2, 4, 6, 8)
REPETITIONS = 6
TARGET_HOST = "host3"


def run_single(
    count: int, seed: int, metrics: Optional[MetricsRegistry] = None
) -> Dict[str, float]:
    """One switching trial; returns the three delay parts (seconds)."""
    deployment = build_deployment(
        config=DeploymentConfig(seed=seed), metrics=metrics
    )
    deployment.settle(15.0)
    sim = deployment.sim
    fabric = deployment.fabric

    batch = conflict_free_batch(fabric, TARGET_HOST, count)
    monitored_disk = batch[0][0]
    other_disks = [d.node_id for d in fabric.disks if d.node_id != monitored_disk]

    client = deployment.new_client("fig6-client", service="fig6")
    remount_times: List[float] = []
    client.on_status_change(
        lambda sid, ev: remount_times.append(sim.now) if ev == "remounted" else None
    )

    def setup() -> Generator[Event, None, object]:
        info = yield from client.allocate(64 * MB, exclude_disks=other_disks)
        space = yield from client.mount(info["space_id"])
        return info, space

    info, space = sim.run_until_event(sim.process(setup()))
    assert info["space_id"].split("/")[2] == monitored_disk

    # Polling reader: keeps the mount actively used so the remount is
    # triggered as soon as the session breaks.
    def reader() -> Generator[Event, None, None]:
        while True:
            try:
                yield from space.read(0, 4 * KB)
            except Interrupt:
                raise  # kernel teardown must not be treated as a session error
            except Exception:
                return
            yield sim.timeout(0.25)

    sim.process(reader())
    sim.run(until=sim.now + 2.0)

    rpc = RpcClient(sim, deployment.network, "fig6-op")
    master = deployment.active_master().address
    start = sim.now
    event_floor = len(deployment.bus.events)

    def migrate() -> Generator[Event, None, object]:
        result = yield from rpc.call(
            master, "master.migrate_batch", batch, timeout=90.0
        )
        return result

    sim.run_until_event(sim.process(migrate()))
    sim.run(until=sim.now + 10.0)  # let the remount land

    events = deployment.bus.events[event_floor:]
    detach_at: Dict[str, float] = {}
    attach_at: Dict[str, float] = {}
    for event in events:
        if event.kind == "detach" and event.disk_id in dict(batch):
            detach_at.setdefault(event.disk_id, event.time)
        if (
            event.kind == "attach"
            and event.host_id == TARGET_HOST
            and event.disk_id in dict(batch)
        ):
            attach_at.setdefault(event.disk_id, event.time)

    part1 = max(attach_at[d] - detach_at[d] for d, _ in batch)
    endpoint = deployment.endpoints[TARGET_HOST]
    expose_time: Optional[float] = None
    wanted_target = target_name(info["space_id"])
    for time, name in endpoint.expose_log:
        if name == wanted_target and time >= start:
            expose_time = time
            break
    if expose_time is None:
        raise RuntimeError("monitored target never re-exposed")
    part2 = expose_time - attach_at[monitored_disk]
    if not remount_times:
        raise RuntimeError("remount never observed")
    part3 = remount_times[-1] - expose_time
    return {
        "count": count,
        "part1": part1,
        "part2": max(0.0, part2),
        "part3": max(0.0, part3),
        "total": part1 + max(0.0, part2) + max(0.0, part3),
    }


def run(
    disk_counts=DISK_COUNTS,
    repetitions: int = REPETITIONS,
    metrics: Optional[MetricsRegistry] = None,
) -> Dict:
    rows: List[List] = []
    series: Dict[int, Dict[str, float]] = {}
    for count in disk_counts:
        trials = [
            run_single(count, seed=100 * count + r, metrics=metrics)
            for r in range(repetitions)
        ]
        mean = {
            key: sum(t[key] for t in trials) / len(trials)
            for key in ("part1", "part2", "part3", "total")
        }
        series[count] = mean
        rows.append(
            [
                count,
                round(mean["part1"], 2),
                round(mean["part2"], 2),
                round(mean["part3"], 2),
                round(mean["total"], 2),
            ]
        )
    part1s = [series[c]["part1"] for c in disk_counts]
    anchors = {
        # Paper: "the first part delay increases with the number of
        # switched disks while the second and third parts have little
        # variation."
        "part1_grows_with_count": all(
            part1s[i] < part1s[i + 1] for i in range(len(part1s) - 1)
        ),
        "part2_stable": max(series[c]["part2"] for c in disk_counts)
        - min(series[c]["part2"] for c in disk_counts)
        < 1.0,
        "part3_stable": max(series[c]["part3"] for c in disk_counts)
        - min(series[c]["part3"] for c in disk_counts)
        < 1.0,
    }
    return {
        "headers": ["Disks", "Part1 s", "Part2 s", "Part3 s", "Total s"],
        "rows": rows,
        "series": series,
        "anchors": anchors,
    }


def _report(result: Dict) -> str:
    lines = ["Figure 6: switching time decomposition (mean of repetitions)", ""]
    lines.append(format_table(result["headers"], result["rows"]))
    lines.append("")
    for name, holds in result["anchors"].items():
        lines.append(f"  anchor {name}: {'OK' if holds else 'FAILED'}")
    return "\n".join(lines)


def _build_result(repetitions: int = REPETITIONS) -> ExperimentResult:
    registry = MetricsRegistry()
    raw = run(repetitions=repetitions, metrics=registry)
    return ExperimentResult(
        name="figure6",
        paper_ref="Figure 6 / §VII-A",
        params={"repetitions": repetitions},
        metrics={
            "mean_total_seconds": {
                str(c): raw["series"][c]["total"] for c in raw["series"]
            }
        },
        paper_expected={
            "part1_grows_with_count": True,
            "part2_and_part3_stable": True,
        },
        anchors=dict(raw["anchors"]),
        obs=registry.dump(),
        raw=raw,
        text=_report(raw),
    )


EXPERIMENT = Experiment(
    name="figure6",
    paper_ref="Figure 6 / §VII-A",
    description="Switching-time decomposition vs number of disks switched",
    builder=_build_result,
    params={"repetitions": REPETITIONS},
)


def main() -> str:
    return EXPERIMENT.run().render()


if __name__ == "__main__":
    print(main())
