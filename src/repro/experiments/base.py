"""The declarative Experiment API (StorRep-style uniform experiments).

Every paper-reproduction experiment registers an :class:`Experiment`
declaring its name, the paper artifact it reproduces (``paper_ref``)
and its tunable ``params``; running it returns a typed
:class:`ExperimentResult` — headline metrics, the paper's expected
values, relative errors, an optional obs-registry snapshot, and the
legacy raw dict — which serialises to a versioned JSON document
(``repro run <name> --json``) or renders as the familiar text report.

The legacy module-level ``run() -> dict`` entrypoints are kept as the
builders' data source, so existing callers and tests see identical
dicts; ``main()`` becomes a thin shim over ``EXPERIMENT.run().render()``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, is_dataclass
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional

__all__ = [
    "Experiment",
    "ExperimentRegistry",
    "ExperimentResult",
    "RESULT_SCHEMA_VERSION",
]

#: Bumped whenever the ExperimentResult JSON layout changes shape.
RESULT_SCHEMA_VERSION = 1


def _jsonify(value: Any) -> Any:
    """Best-effort conversion of experiment data to JSON-safe values."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if is_dataclass(value) and not isinstance(value, type):
        return _jsonify(asdict(value))
    if isinstance(value, Mapping):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonify(v) for v in value)
    return str(value)


@dataclass
class ExperimentResult:
    """Uniform, versioned result document for one experiment run."""

    name: str
    paper_ref: str
    params: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    paper_expected: Dict[str, Any] = field(default_factory=dict)
    relative_errors: Dict[str, float] = field(default_factory=dict)
    anchors: Dict[str, bool] = field(default_factory=dict)
    obs: Optional[Dict[str, Any]] = None
    raw: Dict[str, Any] = field(default_factory=dict)
    text: str = ""
    version: int = RESULT_SCHEMA_VERSION

    @property
    def anchors_ok(self) -> bool:
        return all(self.anchors.values())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "name": self.name,
            "paper_ref": self.paper_ref,
            "params": _jsonify(self.params),
            "metrics": _jsonify(self.metrics),
            "paper_expected": _jsonify(self.paper_expected),
            "relative_errors": _jsonify(self.relative_errors),
            "anchors": _jsonify(self.anchors),
            "obs": _jsonify(self.obs),
            "raw": _jsonify(self.raw),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    def render(self) -> str:
        """The human report (the module's classic text output)."""
        if self.text:
            return self.text
        return self.to_json()


#: A builder takes the experiment's (merged) params and produces a result.
ResultBuilder = Callable[..., ExperimentResult]


@dataclass(frozen=True)
class Experiment:
    """One declared experiment: metadata plus its result builder."""

    name: str
    paper_ref: str
    description: str
    builder: ResultBuilder
    params: Dict[str, Any] = field(default_factory=dict)

    def run(self, **overrides: Any) -> ExperimentResult:
        """Build the result with declared params merged with overrides.

        Unknown override keys are rejected so a CLI typo fails loudly
        instead of silently running the default configuration.
        """
        unknown = set(overrides) - set(self.params)
        if unknown:
            raise TypeError(
                f"experiment {self.name!r} has no parameter(s) "
                f"{sorted(unknown)}; declared: {sorted(self.params)}"
            )
        merged = {**self.params, **overrides}
        return self.builder(**merged)


class ExperimentRegistry:
    """Name -> :class:`Experiment`, in registration order."""

    def __init__(self) -> None:
        self._experiments: Dict[str, Experiment] = {}

    def register(self, experiment: Experiment) -> Experiment:
        if experiment.name in self._experiments:
            raise ValueError(f"experiment {experiment.name!r} already registered")
        self._experiments[experiment.name] = experiment
        return experiment

    def get(self, name: str) -> Experiment:
        try:
            return self._experiments[name]
        except KeyError:
            raise KeyError(
                f"unknown experiment {name!r}; available: {', '.join(self.names())}"
            ) from None

    def names(self) -> List[str]:
        return list(self._experiments)

    def __contains__(self, name: object) -> bool:
        return name in self._experiments

    def __iter__(self) -> Iterator[Experiment]:
        return iter(self._experiments.values())

    def __len__(self) -> int:
        return len(self._experiments)
