"""Experiment: staged archival writes vs write-through to cold homes.

The tiering claim on UStore hardware: archival writes should land on a
small always-spinning hot tier and migrate to their cold homes in the
background, not spin a cold disk per write.  Two treatments of the
same trickle workload (archival writes interleaved with reads of
pre-existing cold data) run on identically seeded deployments under
the same power budget:

* **staged** — the :mod:`repro.tiering` store absorbs each write into
  the bounded staging buffer on the pinned hot tier (ack at hot
  latency), and the migration orchestrator later flushes each cold
  space's accumulated run as one sequential write, gated on idle
  watts, foreground pressure, and the min-bytes/max-age batch
  discipline.
* **write_through** — each write goes straight to its hash-placed
  cold home (the identical ``stable_hash`` placement the staged
  variant demotes to), paying that disk's spin-up in the ack path and
  competing with cold reads for the power budget.

Both variants run to the same absolute sim end so disk-energy
integrals are comparable.  Anchors: staged acks and demotes every
object exactly once with strictly fewer spin-ups, a strictly lower
write p99 and strictly less energy, while the cold-read p99 it
imposes on foreground readers stays within 5% of write-through's.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.cluster.deployment import DeploymentConfig, build_deployment
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.common import format_table
from repro.gateway import (
    Gateway,
    GatewayConfig,
    GatewayRequest,
    ObjectRef,
    ReadObject,
    TenantSpec,
    WriteObject,
    mount_gateway_spaces,
)
from repro.obs import (
    ConservationAuditor,
    EnergyLedger,
    MetricsRegistry,
    RequestTracer,
)
from repro.power import PowerMeter
from repro.shardstore import stable_hash
from repro.sim import EventDigest
from repro.tiering import (
    MigrationOrchestrator,
    TieredStore,
    TieringConfig,
    pinned_disks_for,
)
from repro.units import MiB
from repro.workload.specs import KB, MB

__all__ = ["EXPERIMENT", "ARCHIVE", "MIGRATION", "run", "run_point"]

ARCHIVE = TenantSpec(
    name="archive",
    weight=1.0,
    users=0,
    rate_per_user=0.0,
    read_fraction=0.0,
    object_sizes=((256 * KB, 1.0),),
    slo_seconds=120.0,
    max_queue_depth=100_000,
)
MIGRATION = TenantSpec(
    name="migration",
    weight=0.5,
    users=0,
    rate_per_user=0.0,
    read_fraction=0.0,
    object_sizes=((256 * KB, 1.0),),
    slo_seconds=600.0,
    max_queue_depth=100_000,
)

SPACE_BYTES = 64 * MB
#: One always-spinning disk out of 16 — the hot tier's fixed idle
#: draw is the staging design's rent, so it stays minimal.
HOT_SPACES = 1
SETTLE_SECONDS = 15.0
WARM_SECONDS = 10.0
#: Resident cold data that foreground readers fetch during the write
#: window — parked well past any write region so neither variant's
#: ingest can collide with it.
RESIDENTS_PER_SPACE = 2
RESIDENT_BASE_OFFSET = 40 * MB
RESIDENT_STRIDE = 8 * MB
DRAIN_STEP_SECONDS = 5.0


def _percentile(values: List[float], q: float) -> float:
    """Exact nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil((q / 100.0) * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def _build_gateway(
    seed: int,
    power_budget_watts: float,
    pinned: tuple,
    detect_races: bool,
    event_digest: Optional[EventDigest],
    metrics: Optional[MetricsRegistry],
    tracer: Optional[RequestTracer],
):
    deployment = build_deployment(
        config=DeploymentConfig(detect_races=detect_races, seed=seed),
        metrics=metrics,
        tracer=tracer,
    )
    if event_digest is not None:
        event_digest.attach(deployment.sim)
    deployment.settle(SETTLE_SECONDS)
    objects, spaces = mount_gateway_spaces(deployment, SPACE_BYTES)
    for disk_id in sorted(deployment.disks):
        deployment.disks[disk_id].spin_down()
    gateway = Gateway(
        deployment.sim,
        (ARCHIVE, MIGRATION),
        GatewayConfig(
            power_budget_watts=power_budget_watts,
            scheduler="batch",
            pinned_disks=pinned_disks_for(objects, HOT_SPACES) if pinned else (),
        ),
    )
    gateway.attach(objects, spaces, deployment.disks, host_of=deployment.host_of_disk)
    gateway.start()
    return deployment, gateway, objects


def _cold_layout(objects) -> List[str]:
    """The cold spaces (everything past the hot tier), sorted."""
    spaces = sorted(obj.space_id for obj in objects)
    return spaces[HOT_SPACES:]


def _resident_refs(cold_spaces: List[str]) -> List[ObjectRef]:
    """Pre-existing cold objects the read workload targets."""
    refs = []
    for space_id in cold_spaces:
        for index in range(RESIDENTS_PER_SPACE):
            refs.append(
                ObjectRef(
                    space_id=space_id,
                    offset=RESIDENT_BASE_OFFSET + index * RESIDENT_STRIDE,
                    size=256 * KB,
                    object_id=f"resident:{space_id}:{index}",
                )
            )
    return refs


def run_point(
    mode: str,
    seed: int = 23,
    num_writes: int = 240,
    object_bytes: int = 256 * KB,
    num_cold_reads: int = 40,
    write_seconds: float = 600.0,
    total_seconds: float = 950.0,
    power_budget_watts: float = 40.0,
    detect_races: bool = False,
    event_digest: Optional[EventDigest] = None,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[RequestTracer] = None,
    energy: bool = False,
) -> Dict:
    """Run one treatment on a fresh identically-seeded deployment.

    ``mode`` is ``"staged"`` (tiering store + migration orchestrator)
    or ``"write_through"`` (each write straight to its cold home).
    Writes and cold reads interleave over :data:`write_seconds`; the
    sim then drains and runs to the absolute ``total_seconds`` mark so
    both variants integrate disk energy over the same wall of time.
    ``energy=True`` arms the DESIGN §15 energy ledger: the summary
    gains per-tenant (``archive`` vs ``migration``) and per-tier
    (``hot`` vs ``cold``) wall-joule books whose accounts sum to the
    PowerMeter integral.
    """
    if mode not in ("staged", "write_through"):
        raise ValueError(f"unknown mode {mode!r}")
    attribution_tracer = tracer
    if energy and attribution_tracer is None:
        # Tenant attribution rides the trace threading; arm a private
        # tracer when the caller did not supply one.
        attribution_tracer = RequestTracer()
    deployment, gateway, objects = _build_gateway(
        seed,
        power_budget_watts,
        pinned=(mode == "staged"),
        detect_races=detect_races,
        event_digest=event_digest,
        metrics=metrics,
        tracer=attribution_tracer,
    )
    sim = deployment.sim
    cold_spaces = _cold_layout(objects)
    residents = _resident_refs(cold_spaces)
    ledger: Optional[EnergyLedger] = None
    meter: Optional[PowerMeter] = None
    if energy:
        ledger = EnergyLedger()
        meter = PowerMeter(deployment, ledger=ledger)
        meter.start()

    store = None
    if mode == "staged":
        store = TieredStore(
            gateway,
            TieringConfig(
                tenant=ARCHIVE.name,
                migration_tenant=MIGRATION.name,
                hot_spaces=HOT_SPACES,
                demotion_min_batch_bytes=4 * MiB,
                demotion_max_age_seconds=180.0,
                # Two batches' spin-ups plus the hot tier leave watts
                # for a foreground cold read at all times.
                max_inflight_demotions=2,
                pressure_queue_depth=2,
            ),
        )
        store.start()
        MigrationOrchestrator(store).start()
    if ledger is not None:
        if store is not None:
            store.classify_tiers(ledger)
        else:
            # No hot tier in write-through: every disk books as cold.
            for disk_id in sorted(deployment.disks):
                ledger.set_tier(disk_id, "cold")
    sim.run(until=sim.now + WARM_SECONDS)

    uids = [f"arch-{index:05d}" for index in range(num_writes)]
    write_rand = deployment.rng.stream("tiering.write_times")
    write_times = sorted(write_rand.uniform(0.0, write_seconds) for _ in uids)
    read_rand = deployment.rng.stream("tiering.read_times")
    read_times = sorted(
        read_rand.uniform(0.0, write_seconds) for _ in range(num_cold_reads)
    )
    sample_rand = deployment.rng.stream("tiering.read_sample")
    read_refs = [
        residents[sample_rand.randrange(len(residents))]
        for _ in range(num_cold_reads)
    ]

    window_start = sim.now
    write_latencies: List[float] = []
    write_requests: Dict[str, GatewayRequest] = {}
    read_requests: List[GatewayRequest] = []

    if mode == "staged":
        records = {}

        def write_all():
            for uid, at in zip(uids, write_times):
                target = window_start + at
                if target > sim.now:
                    yield sim.timeout(target - sim.now)
                records[uid] = store.write(uid, object_bytes)

    else:
        # Identical hash placement, no staging: the write pays its
        # cold home's spin-up in the ack path.
        tails = {space_id: 0 for space_id in cold_spaces}
        refs: Dict[str, ObjectRef] = {}
        for uid in uids:
            space_id = cold_spaces[stable_hash(uid) % len(cold_spaces)]
            refs[uid] = ObjectRef(
                space_id=space_id,
                offset=tails[space_id],
                size=object_bytes,
                object_id=uid,
            )
            tails[space_id] += object_bytes

        def write_all():
            for uid, at in zip(uids, write_times):
                target = window_start + at
                if target > sim.now:
                    yield sim.timeout(target - sim.now)
                write_requests[uid] = gateway.submit(
                    WriteObject(tenant=ARCHIVE.name, ref=refs[uid])
                )

    def read_all():
        for ref, at in zip(read_refs, read_times):
            target = window_start + at
            if target > sim.now:
                yield sim.timeout(target - sim.now)
            read_requests.append(
                gateway.submit(ReadObject(tenant=ARCHIVE.name, ref=ref))
            )

    writer = sim.process(write_all())
    reader = sim.process(read_all())
    sim.run_until_event(writer)
    sim.run_until_event(reader)

    # Drain foreground and (staged) background work, then coast both
    # variants to the same absolute end time for fair energy accounting.
    def fully_drained() -> bool:
        if not gateway.drained():
            return False
        if store is None:
            return True
        return (
            store.pending_demotion_bytes() == 0 and store.inflight_demotions == 0
        )

    while sim.now < total_seconds and not fully_drained():
        sim.run(until=sim.now + DRAIN_STEP_SECONDS)
    drained = fully_drained()
    if sim.now < total_seconds:
        sim.run(until=total_seconds)

    if mode == "staged":
        for uid in uids:
            record = records.get(uid)
            if record is not None and record.acked_at is not None:
                write_latencies.append(record.acked_at - record.written_at)
        acked = sum(
            1
            for uid in uids
            if records.get(uid) is not None and records[uid].acked_at is not None
        )
        demoted = store.stats.demoted
    else:
        for uid in uids:
            latency = write_requests[uid].latency
            if latency is not None:
                write_latencies.append(latency)
        acked = sum(1 for uid in uids if write_requests[uid].failure is None)
        demoted = acked  # write-through lands cold immediately

    read_latencies = [
        request.latency for request in read_requests if request.latency is not None
    ]
    summary = gateway.summary()
    summary["mode"] = mode
    summary["drained"] = drained
    summary["end_seconds"] = sim.now
    summary["acked_objects"] = acked
    summary["cold_resident_objects"] = demoted
    summary["write_p50"] = _percentile(write_latencies, 50)
    summary["write_p99"] = _percentile(write_latencies, 99)
    summary["cold_read_p50"] = _percentile(read_latencies, 50)
    summary["cold_read_p99"] = _percentile(read_latencies, 99)
    summary["exactly_once"] = (
        acked == num_writes
        and demoted == num_writes
        and summary["failed"] == 0
        and len(read_latencies) == num_cold_reads
        and all(request.attempts == 1 for request in read_requests)
    )
    if store is not None:
        summary["store"] = store.summary()
    if ledger is not None and meter is not None:
        auditor = ConservationAuditor(meter, ledger)
        summary["energy"] = {
            "identity": auditor.audit(sim.now),
            "accounts": ledger.account_joules(),
            "tiers": ledger.tier_joules(),
            "spin_up_blames": len(ledger.blames),
            "requests_charged": len(ledger.requests),
            "export": ledger.to_dict(),
        }
    if detect_races:
        summary["races"] = list(sim.races)
    return summary


def run(
    detect_races: bool = False,
    event_digest: Optional[EventDigest] = None,
    metrics: Optional[MetricsRegistry] = None,
    seed: int = 23,
    num_writes: int = 240,
    object_bytes: int = 256 * KB,
    num_cold_reads: int = 40,
    write_seconds: float = 600.0,
    total_seconds: float = 950.0,
    power_budget_watts: float = 40.0,
    energy: bool = True,
) -> Dict:
    """Run both treatments on identically seeded deployments."""
    variants: Dict[str, Dict] = {}
    races: List = []
    for mode in ("staged", "write_through"):
        summary = run_point(
            mode,
            seed=seed,
            num_writes=num_writes,
            object_bytes=object_bytes,
            num_cold_reads=num_cold_reads,
            write_seconds=write_seconds,
            total_seconds=total_seconds,
            power_budget_watts=power_budget_watts,
            detect_races=detect_races,
            event_digest=event_digest,
            metrics=metrics,
            energy=energy,
        )
        if detect_races:
            races.extend(summary.pop("races", []))
        variants[mode] = summary
    staged = variants["staged"]
    through = variants["write_through"]
    anchors = {
        # Batched sequential demotion amortizes spin-ups that
        # write-through pays per object.
        "staged_fewer_spin_ups": staged["spin_ups"] < through["spin_ups"],
        # Acks come off the always-spinning hot tier.
        "staged_write_p99_lower": staged["write_p99"] < through["write_p99"],
        # Background migration must not tax foreground cold readers by
        # more than 5%.
        "staged_cold_read_p99_within_5pct": (
            staged["cold_read_p99"] <= 1.05 * through["cold_read_p99"]
        ),
        "staged_lower_energy": staged["energy_joules"] < through["energy_joules"],
        "exactly_once_both": bool(
            staged["exactly_once"] and through["exactly_once"]
        ),
        "both_drained": bool(staged["drained"] and through["drained"]),
    }
    if energy:
        # §15 conservation identity holds in both variants, and the
        # background demotion traffic books under the dedicated
        # migration tenant, never under the user tenant.
        anchors["energy_conserved"] = all(
            variant["energy"]["identity"]["conserved"]
            for variant in variants.values()
        )
        anchors["migration_energy_separated"] = (
            staged["energy"]["accounts"].get("tenant:migration", 0.0) > 0.0
            and "tenant:migration" not in through["energy"]["accounts"]
        )
    result: Dict = {
        "params": {
            "seed": seed,
            "num_writes": num_writes,
            "object_bytes": object_bytes,
            "num_cold_reads": num_cold_reads,
            "write_seconds": write_seconds,
            "total_seconds": total_seconds,
            "power_budget_watts": power_budget_watts,
            "energy": energy,
        },
        "variants": variants,
        "anchors": anchors,
    }
    if detect_races:
        result["races"] = races
    return result


def _report(result: Dict) -> str:
    lines = [
        "Tiering: staged writes vs write-through to cold homes",
        "",
    ]
    headers = [
        "Mode", "Spin-ups", "write p50 s", "write p99 s",
        "cold-read p99 s", "Energy kJ", "Drained",
    ]
    rows = []
    for name in ("staged", "write_through"):
        summary = result["variants"][name]
        rows.append(
            [
                name,
                summary["spin_ups"],
                round(summary["write_p50"], 3),
                round(summary["write_p99"], 3),
                round(summary["cold_read_p99"], 2),
                round(summary["energy_joules"] / 1000.0, 2),
                "yes" if summary["drained"] else "NO",
            ]
        )
    lines.append(format_table(headers, rows))
    staged = result["variants"]["staged"]
    if "store" in staged:
        store = staged["store"]
        lines.append("")
        lines.append(
            f"  staged: {store['staged']} objects staged, "
            f"{store['demoted']} demoted in {store['demotion_batches']} batches "
            f"({store['demoted_bytes'] // (1 << 20)} MiB sequential), "
            f"{store['staging_overflows']} staging overflows"
        )
    if any("energy" in result["variants"][n] for n in ("staged", "write_through")):
        lines.append("")
        lines.append("Energy attribution (wall joules by account / tier):")
        for name in ("staged", "write_through"):
            summary = result["variants"][name]
            if "energy" not in summary:
                continue
            energy = summary["energy"]
            accounts = energy["accounts"]
            parts = ", ".join(
                f"{account}={accounts[account]:.0f}J"
                for account in sorted(accounts, key=lambda a: -accounts[a])
            )
            tiers = ", ".join(
                f"{tier}={energy['tiers'][tier]['total']:.0f}J"
                for tier in sorted(energy["tiers"])
            )
            identity = energy["identity"]
            lines.append(f"  {name}: {parts}")
            lines.append(
                f"  {name}: tiers {tiers}; wall={identity['wall_joules']:.0f}J "
                f"residual={identity['residual']:.9f}J "
                f"conserved={identity['conserved']}"
            )
    lines.append("")
    for name, holds in result["anchors"].items():
        lines.append(f"  anchor {name}: {'OK' if holds else 'FAILED'}")
    return "\n".join(lines)


def _build_result(
    seed: int = 23,
    num_writes: int = 240,
    object_bytes: int = 256 * KB,
    num_cold_reads: int = 40,
    write_seconds: float = 600.0,
    total_seconds: float = 950.0,
    power_budget_watts: float = 40.0,
    detect_races: bool = False,
    energy: bool = True,
) -> ExperimentResult:
    registry = MetricsRegistry()
    raw = run(
        detect_races=detect_races,
        metrics=registry,
        seed=seed,
        num_writes=num_writes,
        object_bytes=object_bytes,
        num_cold_reads=num_cold_reads,
        write_seconds=write_seconds,
        total_seconds=total_seconds,
        power_budget_watts=power_budget_watts,
        energy=energy,
    )
    staged = raw["variants"]["staged"]
    through = raw["variants"]["write_through"]
    metrics_out = {
        "staged_spin_ups": staged["spin_ups"],
        "write_through_spin_ups": through["spin_ups"],
        "staged_write_p99_seconds": staged["write_p99"],
        "write_through_write_p99_seconds": through["write_p99"],
        "staged_cold_read_p99_seconds": staged["cold_read_p99"],
        "write_through_cold_read_p99_seconds": through["cold_read_p99"],
        "staged_energy_joules": staged["energy_joules"],
        "write_through_energy_joules": through["energy_joules"],
        "staged_demotion_batches": staged["store"]["demotion_batches"],
        "staged_demoted_bytes": staged["store"]["demoted_bytes"],
    }
    if energy:
        for name, summary in (("staged", staged), ("write_through", through)):
            metrics_out[f"{name}_wall_joules"] = summary["energy"]["identity"][
                "wall_joules"
            ]
            for account, joules in summary["energy"]["accounts"].items():
                metrics_out[f"{name}_joules[{account}]"] = joules
            for tier, book in summary["energy"]["tiers"].items():
                metrics_out[f"{name}_tier_joules[{tier}]"] = book["total"]
    return ExperimentResult(
        name="tiering_staging",
        paper_ref="§IV-F extended: hot/cold tiering with write staging",
        params={
            "seed": seed,
            "num_writes": num_writes,
            "object_bytes": object_bytes,
            "num_cold_reads": num_cold_reads,
            "write_seconds": write_seconds,
            "total_seconds": total_seconds,
            "power_budget_watts": power_budget_watts,
            "detect_races": detect_races,
            "energy": energy,
        },
        metrics=metrics_out,
        paper_expected={},
        relative_errors={},
        anchors=dict(raw["anchors"]),
        obs=registry.dump(),
        raw=raw,
        text=_report(raw),
    )


EXPERIMENT = Experiment(
    name="tiering_staging",
    paper_ref="§IV-F extended: hot/cold tiering with write staging",
    description="Archival writes: staged hot tier vs write-through cold homes",
    builder=_build_result,
    params={
        "seed": 23,
        "num_writes": 240,
        "object_bytes": 256 * KB,
        "num_cold_reads": 40,
        "write_seconds": 600.0,
        "total_seconds": 950.0,
        "power_budget_watts": 40.0,
        "detect_races": False,
        "energy": True,
    },
)


def main() -> str:
    return EXPERIMENT.run().render()


if __name__ == "__main__":
    print(main())
