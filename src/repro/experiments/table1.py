"""Experiment: Table I — CapEx comparison of five storage solutions.

Regenerates the paper's cost table for 10 PB of raw capacity and checks
the headline claims (UStore ~24% cheaper than BACKBLAZE with media,
~55% cheaper without).
"""

from __future__ import annotations

from typing import Dict, List

from repro.cost import cost_table, ustore_savings_vs_backblaze
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.common import format_table, relative_error

__all__ = ["EXPERIMENT", "PAPER_TABLE1", "run"]

#: Paper values, thousands of dollars: (CapEx, AttEx).
PAPER_TABLE1 = {
    "DELL PowerVault MD3260i": (3340, 1525),
    "Sun StorageTek SL150": (1748, None),
    "Pergamum": (756, 415),
    "BACKBLAZE": (598, 257),
    "UStore": (456, 115),
}


def run() -> Dict:
    rows: List[List] = []
    for estimate in cost_table():
        paper_capex, paper_attex = PAPER_TABLE1[estimate.system]
        rows.append(
            [
                estimate.system,
                estimate.media,
                round(estimate.capex_thousands),
                paper_capex,
                None if estimate.attex is None else round(estimate.attex_thousands),
                paper_attex,
            ]
        )
    savings = ustore_savings_vs_backblaze()
    return {
        "headers": ["System", "Media", "CapEx$k", "paper", "AttEx$k", "paper"],
        "rows": rows,
        "capex_saving_vs_backblaze": savings["capex_saving"],
        "attex_saving_vs_backblaze": savings["attex_saving"],
        "paper_claims": {"capex_saving": 0.24, "attex_saving": 0.55},
    }


def _report(result: Dict) -> str:
    lines = ["Table I: estimated CapEx of a 10PB raw deployment", ""]
    lines.append(format_table(result["headers"], result["rows"]))
    lines.append("")
    lines.append(
        f"UStore vs BACKBLAZE: CapEx {result['capex_saving_vs_backblaze']:.0%} lower "
        f"(paper: 24%), AttEx {result['attex_saving_vs_backblaze']:.0%} lower (paper: 55%)"
    )
    return "\n".join(lines)


def _build_result() -> ExperimentResult:
    raw = run()
    claims = raw["paper_claims"]
    return ExperimentResult(
        name="table1",
        paper_ref="Table I",
        metrics={
            "capex_saving_vs_backblaze": raw["capex_saving_vs_backblaze"],
            "attex_saving_vs_backblaze": raw["attex_saving_vs_backblaze"],
        },
        paper_expected=dict(claims),
        relative_errors={
            "capex_saving": relative_error(
                raw["capex_saving_vs_backblaze"], claims["capex_saving"]
            ),
            "attex_saving": relative_error(
                raw["attex_saving_vs_backblaze"], claims["attex_saving"]
            ),
        },
        raw=raw,
        text=_report(raw),
    )


EXPERIMENT = Experiment(
    name="table1",
    paper_ref="Table I",
    description="CapEx comparison of five storage solutions (10 PB)",
    builder=_build_result,
)


def main() -> str:
    return EXPERIMENT.run().render()


if __name__ == "__main__":
    print(main())
