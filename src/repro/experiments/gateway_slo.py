"""Experiment: the gateway tier under open-loop multi-tenant load.

Two identical deployments, two schedulers, one power budget: the
power-aware cold-read batch scheduler versus a naive FIFO front end.
An interactive tenant (hundreds of thousands of logical users issuing
occasional cold reads) and an archival tenant (a few batch pipelines)
offer ~1.5 req/s against 16 mostly spun-down disks with a 24 W budget
— enough for three disks at active draw, far less than the offered
spinning demand, which is exactly the regime §IV-F's batching argument
is about.

Anchors: the batch scheduler finishes the same workload with strictly
fewer disk spin-ups *and* a strictly lower p99 latency than FIFO at
the same budget, and neither scheduler loses or double-issues a
request (every admitted request completes exactly once).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.deployment import DeploymentConfig, build_deployment
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.common import format_table
from repro.gateway import (
    Gateway,
    GatewayConfig,
    OpenLoopTrafficGenerator,
    TenantSpec,
    mount_gateway_spaces,
)
from repro.obs import (
    ConservationAuditor,
    CriticalPathAnalyzer,
    EnergyLedger,
    FlightRecorder,
    MetricsRegistry,
    RequestTracer,
    SloMonitor,
    SloObjective,
)
from repro.power import PowerMeter
from repro.sim import EventDigest
from repro.workload.specs import KB, MB

__all__ = ["EXPERIMENT", "TENANTS", "run", "run_point", "slo_objectives"]

#: The two-tenant mix: many small interactive cold-readers plus a few
#: heavy archival pipelines (open loop: rate = users x rate_per_user).
TENANTS = (
    TenantSpec(
        name="interactive",
        weight=4.0,
        users=150_000,
        rate_per_user=6.0e-6,  # 0.9 req/s aggregate
        read_fraction=1.0,
        object_sizes=((512 * KB, 0.3), (4 * MB, 0.7)),
        slo_seconds=45.0,
        max_queue_depth=128,
    ),
    TenantSpec(
        name="archival",
        weight=1.0,
        users=25,
        rate_per_user=2.4e-2,  # 0.6 req/s aggregate
        read_fraction=0.6,
        object_sizes=((4 * MB, 1.0),),
        slo_seconds=180.0,
        max_queue_depth=128,
    ),
)

SPACE_BYTES = 64 * MB
SETTLE_SECONDS = 15.0
#: Cap on post-arrival drain time (a saturated FIFO run needs a while).
DRAIN_CAP_SECONDS = 900.0
DRAIN_STEP_SECONDS = 5.0


def slo_objectives() -> List[SloObjective]:
    """Burn-rate objectives for the two gateway tenants (95% over 60 s)."""
    return [
        SloObjective(tenant=spec.name, objective=0.95, window_seconds=60.0)
        for spec in TENANTS
    ]


def run_point(
    scheduler: str,
    seed: int = 11,
    duration: float = 180.0,
    power_budget_watts: float = 24.0,
    load_scale: float = 1.0,
    detect_races: bool = False,
    event_digest: Optional[EventDigest] = None,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[RequestTracer] = None,
    energy: bool = False,
) -> Dict:
    """Run one (scheduler, load) point on a fresh deployment.

    Builds a full 16-disk deployment, mounts one gateway space per
    disk, spins every disk down, then offers ``duration`` seconds of
    open-loop traffic and drains the queues.  Returns the gateway's
    exact summary plus offered-traffic and race accounting.  Passing a
    :class:`~repro.obs.RequestTracer` arms end-to-end request tracing:
    the summary then also carries the critical-path latency
    attribution, the per-tenant SLO burn-rate state, and the flight
    recorder's dump count.  ``energy=True`` arms a ``PowerMeter`` +
    :class:`~repro.obs.EnergyLedger` pair over the traffic-and-drain
    window and adds a per-tenant wall-joule breakdown whose accounts
    sum to the meter integral (the DESIGN §15 conservation identity).
    """
    attribution_tracer = tracer
    if energy and attribution_tracer is None:
        # Per-tenant attribution rides the trace threading; arm a
        # private tracer when the caller did not supply one.
        attribution_tracer = RequestTracer()
    deployment = build_deployment(
        config=DeploymentConfig(detect_races=detect_races, seed=seed),
        metrics=metrics,
        tracer=attribution_tracer,
    )
    if event_digest is not None:
        event_digest.attach(deployment.sim)
    monitor: Optional[SloMonitor] = None
    recorder: Optional[FlightRecorder] = None
    if tracer is not None and tracer.enabled:
        # Recorder first: its ring must already hold the triggering
        # trace when the monitor's alert instant fires.
        recorder = FlightRecorder(tracer)
        monitor = SloMonitor(tracer, slo_objectives())
    deployment.settle(SETTLE_SECONDS)
    objects, spaces = mount_gateway_spaces(deployment, SPACE_BYTES)
    for disk_id in sorted(deployment.disks):
        deployment.disks[disk_id].spin_down()
    ledger: Optional[EnergyLedger] = None
    meter: Optional[PowerMeter] = None
    if energy:
        ledger = EnergyLedger()
        meter = PowerMeter(deployment, ledger=ledger)
        meter.start()
    gateway = Gateway(
        deployment.sim,
        TENANTS,
        GatewayConfig(
            power_budget_watts=power_budget_watts,
            scheduler=scheduler,
        ),
    )
    gateway.attach(objects, spaces, deployment.disks, host_of=deployment.host_of_disk)
    gateway.start()
    generator = OpenLoopTrafficGenerator(
        deployment.sim, gateway, deployment.rng, load_scale=load_scale
    )
    generator.start(duration)
    end = deployment.sim.now + duration
    deployment.sim.run(until=end)
    deadline = end + DRAIN_CAP_SECONDS
    while not gateway.drained() and deployment.sim.now < deadline:
        deployment.sim.run(until=deployment.sim.now + DRAIN_STEP_SECONDS)
    summary = gateway.summary()
    summary["offered"] = {
        name: {
            "submitted": generator.stats[name].submitted,
            "rejected": generator.stats[name].rejected,
        }
        for name in sorted(generator.stats)
    }
    summary["drain_seconds"] = deployment.sim.now - end
    summary["drained"] = gateway.drained()
    if ledger is not None and meter is not None:
        auditor = ConservationAuditor(meter, ledger)
        summary["energy"] = {
            "identity": auditor.audit(deployment.sim.now),
            "accounts": ledger.account_joules(),
            "tiers": ledger.tier_joules(),
            "spin_up_blames": len(ledger.blames),
            "requests_charged": len(ledger.requests),
            "export": ledger.to_dict(),
        }
    if detect_races:
        summary["races"] = list(deployment.sim.races)
    if monitor is not None and recorder is not None and tracer is not None:
        analyzer = CriticalPathAnalyzer()
        requests = [ctx for ctx in tracer.completed if ctx.kind == "request"]
        summary["trace"] = {
            "completed": len(tracer.completed),
            "attribution": analyzer.aggregate(requests),
            "slo": monitor.summary(),
            "flight_dumps": len(recorder.dumps),
        }
        # The tracer may be reused on another deployment; don't let this
        # run's sinks (and their windows) leak into the next one.
        monitor.detach()
        recorder.detach()
    return summary


def run(
    detect_races: bool = False,
    event_digest: Optional[EventDigest] = None,
    metrics: Optional[MetricsRegistry] = None,
    seed: int = 11,
    duration: float = 180.0,
    power_budget_watts: float = 24.0,
    load_scale: float = 1.0,
    trace: bool = False,
    energy: bool = True,
) -> Dict:
    """Run both schedulers on identically seeded deployments."""
    variants: Dict[str, Dict] = {}
    races: List = []
    for scheduler in ("batch", "fifo"):
        # Fresh tracer per variant: each deployment restarts sim time
        # at zero, so sharing one would interleave unrelated windows.
        tracer = RequestTracer() if trace else None
        summary = run_point(
            scheduler,
            seed=seed,
            duration=duration,
            power_budget_watts=power_budget_watts,
            load_scale=load_scale,
            detect_races=detect_races,
            event_digest=event_digest,
            metrics=metrics,
            tracer=tracer,
            energy=energy,
        )
        if detect_races:
            races.extend(summary.pop("races", []))
        variants[scheduler] = summary
    batch, fifo = variants["batch"], variants["fifo"]

    def _exactly_once(summary: Dict) -> bool:
        return (
            summary["failed"] == 0
            and summary["completed"] == summary["admitted"]
            and bool(summary["drained"])
        )

    anchors = {
        # §IV-F: one spin-up amortized over a batch beats one per read.
        "batch_fewer_spin_ups": batch["spin_ups"] < fifo["spin_ups"],
        "batch_p99_lower": batch["latency_p99"] < fifo["latency_p99"],
        "no_requests_lost": _exactly_once(batch) and _exactly_once(fifo),
        "batch_lower_energy": batch["energy_joules"] < fifo["energy_joules"],
    }
    if trace:
        # Every traced request's phase segments must sum to its
        # measured end-to-end latency — the attribution identity.
        anchors["attribution_identity"] = all(
            variant["trace"]["attribution"]["identity_failures"] == 0
            for variant in variants.values()
        )
    if energy:
        # The §15 conservation identity: per-account joules sum to the
        # PowerMeter wall integral in both variants.
        anchors["energy_conserved"] = all(
            variant["energy"]["identity"]["conserved"]
            for variant in variants.values()
        )
    result: Dict = {
        "params": {
            "seed": seed,
            "duration": duration,
            "power_budget_watts": power_budget_watts,
            "load_scale": load_scale,
            "trace": trace,
            "energy": energy,
        },
        "variants": variants,
        "anchors": anchors,
    }
    if detect_races:
        result["races"] = races
    return result


def _report(result: Dict) -> str:
    lines = [
        "Gateway SLO: batch vs FIFO scheduling under one power budget",
        "",
    ]
    headers = [
        "Scheduler", "Completed", "Rejected", "SLO miss", "Spin-ups",
        "Batches", "p50 s", "p99 s", "Energy kJ",
    ]
    rows = []
    for name in ("batch", "fifo"):
        summary = result["variants"][name]
        rows.append(
            [
                name,
                summary["completed"],
                summary["rejected"],
                summary["slo_misses"],
                summary["spin_ups"],
                summary["batches"],
                round(summary["latency_p50"], 2),
                round(summary["latency_p99"], 2),
                round(summary["energy_joules"] / 1000.0, 2),
            ]
        )
    lines.append(format_table(headers, rows))
    if any("trace" in result["variants"][n] for n in ("batch", "fifo")):
        lines.append("")
        lines.append("Latency attribution (share of traced request time):")
        for name in ("batch", "fifo"):
            summary = result["variants"][name]
            if "trace" not in summary:
                continue
            attribution = summary["trace"]["attribution"]
            shares = attribution["shares"]
            parts = ", ".join(
                f"{component}={shares[component]:.1%}"
                for component in sorted(shares, key=lambda c: -shares[c])
                if shares[component] > 0.0005
            )
            lines.append(f"  {name}: {parts or 'no traced requests'}")
            slo = summary["trace"]["slo"]
            fired = sum(t["alerts"] for t in slo["tenants"].values())
            lines.append(
                f"  {name}: traces={attribution['traces']} "
                f"identity_failures={attribution['identity_failures']} "
                f"slo_alerts={fired}"
            )
    if any("energy" in result["variants"][n] for n in ("batch", "fifo")):
        lines.append("")
        lines.append("Energy attribution (wall joules by account):")
        for name in ("batch", "fifo"):
            summary = result["variants"][name]
            if "energy" not in summary:
                continue
            energy = summary["energy"]
            accounts = energy["accounts"]
            parts = ", ".join(
                f"{account}={accounts[account]:.0f}J"
                for account in sorted(accounts, key=lambda a: -accounts[a])
            )
            identity = energy["identity"]
            lines.append(f"  {name}: {parts}")
            lines.append(
                f"  {name}: wall={identity['wall_joules']:.0f}J "
                f"residual={identity['residual']:.9f}J "
                f"conserved={identity['conserved']} "
                f"spin_up_blames={energy['spin_up_blames']}"
            )
    lines.append("")
    for name, holds in result["anchors"].items():
        lines.append(f"  anchor {name}: {'OK' if holds else 'FAILED'}")
    return "\n".join(lines)


def _build_result(
    seed: int = 11,
    duration: float = 180.0,
    power_budget_watts: float = 24.0,
    load_scale: float = 1.0,
    detect_races: bool = False,
    trace: bool = False,
    energy: bool = True,
) -> ExperimentResult:
    registry = MetricsRegistry()
    raw = run(
        detect_races=detect_races,
        metrics=registry,
        seed=seed,
        duration=duration,
        power_budget_watts=power_budget_watts,
        load_scale=load_scale,
        trace=trace,
        energy=energy,
    )
    batch, fifo = raw["variants"]["batch"], raw["variants"]["fifo"]
    metrics_out = {
        "batch_spin_ups": batch["spin_ups"],
        "fifo_spin_ups": fifo["spin_ups"],
        "batch_p99_seconds": batch["latency_p99"],
        "fifo_p99_seconds": fifo["latency_p99"],
        "batch_energy_joules": batch["energy_joules"],
        "fifo_energy_joules": fifo["energy_joules"],
        "batch_slo_misses": batch["slo_misses"],
        "fifo_slo_misses": fifo["slo_misses"],
    }
    if energy:
        for name, summary in (("batch", batch), ("fifo", fifo)):
            metrics_out[f"{name}_wall_joules"] = summary["energy"]["identity"][
                "wall_joules"
            ]
            for account, joules in summary["energy"]["accounts"].items():
                metrics_out[f"{name}_joules[{account}]"] = joules
    return ExperimentResult(
        name="gateway_slo",
        paper_ref="§IV-F / Table III (request tier)",
        params={
            "seed": seed,
            "duration": duration,
            "power_budget_watts": power_budget_watts,
            "load_scale": load_scale,
            "detect_races": detect_races,
            "trace": trace,
            "energy": energy,
        },
        metrics=metrics_out,
        paper_expected={},
        relative_errors={},
        anchors=dict(raw["anchors"]),
        obs=registry.dump(),
        raw=raw,
        text=_report(raw),
    )


EXPERIMENT = Experiment(
    name="gateway_slo",
    paper_ref="§IV-F / Table III (request tier)",
    description="Multi-tenant gateway: power-budgeted batching vs FIFO",
    builder=_build_result,
    params={
        "seed": 11,
        "duration": 180.0,
        "power_budget_watts": 24.0,
        "load_scale": 1.0,
        "detect_races": False,
        "trace": False,
        "energy": True,
    },
)


def main() -> str:
    return EXPERIMENT.run().render()


if __name__ == "__main__":
    print(main())
