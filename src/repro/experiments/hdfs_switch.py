"""Experiment: §VII-B — HDFS on UStore across a disk switch.

Deployment mirrors the paper: four prototype hosts, one namenode and
three datanodes, three replicas, UStore disks as datanode storage.
While a client streams a file into HDFS, one datanode's backing disk is
switched to another host.  Expected observations:

* the write sees a transient, seconds-long disruption (an error and
  retry, or one slow packet) and then resumes — no rebuild;
* reads are not interrupted at all, because replicas cover the gap.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from repro.cluster.deployment import build_deployment
from repro.experiments.base import Experiment, ExperimentResult
from repro.fabric.switching import SwitchConflict, plan_switches
from repro.hdfs import build_hdfs_on_ustore
from repro.net.rpc import RpcClient
from repro.obs import MetricsRegistry
from repro.sim import Event
from repro.workload.specs import MB

__all__ = ["EXPERIMENT", "run"]

FILE_BYTES = 192 * MB
SWITCH_AFTER = 5.0


def _conflict_free_target(fabric, disk: str) -> str:
    current = fabric.attached_host(disk)
    for host in fabric.reachable_hosts(disk):
        if host == current:
            continue
        try:
            plan_switches(fabric, [(disk, host)])
            return host
        except SwitchConflict:
            continue
    raise RuntimeError(f"no conflict-free target for {disk}")


def run(metrics: Optional[MetricsRegistry] = None) -> Dict:
    deployment = build_deployment(metrics=metrics)
    deployment.settle(15.0)
    sim = deployment.sim
    hdfs = sim.run_until_event(sim.process(build_hdfs_on_ustore(deployment)))
    deployment.settle(3.0)

    client = hdfs.new_client("hdfs-app")
    disk = hdfs.backing_disk_of("dn0")
    source = deployment.fabric.attached_host(disk)
    target = _conflict_free_target(deployment.fabric, disk)
    master = deployment.active_master().address
    rpc = RpcClient(sim, deployment.network, "hdfs-op")
    switch_done = {}

    def migrate() -> Generator[Event, None, None]:
        yield sim.timeout(SWITCH_AFTER)
        yield from rpc.call(master, "master.migrate_disk", disk, target, timeout=60.0)
        switch_done["time"] = sim.now

    sim.process(migrate())

    def write() -> Generator[Event, None, object]:
        report = yield from client.write_file("/paper-file", FILE_BYTES)
        return report

    write_start = sim.now
    report = sim.run_until_event(sim.process(write()))
    write_seconds = sim.now - write_start

    # A second switch during reads: replicas keep serving.
    back_target = source

    def migrate_back() -> Generator[Event, None, None]:
        yield sim.timeout(0.5)
        yield from rpc.call(master, "master.migrate_disk", disk, back_target, timeout=60.0)

    sim.process(migrate_back())

    def read() -> Generator[Event, None, object]:
        result = yield from client.read_file("/paper-file")
        return result

    read_start = sim.now
    read_result = sim.run_until_event(sim.process(read()))
    read_seconds = sim.now - read_start

    median_packet = sorted(report.packet_latencies)[len(report.packet_latencies) // 2]
    return {
        "bytes_written": report.bytes_written,
        "write_seconds": write_seconds,
        "client_errors": report.errors,
        "slowest_packet_s": report.slowest_packet,
        "median_packet_s": median_packet,
        "pipelines_rebuilt": report.pipelines_rebuilt,
        "bytes_read": read_result["bytes_read"],
        "read_seconds": read_seconds,
        "read_replica_switches": read_result["replica_switches"],
        "switched_disk": disk,
        "switch_path": (source, target),
        "anchors": {
            # "the HDFS client encounters error only for several
            # seconds, then it resumes the operation again"
            "disruption_is_seconds_not_minutes": report.slowest_packet < 15.0,
            "write_completes": report.bytes_written == FILE_BYTES,
            # "Read operation is not interrupted at all since there are
            # three replicas."
            "read_uninterrupted": read_result["bytes_read"] == FILE_BYTES,
        },
    }


def _report(result: Dict) -> str:
    lines = [
        "HDFS-on-UStore disk switch (paper §VII-B)",
        "",
        f"  wrote {result['bytes_written'] / MB:.0f} MB in {result['write_seconds']:.1f}s "
        f"while switching {result['switched_disk']} "
        f"{result['switch_path'][0]} -> {result['switch_path'][1]}",
        f"  client errors: {result['client_errors']}, slowest packet "
        f"{result['slowest_packet_s']:.2f}s (median {result['median_packet_s']:.3f}s), "
        f"pipelines rebuilt: {result['pipelines_rebuilt']}",
        f"  read back {result['bytes_read'] / MB:.0f} MB in {result['read_seconds']:.1f}s "
        f"with {result['read_replica_switches']} replica switch(es)",
        "",
    ]
    for name, holds in result["anchors"].items():
        lines.append(f"  anchor {name}: {'OK' if holds else 'FAILED'}")
    return "\n".join(lines)


def _build_result() -> ExperimentResult:
    registry = MetricsRegistry()
    raw = run(metrics=registry)
    return ExperimentResult(
        name="hdfs_switch",
        paper_ref="§VII-B",
        metrics={
            "write_seconds": raw["write_seconds"],
            "slowest_packet_s": raw["slowest_packet_s"],
            "read_seconds": raw["read_seconds"],
            "pipelines_rebuilt": raw["pipelines_rebuilt"],
        },
        paper_expected={
            "disruption": "seconds-long error window, then resume",
            "reads": "not interrupted (three replicas)",
        },
        anchors=dict(raw["anchors"]),
        obs=registry.dump(),
        raw=raw,
        text=_report(raw),
    )


EXPERIMENT = Experiment(
    name="hdfs_switch",
    paper_ref="§VII-B",
    description="HDFS-on-UStore write/read across a live disk switch",
    builder=_build_result,
)


def main() -> str:
    return EXPERIMENT.run().render()


if __name__ == "__main__":
    print(main())
