"""Experiment: packed shard layout vs naive per-object placement.

The object-count workload (billions of small archival objects) on
UStore hardware: 1000 small objects are ingested and a sample read
back through the gateway under the same 24 W power budget, with two
placements on identically seeded deployments:

* **packed** — the :mod:`repro.shardstore` tier routes each object to
  ``route(uid, date)``, packs it into an 8 MiB day-partitioned shard,
  and flushes whole shards as single sequential writes.  One day's 16
  shards land on ~3 of the 16 spaces, so ingest pays ~3 spin-ups and
  retrieval hits a handful of disks whose same-shard reads coalesce
  into single passes.
* **naive** — one gateway request per object, hash-spread over all 16
  spaces (the placement a small-object workload gets with no packing
  tier).  Every disk must spin for ingest *and* for the read-back
  sample, and the power budget (3 disks' worth) serializes the
  spin-up waves.

Anchors: the packed layout acks and retrieves every object exactly
once, with strictly fewer spin-ups, a strictly lower retrieval p99,
and no more disk energy than naive at the same budget.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.cluster.deployment import DeploymentConfig, build_deployment
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.common import format_table
from repro.gateway import (
    Gateway,
    GatewayConfig,
    GatewayRequest,
    ObjectRef,
    ReadObject,
    TenantSpec,
    WriteObject,
    mount_gateway_spaces,
)
from repro.obs import MetricsRegistry
from repro.shardstore import (
    RECORD_HEADER_BYTES,
    PackedObject,
    ShardStore,
    ShardStoreConfig,
    stable_hash,
)
from repro.sim import EventDigest
from repro.units import MiB
from repro.workload.specs import KB, MB

__all__ = ["EXPERIMENT", "TENANT", "run", "run_point"]

TENANT = TenantSpec(
    name="objects",
    weight=1.0,
    users=0,
    rate_per_user=0.0,
    read_fraction=1.0,
    object_sizes=((64 * KB, 1.0),),
    slo_seconds=120.0,
    max_queue_depth=100_000,
)

#: Every object lands on one calendar day (the paper's publication
#: spring); multi-day retention is exercised by the routing tests.
DATE = "2015-06-01"
SPACE_BYTES = 64 * MB
SHARD_CAPACITY = 8 * MiB
SHARDS_PER_DAY = 16
SETTLE_SECONDS = 15.0
PUT_SECONDS = 60.0
GET_SECONDS = 30.0
DRAIN_CAP_SECONDS = 900.0
DRAIN_STEP_SECONDS = 5.0


def _percentile(values: List[float], q: float) -> float:
    """Exact nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil((q / 100.0) * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def _build_gateway(
    seed: int,
    power_budget_watts: float,
    detect_races: bool,
    event_digest: Optional[EventDigest],
    metrics: Optional[MetricsRegistry],
):
    deployment = build_deployment(
        config=DeploymentConfig(detect_races=detect_races, seed=seed),
        metrics=metrics,
    )
    if event_digest is not None:
        event_digest.attach(deployment.sim)
    deployment.settle(SETTLE_SECONDS)
    objects, spaces = mount_gateway_spaces(deployment, SPACE_BYTES)
    for disk_id in sorted(deployment.disks):
        deployment.disks[disk_id].spin_down()
    gateway = Gateway(
        deployment.sim,
        [TENANT],
        GatewayConfig(
            power_budget_watts=power_budget_watts,
            scheduler="batch",
            coalesce_gap_bytes=SHARD_CAPACITY,
        ),
    )
    gateway.attach(objects, spaces, deployment.disks, host_of=deployment.host_of_disk)
    gateway.start()
    return deployment, gateway


def _drain(deployment, gateway) -> bool:
    deadline = deployment.sim.now + DRAIN_CAP_SECONDS
    while not gateway.drained() and deployment.sim.now < deadline:
        deployment.sim.run(until=deployment.sim.now + DRAIN_STEP_SECONDS)
    return gateway.drained()


def _arrival_times(deployment, stream: str, count: int, span: float) -> List[float]:
    """``count`` sorted uniform arrival offsets over ``span`` seconds."""
    rand = deployment.rng.stream(stream)
    return sorted(rand.uniform(0.0, span) for _ in range(count))


def run_point(
    layout: str,
    seed: int = 17,
    num_objects: int = 1000,
    object_bytes: int = 64 * KB,
    num_gets: int = 200,
    power_budget_watts: float = 24.0,
    detect_races: bool = False,
    event_digest: Optional[EventDigest] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Dict:
    """Run one placement variant on a fresh identically-seeded deployment.

    ``layout`` is ``"packed"`` (shardstore) or ``"naive"`` (one
    hash-spread gateway request per object).  Ingest offers the
    objects over :data:`PUT_SECONDS`, drains, then reads a sample
    back over :data:`GET_SECONDS` and drains again; returns the
    gateway summary plus object-level ack/retrieval latencies.
    """
    if layout not in ("packed", "naive"):
        raise ValueError(f"unknown layout {layout!r}")
    deployment, gateway = _build_gateway(
        seed, power_budget_watts, detect_races, event_digest, metrics
    )
    sim = deployment.sim
    uids = [f"u{index:05d}" for index in range(num_objects)]
    put_times = _arrival_times(deployment, "shardstore.puts", num_objects, PUT_SECONDS)
    sample_rand = deployment.rng.stream("shardstore.gets")
    sample = sorted(sample_rand.sample(range(num_objects), num_gets))
    get_times = _arrival_times(deployment, "shardstore.get_times", num_gets, GET_SECONDS)

    put_latencies: List[float] = []
    get_requests: List[GatewayRequest] = []
    summary: Dict = {}

    if layout == "packed":
        store = ShardStore(
            gateway,
            ShardStoreConfig(
                tenant=TENANT.name,
                shards_per_day=SHARDS_PER_DAY,
                shard_capacity_bytes=SHARD_CAPACITY,
            ),
        )
        records: Dict[str, Tuple[PackedObject, float]] = {}

        def put_all():
            for uid, at in zip(uids, put_times):
                if at > sim.now:
                    yield sim.timeout(at - sim.now)
                records[uid] = (store.put(uid, DATE, object_bytes), sim.now)
            store.flush_all()

        sim.run_until_event(sim.process(put_all()))
        put_drained = _drain(deployment, gateway)
        for uid in uids:
            record, at = records[uid]
            if record.acked_at is not None:
                put_latencies.append(record.acked_at - at)

        get_start = sim.now

        def get_all():
            for index, at in zip(sample, get_times):
                target = get_start + at
                if target > sim.now:
                    yield sim.timeout(target - sim.now)
                get_requests.append(store.get(uids[index], DATE))

        sim.run_until_event(sim.process(get_all()))
        get_drained = _drain(deployment, gateway)
        summary = gateway.summary()
        summary["store"] = store.summary()
        summary["acked_objects"] = store.stats.acked
        summary["retrieved_objects"] = store.stats.retrievals
        summary["spaces_touched"] = summary["store"]["spaces_used"]
    else:
        objects = gateway.objects()
        spaces = [obj.space_id for obj in objects]
        record_bytes = RECORD_HEADER_BYTES + object_bytes
        tails = {space_id: 0 for space_id in spaces}
        refs: Dict[str, ObjectRef] = {}
        for uid in uids:
            space_id = spaces[stable_hash(uid) % len(spaces)]
            refs[uid] = ObjectRef(
                space_id=space_id,
                offset=tails[space_id],
                size=record_bytes,
                object_id=uid,
            )
            tails[space_id] += record_bytes
        put_requests: Dict[str, GatewayRequest] = {}

        def put_all_naive():
            for uid, at in zip(uids, put_times):
                if at > sim.now:
                    yield sim.timeout(at - sim.now)
                put_requests[uid] = gateway.submit(
                    WriteObject(tenant=TENANT.name, ref=refs[uid])
                )

        sim.run_until_event(sim.process(put_all_naive()))
        put_drained = _drain(deployment, gateway)
        for uid in uids:
            latency = put_requests[uid].latency
            if latency is not None:
                put_latencies.append(latency)

        get_start = sim.now

        def get_all_naive():
            for index, at in zip(sample, get_times):
                target = get_start + at
                if target > sim.now:
                    yield sim.timeout(target - sim.now)
                get_requests.append(
                    gateway.submit(
                        ReadObject(tenant=TENANT.name, ref=refs[uids[index]])
                    )
                )

        sim.run_until_event(sim.process(get_all_naive()))
        get_drained = _drain(deployment, gateway)
        summary = gateway.summary()
        summary["acked_objects"] = sum(
            1 for uid in uids if put_requests[uid].failure is None
        )
        summary["retrieved_objects"] = sum(
            1 for request in get_requests if request.failure is None
        )
        summary["spaces_touched"] = sum(1 for tail in tails.values() if tail > 0)

    get_latencies = [
        request.latency for request in get_requests if request.latency is not None
    ]
    summary["layout"] = layout
    summary["drained"] = put_drained and get_drained
    summary["put_p50"] = _percentile(put_latencies, 50)
    summary["put_p99"] = _percentile(put_latencies, 99)
    summary["get_p50"] = _percentile(get_latencies, 50)
    summary["get_p99"] = _percentile(get_latencies, 99)
    summary["exactly_once"] = (
        summary["acked_objects"] == num_objects
        and summary["retrieved_objects"] == num_gets
        and summary["failed"] == 0
        and all(request.attempts == 1 for request in get_requests)
    )
    if detect_races:
        summary["races"] = list(sim.races)
    return summary


def run(
    detect_races: bool = False,
    event_digest: Optional[EventDigest] = None,
    metrics: Optional[MetricsRegistry] = None,
    seed: int = 17,
    num_objects: int = 1000,
    object_bytes: int = 64 * KB,
    num_gets: int = 200,
    power_budget_watts: float = 24.0,
) -> Dict:
    """Run both layouts on identically seeded deployments."""
    variants: Dict[str, Dict] = {}
    races: List = []
    for layout in ("packed", "naive"):
        summary = run_point(
            layout,
            seed=seed,
            num_objects=num_objects,
            object_bytes=object_bytes,
            num_gets=num_gets,
            power_budget_watts=power_budget_watts,
            detect_races=detect_races,
            event_digest=event_digest,
            metrics=metrics,
        )
        if detect_races:
            races.extend(summary.pop("races", []))
        variants[layout] = summary
    packed, naive = variants["packed"], variants["naive"]
    anchors = {
        # One spin-up amortized over a shard's worth of objects.
        "packed_fewer_spin_ups": packed["spin_ups"] < naive["spin_ups"],
        "packed_get_p99_lower": packed["get_p99"] < naive["get_p99"],
        "packed_no_more_energy": packed["energy_joules"] <= naive["energy_joules"],
        "exactly_once_both": bool(
            packed["exactly_once"] and naive["exactly_once"]
        ),
        "both_drained": bool(packed["drained"] and naive["drained"]),
    }
    result: Dict = {
        "params": {
            "seed": seed,
            "num_objects": num_objects,
            "object_bytes": object_bytes,
            "num_gets": num_gets,
            "power_budget_watts": power_budget_watts,
        },
        "variants": variants,
        "anchors": anchors,
    }
    if detect_races:
        result["races"] = races
    return result


def _report(result: Dict) -> str:
    lines = [
        "Shardstore: packed shard layout vs naive per-object placement",
        "",
    ]
    headers = [
        "Layout", "Spaces", "Spin-ups", "Passes", "Coalesced",
        "put p99 s", "get p99 s", "Energy kJ",
    ]
    rows = []
    for name in ("packed", "naive"):
        summary = result["variants"][name]
        rows.append(
            [
                name,
                summary["spaces_touched"],
                summary["spin_ups"],
                summary["disk_passes"],
                summary["coalesced_reads"],
                round(summary["put_p99"], 2),
                round(summary["get_p99"], 2),
                round(summary["energy_joules"] / 1000.0, 2),
            ]
        )
    lines.append(format_table(headers, rows))
    packed = result["variants"]["packed"]
    if "store" in packed:
        store = packed["store"]
        lines.append("")
        lines.append(
            f"  packed: {store['acked']} objects in {store['flushes']} flushes "
            f"across {store['shards_used']} shards "
            f"(mean occupancy {store['mean_occupancy']:.1%})"
        )
    lines.append("")
    for name, holds in result["anchors"].items():
        lines.append(f"  anchor {name}: {'OK' if holds else 'FAILED'}")
    return "\n".join(lines)


def _build_result(
    seed: int = 17,
    num_objects: int = 1000,
    object_bytes: int = 64 * KB,
    num_gets: int = 200,
    power_budget_watts: float = 24.0,
    detect_races: bool = False,
) -> ExperimentResult:
    registry = MetricsRegistry()
    raw = run(
        detect_races=detect_races,
        metrics=registry,
        seed=seed,
        num_objects=num_objects,
        object_bytes=object_bytes,
        num_gets=num_gets,
        power_budget_watts=power_budget_watts,
    )
    packed, naive = raw["variants"]["packed"], raw["variants"]["naive"]
    return ExperimentResult(
        name="shardstore_small_objects",
        paper_ref="§IV-F extended to the object-count workload",
        params={
            "seed": seed,
            "num_objects": num_objects,
            "object_bytes": object_bytes,
            "num_gets": num_gets,
            "power_budget_watts": power_budget_watts,
            "detect_races": detect_races,
        },
        metrics={
            "packed_spin_ups": packed["spin_ups"],
            "naive_spin_ups": naive["spin_ups"],
            "packed_get_p99_seconds": packed["get_p99"],
            "naive_get_p99_seconds": naive["get_p99"],
            "packed_put_p99_seconds": packed["put_p99"],
            "naive_put_p99_seconds": naive["put_p99"],
            "packed_energy_joules": packed["energy_joules"],
            "naive_energy_joules": naive["energy_joules"],
            "packed_disk_passes": packed["disk_passes"],
            "naive_disk_passes": naive["disk_passes"],
            "packed_coalesced_reads": packed["coalesced_reads"],
        },
        paper_expected={},
        relative_errors={},
        anchors=dict(raw["anchors"]),
        obs=registry.dump(),
        raw=raw,
        text=_report(raw),
    )


EXPERIMENT = Experiment(
    name="shardstore_small_objects",
    paper_ref="§IV-F extended to the object-count workload",
    description="Small objects: packed shards vs naive per-object placement",
    builder=_build_result,
    params={
        "seed": 17,
        "num_objects": 1000,
        "object_bytes": 64 * KB,
        "num_gets": 200,
        "power_budget_watts": 24.0,
        "detect_races": False,
    },
)


def main() -> str:
    return EXPERIMENT.run().render()


if __name__ == "__main__":
    print(main())
