"""Experiment: Table IV — hub power vs number of connected disks."""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.common import format_table, relative_error
from repro.fabric.power import hub_power

__all__ = ["PAPER_TABLE4", "run"]

PAPER_TABLE4 = {0: 0.21, 1: 1.06, 2: 1.23, 3: 1.47, 4: 1.67}


def run() -> Dict:
    rows: List[List] = []
    worst = 0.0
    for count, paper in sorted(PAPER_TABLE4.items()):
        model = hub_power(count)
        error = relative_error(model, paper)
        worst = max(worst, abs(error))
        rows.append([count, round(model, 2), paper, f"{error:+.1%}"])
    return {
        "headers": ["Disks", "Model W", "Paper W", "Err"],
        "rows": rows,
        "worst_error": worst,
    }


def main() -> str:
    result = run()
    lines = ["Table IV: hub power vs connected disks", ""]
    lines.append(format_table(result["headers"], result["rows"]))
    return "\n".join(lines)


if __name__ == "__main__":
    print(main())
