"""Experiment: Table IV — hub power vs number of connected disks."""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.common import format_table, relative_error
from repro.fabric.power import hub_power

__all__ = ["EXPERIMENT", "PAPER_TABLE4", "run"]

PAPER_TABLE4 = {0: 0.21, 1: 1.06, 2: 1.23, 3: 1.47, 4: 1.67}


def run() -> Dict:
    rows: List[List] = []
    worst = 0.0
    for count, paper in sorted(PAPER_TABLE4.items()):
        model = hub_power(count)
        error = relative_error(model, paper)
        worst = max(worst, abs(error))
        rows.append([count, round(model, 2), paper, f"{error:+.1%}"])
    return {
        "headers": ["Disks", "Model W", "Paper W", "Err"],
        "rows": rows,
        "worst_error": worst,
    }


def _report(result: Dict) -> str:
    lines = ["Table IV: hub power vs connected disks", ""]
    lines.append(format_table(result["headers"], result["rows"]))
    return "\n".join(lines)


def _build_result() -> ExperimentResult:
    raw = run()
    metrics = {f"hub_power_w.{row[0]}_disks": row[1] for row in raw["rows"]}
    errors = {
        f"hub_power.{count}_disks": relative_error(hub_power(count), paper)
        for count, paper in sorted(PAPER_TABLE4.items())
    }
    return ExperimentResult(
        name="table4",
        paper_ref="Table IV",
        metrics={**metrics, "worst_cell_error": raw["worst_error"]},
        paper_expected={f"{c}_disks": p for c, p in sorted(PAPER_TABLE4.items())},
        relative_errors=errors,
        raw=raw,
        text=_report(raw),
    )


EXPERIMENT = Experiment(
    name="table4",
    paper_ref="Table IV",
    description="Hub power vs number of connected disks",
    builder=_build_result,
)


def main() -> str:
    return EXPERIMENT.run().render()


if __name__ == "__main__":
    print(main())
