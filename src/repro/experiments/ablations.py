"""Ablations of UStore's design choices (DESIGN.md §4).

These are not paper tables; they quantify the trade-offs the paper
argues qualitatively:

* switch placement — Figure 2 left (leaf-switched) vs right
  (higher-level switching): hardware count vs hub-failure blast radius;
* fabric width — 2-way vs 4-way dual trees: cost of extra tolerance;
* allocation policy — the paper's affinity+locality rules vs random:
  how often services end up sharing spindles (which blocks §IV-F
  power control);
* spin-down policy — fixed vs adaptive timeout under a bursty cold
  workload: spin cycles vs energy;
* heartbeat timeout — failover latency vs detection safety margin.
"""

from __future__ import annotations

from typing import Dict, Generator, List

from repro.cluster.deployment import DeploymentConfig, build_deployment
from repro.cluster.master import MasterConfig
from repro.experiments.base import Experiment, ExperimentResult
from repro.disk.device import IoRequest, SimulatedDisk
from repro.disk.specs import TOSHIBA_POWER_USB
from repro.fabric.builders import dual_tree_fabric, prototype_fabric, ring_fabric
from repro.power.policy import AdaptiveTimeoutPolicy, FixedTimeoutPolicy, run_policy
from repro.sim import Event, RngRegistry, Simulator
from repro.workload.specs import MB
from repro.workload.traces import cold_read_trace

__all__ = [
    "EXPERIMENT",
    "allocation_policy_ablation",
    "fabric_width_ablation",
    "heartbeat_timeout_ablation",
    "run",
    "spin_down_policy_ablation",
    "switch_placement_ablation",
]


def _census(fabric) -> Dict[str, int]:
    return {
        "hubs": len(fabric.hubs),
        "switches": len(fabric.switches),
        "bridges": len(fabric.bridges),
    }


def _worst_hub_blast_radius(fabric) -> int:
    """Disks left with no usable path if the worst single hub dies."""
    worst = 0
    for hub in fabric.hubs:
        hub.fail()
        lost = sum(
            1
            for disk in fabric.disks
            if not fabric.reachable_hosts(disk.node_id)
        )
        hub.repair()
        worst = max(worst, lost)
    return worst


def switch_placement_ablation() -> Dict:
    """Figure 2 left vs right at the prototype's scale (16 disks)."""
    leaf_switched = dual_tree_fabric(num_disks=16, num_hosts=4, fan_in=4)
    upper_switched = prototype_fabric()
    return {
        "leaf_switched": {
            **_census(leaf_switched),
            "worst_hub_blast_radius": _worst_hub_blast_radius(leaf_switched),
        },
        "upper_switched": {
            **_census(upper_switched),
            "worst_hub_blast_radius": _worst_hub_blast_radius(upper_switched),
        },
    }


def fabric_width_ablation() -> Dict:
    """2-way vs 4-way dual trees: tolerance costs hardware."""
    results = {}
    for hosts in (2, 4):
        fabric = dual_tree_fabric(num_disks=16, num_hosts=hosts, fan_in=4)
        results[f"{hosts}-way"] = {
            **_census(fabric),
            "hosts_reachable_per_disk": len(
                fabric.reachable_hosts("disk0", respect_failures=False)
            ),
        }
    return results


def allocation_policy_ablation(num_services: int = 4, spaces_per_service: int = 6) -> Dict:
    """Paper placement rules vs random placement."""

    def shared_disks(policy: str) -> Dict:
        deployment = build_deployment(config=DeploymentConfig(seed=11))
        deployment.settle(15.0)
        sim = deployment.sim
        rng = RngRegistry(13).stream("alloc-ablation")
        master = deployment.active_master()
        owners: Dict[str, set] = {}

        def scenario() -> Generator[Event, None, None]:
            for service_index in range(num_services):
                service = f"svc{service_index}"
                client = deployment.new_client(f"{policy}-{service}", service=service)
                for _ in range(spaces_per_service):
                    if policy == "random":
                        all_disks = sorted(deployment.disks)
                        keep = rng.choice(all_disks)
                        exclude = [d for d in all_disks if d != keep]
                        info = yield from client.allocate(
                            16 * MB, exclude_disks=exclude
                        )
                    else:
                        info = yield from client.allocate(16 * MB)
                    disk = info["space_id"].split("/")[2]
                    owners.setdefault(disk, set()).add(service)

        sim.run_until_event(sim.process(scenario()))
        shared = sum(1 for services in owners.values() if len(services) > 1)
        power_controllable = sum(
            1 for services in owners.values() if len(services) == 1
        )
        return {
            "disks_used": len(owners),
            "disks_shared_by_services": shared,
            "disks_power_controllable": power_controllable,
        }

    return {"paper_rules": shared_disks("paper"), "random": shared_disks("random")}


def spin_down_policy_ablation(hours: float = 24.0) -> Dict:
    """Fixed vs adaptive idle timeout under a bursty cold workload."""

    def simulate(policy) -> Dict:
        sim = Simulator()
        disk = SimulatedDisk(sim, "cold0")
        run_policy(sim, {"cold0": disk}, policy, check_interval=10.0)
        # A bursty cold trace: mean 10-minute gaps, so a 5-minute fixed
        # timeout thrashes while the adaptive one backs off.
        events = cold_read_trace(
            RngRegistry(23), duration=hours * 3600.0, mean_interarrival=600.0
        )

        def replay() -> Generator[Event, None, None]:
            for access in events:
                delay = access.time - sim.now
                if delay > 0:
                    yield sim.timeout(delay)
                yield disk.submit(
                    IoRequest(
                        offset=access.offset,
                        size=access.size,
                        is_read=access.is_read,
                        sequential_hint=False,
                    )
                )

        done = sim.process(replay())
        sim.run_until_event(done)
        sim.run(until=hours * 3600.0)
        return {
            "spin_ups": disk.states.spin_up_count,
            "energy_wh": disk.energy_joules(TOSHIBA_POWER_USB) / 3600.0,
            "requests": len(events),
        }

    fixed = simulate(FixedTimeoutPolicy(idle_timeout=300.0))
    adaptive = simulate(
        AdaptiveTimeoutPolicy(idle_timeout=300.0, thrash_limit=3, thrash_window=3600.0)
    )
    always_on_wh = TOSHIBA_POWER_USB.idle * hours
    return {
        "fixed": fixed,
        "adaptive": adaptive,
        "always_on_energy_wh": always_on_wh,
    }


def heartbeat_timeout_ablation(timeouts=(1.0, 2.0, 4.0, 8.0)) -> Dict:
    """Failover latency as a function of the heartbeat timeout (§IV-E)."""
    results = {}
    for timeout in timeouts:
        config = DeploymentConfig(
            seed=29, master=MasterConfig(heartbeat_timeout=timeout)
        )
        deployment = build_deployment(config=config)
        deployment.settle(15.0)
        sim = deployment.sim
        master = deployment.active_master()
        victim = "host2"
        victim_disks = master.sysstat.disks_on_host(victim)
        crash_time = sim.now
        deployment.crash_host(victim)
        while master.sysstat.disks_on_host(victim):
            if sim.now - crash_time > 180.0:
                break
            sim.run(until=sim.now + 0.1)
        mapping = deployment.fabric.attachment_map()
        moved = all(mapping[d] not in (None, victim) for d in victim_disks)
        results[timeout] = {
            "recovery_seconds": sim.now - crash_time,
            "all_disks_moved": moved,
        }
    return results


def run() -> Dict:
    return {
        "switch_placement": switch_placement_ablation(),
        "fabric_width": fabric_width_ablation(),
        "allocation_policy": allocation_policy_ablation(),
        "spin_down_policy": spin_down_policy_ablation(),
        "heartbeat_timeout": heartbeat_timeout_ablation(),
    }


def _build_result() -> ExperimentResult:
    import json

    raw = run()
    return ExperimentResult(
        name="ablations",
        paper_ref="DESIGN.md §4",
        metrics={
            "leaf_switched_blast_radius": raw["switch_placement"]["leaf_switched"][
                "worst_hub_blast_radius"
            ],
            "upper_switched_blast_radius": raw["switch_placement"][
                "upper_switched"
            ]["worst_hub_blast_radius"],
        },
        raw=raw,
        text=json.dumps(raw, indent=2, default=str),
    )


EXPERIMENT = Experiment(
    name="ablations",
    paper_ref="DESIGN.md §4",
    description="Design-choice ablation studies",
    builder=_build_result,
)


def main() -> str:
    return EXPERIMENT.run().render()


if __name__ == "__main__":
    print(main())
