"""Experiment: Table III — power of one disk (SATA vs USB bridge).

Drives a simulated disk through the three states the paper measures
(spin down, idle, read/write) and samples its power draw under both
connection profiles.
"""

from __future__ import annotations

from typing import Dict, List

from repro.disk.device import IoRequest, SimulatedDisk
from repro.disk.specs import ConnectionType, TOSHIBA_POWER_SATA, TOSHIBA_POWER_USB
from repro.disk.states import DiskPowerState
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.common import format_table, relative_error
from repro.sim import Simulator
from repro.workload.specs import MB

__all__ = ["EXPERIMENT", "PAPER_TABLE3", "run"]

#: Paper rows (watts): spin down / idle / read-write.
PAPER_TABLE3 = {
    "Specs": (1.0, 5.2, 6.4),
    "SATA": (0.05, 4.71, 6.66),
    "USB bridge": (1.56, 5.76, 7.56),
}


def _measure(connection: ConnectionType) -> tuple:
    """Sample power in each state by actually driving the device."""
    sim = Simulator()
    disk = SimulatedDisk(sim, "d0", connection=connection)
    profile = disk.default_power_profile()
    idle_watts = disk.power_draw(profile)

    samples = {}

    def sample_active() -> None:
        samples["active"] = disk.power_draw(profile)

    disk.submit(IoRequest(offset=0, size=4 * MB, is_read=False))
    sim.call_in(0.01, sample_active)  # mid-transfer
    sim.run()
    assert disk.power_state is DiskPowerState.IDLE
    disk.spin_down()
    spun_down_watts = disk.power_draw(profile)
    return (spun_down_watts, idle_watts, samples["active"])


def run() -> Dict:
    measured = {
        "SATA": _measure(ConnectionType.SATA),
        "USB bridge": _measure(ConnectionType.USB),
    }
    rows: List[List] = []
    rows.append(["Specs", *PAPER_TABLE3["Specs"], None, None, None])
    for name in ("SATA", "USB bridge"):
        spun, idle, active = measured[name]
        p_spun, p_idle, p_active = PAPER_TABLE3[name]
        rows.append([name, p_spun, p_idle, p_active, round(spun, 2), round(idle, 2), round(active, 2)])
    return {
        "headers": ["Mode", "SpinDn(p)", "Idle(p)", "R/W(p)", "SpinDn", "Idle", "R/W"],
        "rows": rows,
        "measured": measured,
    }


def _report(result: Dict) -> str:
    lines = ["Table III: power of one disk (watts), paper (p) vs simulated", ""]
    lines.append(format_table(result["headers"], result["rows"]))
    return "\n".join(lines)


def _build_result() -> ExperimentResult:
    raw = run()
    errors: Dict[str, float] = {}
    metrics: Dict[str, object] = {}
    states = ("spin_down_w", "idle_w", "active_w")
    for mode in ("SATA", "USB bridge"):
        key = mode.lower().replace(" ", "_")
        for state, value, paper in zip(states, raw["measured"][mode], PAPER_TABLE3[mode]):
            metrics[f"{key}.{state}"] = value
            errors[f"{key}.{state}"] = relative_error(value, paper)
    return ExperimentResult(
        name="table3",
        paper_ref="Table III",
        metrics=metrics,
        paper_expected={m: PAPER_TABLE3[m] for m in ("SATA", "USB bridge")},
        relative_errors=errors,
        raw=raw,
        text=_report(raw),
    )


EXPERIMENT = Experiment(
    name="table3",
    paper_ref="Table III",
    description="Power of one disk: SATA vs USB bridge",
    builder=_build_result,
)


def main() -> str:
    return EXPERIMENT.run().render()


if __name__ == "__main__":
    print(main())
