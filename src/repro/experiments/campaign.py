"""Parallel experiment campaigns with content-addressed result caching.

A *campaign* fans one registered :class:`~repro.experiments.base
.Experiment` over a grid of (seed × sweep-point) cells, runs the cells
across worker processes, and caches every cell's
:class:`~repro.experiments.base.ExperimentResult` under a
content-addressed key, so re-running a campaign is free for cells that
already ran and an interrupted campaign resumes from wherever it
stopped — the StorRep-style sweep pattern the ROADMAP calls for.

Cache layout (``cache_dir`` defaults to ``.campaigns/``)::

    <cache_dir>/<experiment>/<digest>.json

where ``digest`` is a SHA-256 over the canonical JSON of
``(experiment, result-schema version, sorted params)`` — the params
include the seed, so every cell of every campaign has its own entry and
two campaigns sharing cells share cache hits.  Each file holds the cell
metadata plus the full result document and is written atomically
(temp file + ``os.replace``), so a run killed mid-campaign never leaves
a torn entry: on the next run finished cells load from cache and only
the missing ones recompute.

Because experiments are deterministic functions of their parameters
(the repo's check-determinism gate enforces it), a cached result is
indistinguishable from a fresh run — which is what makes
content-addressed caching sound in the first place.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.base import RESULT_SCHEMA_VERSION

__all__ = [
    "CAMPAIGN_SCHEMA_VERSION",
    "CampaignCell",
    "CampaignError",
    "CampaignReport",
    "CampaignSpec",
    "DEFAULT_CACHE_DIR",
    "run_campaign",
]

CAMPAIGN_SCHEMA_VERSION = 1

DEFAULT_CACHE_DIR = Path(".campaigns")


class CampaignError(Exception):
    """Raised for malformed campaign specifications."""


def _canonical_params(params: Mapping[str, Any]) -> str:
    return json.dumps(params, sort_keys=True, separators=(",", ":"), default=str)


@dataclass(frozen=True)
class CampaignCell:
    """One (experiment, full parameter assignment) grid point."""

    experiment: str
    params: Tuple[Tuple[str, Any], ...]

    @property
    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def digest(self) -> str:
        """Content address: experiment + result schema + canonical params.

        The result-schema version is part of the key so a cache
        populated before an :class:`ExperimentResult` layout change is
        transparently invalidated rather than served in the old shape.
        """
        payload = json.dumps(
            {
                "experiment": self.experiment,
                "result_schema_version": RESULT_SCHEMA_VERSION,
                "params": dict(self.params),
            },
            sort_keys=True,
            separators=(",", ":"),
            default=str,
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def label(self) -> str:
        """Compact human-readable cell name for reports."""
        parts = [f"{k}={v}" for k, v in self.params]
        return f"{self.experiment}({', '.join(parts)})"


@dataclass(frozen=True)
class CampaignSpec:
    """A seed list crossed with per-parameter sweep values.

    ``seeds`` requires the experiment to declare a ``seed`` parameter;
    every ``sweep`` name must be a declared parameter of the experiment.
    Cells enumerate deterministically: seeds in the given order, sweep
    values in the given order, sweep parameters sorted by name (the
    rightmost sorted parameter varies fastest).
    """

    experiment: str
    seeds: Tuple[int, ...] = ()
    sweep: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()

    @staticmethod
    def build(
        experiment: str,
        seeds: Sequence[int] = (),
        sweep: Optional[Mapping[str, Sequence[Any]]] = None,
    ) -> "CampaignSpec":
        """Validate against the registry and normalize to tuples."""
        from repro.experiments import EXPERIMENTS

        if experiment not in EXPERIMENTS:
            raise CampaignError(
                f"unknown experiment {experiment!r}; available: "
                f"{', '.join(EXPERIMENTS.names())}"
            )
        declared = EXPERIMENTS.get(experiment).params
        if seeds and "seed" not in declared:
            raise CampaignError(
                f"experiment {experiment!r} declares no 'seed' parameter; "
                "drop --seeds or sweep a declared parameter instead"
            )
        sweep = dict(sweep or {})
        unknown = sorted(set(sweep) - set(declared))
        if unknown:
            raise CampaignError(
                f"experiment {experiment!r} has no parameter(s) {unknown}; "
                f"declared: {sorted(declared)}"
            )
        if "seed" in sweep and seeds:
            raise CampaignError("give seeds via --seeds or --set seed=…, not both")
        for name, values in sweep.items():
            if not values:
                raise CampaignError(f"sweep parameter {name!r} has no values")
        return CampaignSpec(
            experiment=experiment,
            seeds=tuple(int(s) for s in seeds),
            sweep=tuple(
                sorted((name, tuple(values)) for name, values in sweep.items())
            ),
        )

    def cells(self) -> List[CampaignCell]:
        seed_axis: List[Tuple[Tuple[str, Any], ...]] = (
            [(("seed", seed),) for seed in self.seeds] if self.seeds else [()]
        )
        sweep_axes: List[List[Tuple[str, Any]]] = [
            [(name, value) for value in values] for name, values in self.sweep
        ]
        cells = []
        for seed_part in seed_axis:
            for combo in itertools.product(*sweep_axes):
                params = tuple(sorted(seed_part + tuple(combo)))
                cells.append(CampaignCell(self.experiment, params))
        return cells


@dataclass
class CellOutcome:
    """One cell's result provenance within a campaign run."""

    cell: CampaignCell
    digest: str
    source: str  # "computed" | "cached"
    result: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "params": self.cell.params_dict,
            "digest": self.digest,
            "source": self.source,
            "result": self.result,
        }


@dataclass
class CampaignReport:
    """Everything one campaign run produced, in deterministic cell order."""

    experiment: str
    cache_dir: str
    workers: int
    outcomes: List[CellOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def computed(self) -> int:
        return sum(1 for o in self.outcomes if o.source == "computed")

    @property
    def cached(self) -> int:
        return sum(1 for o in self.outcomes if o.source == "cached")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": CAMPAIGN_SCHEMA_VERSION,
            "experiment": self.experiment,
            "cache_dir": self.cache_dir,
            "workers": self.workers,
            "total": self.total,
            "computed": self.computed,
            "cached": self.cached,
            "wall_seconds": round(self.wall_seconds, 4),
            "cells": [o.to_dict() for o in self.outcomes],
        }

    def render(self) -> str:
        lines = [
            f"Campaign: {self.experiment} — {self.total} cell(s), "
            f"{self.computed} computed, {self.cached} cached "
            f"({self.wall_seconds:.2f}s wall, {self.workers} worker(s))",
            f"  cache: {self.cache_dir}",
        ]
        for outcome in self.outcomes:
            anchors = outcome.result.get("anchors") or {}
            verdict = "ok" if all(anchors.values()) else "ANCHOR MISS"
            if not anchors:
                verdict = "ok"
            lines.append(
                f"  [{outcome.source:8s}] {outcome.cell.label()} "
                f"{verdict} {outcome.digest[:12]}…"
            )
        return "\n".join(lines)


def _cache_path(cache_dir: Path, cell: CampaignCell) -> Path:
    return cache_dir / cell.experiment / f"{cell.digest()}.json"


def _load_cached(path: Path, cell: CampaignCell) -> Optional[Dict[str, Any]]:
    """The cached result document, or ``None`` when absent/torn/stale."""
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(document, dict):
        return None
    if document.get("campaign_schema_version") != CAMPAIGN_SCHEMA_VERSION:
        return None
    if document.get("params") != _canonical_params(cell.params_dict):
        return None  # digest collision or hand-edited file: recompute
    result = document.get("result")
    return result if isinstance(result, dict) else None


def _store_result(path: Path, cell: CampaignCell, result: Dict[str, Any]) -> None:
    """Atomic write: a killed campaign never leaves a torn cache entry."""
    path.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "campaign_schema_version": CAMPAIGN_SCHEMA_VERSION,
        "experiment": cell.experiment,
        "params": _canonical_params(cell.params_dict),
        "digest": cell.digest(),
        "result": result,
    }
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    tmp.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    os.replace(tmp, path)


def _run_cell(experiment: str, params: Tuple[Tuple[str, Any], ...]) -> Dict[str, Any]:
    """Worker entrypoint (module-level so process pools can pickle it)."""
    from repro.experiments import EXPERIMENTS

    result = EXPERIMENTS.get(experiment).run(**dict(params))
    return result.to_dict()


def run_campaign(
    spec: CampaignSpec,
    cache_dir: Path = DEFAULT_CACHE_DIR,
    workers: int = 0,
    refresh: bool = False,
    progress: Optional[Callable[[CellOutcome], None]] = None,
) -> CampaignReport:
    """Run every cell of ``spec``, serving cached cells without recompute.

    ``workers`` > 1 fans the missing cells over a
    :class:`~concurrent.futures.ProcessPoolExecutor`; 0 or 1 runs them
    inline (no pool, exercised directly by tests).  ``refresh`` ignores
    and overwrites existing cache entries.  ``progress`` is called once
    per finished cell, in completion order; each finished cell's cache
    entry is written before the callback runs, so an interruption (even
    one raised from the callback) leaves every completed cell resumable.

    Returns a :class:`CampaignReport` with outcomes in deterministic
    cell-enumeration order regardless of completion order.
    """
    cache_root = Path(cache_dir)
    cells = spec.cells()
    if not cells:
        raise CampaignError("campaign has no cells")
    started = time.perf_counter()
    outcomes: Dict[int, CellOutcome] = {}
    missing: List[Tuple[int, CampaignCell]] = []
    for index, cell in enumerate(cells):
        path = _cache_path(cache_root, cell)
        cached = None if refresh else _load_cached(path, cell)
        if cached is not None:
            outcome = CellOutcome(cell, cell.digest(), "cached", cached)
            outcomes[index] = outcome
            if progress is not None:
                progress(outcome)
        else:
            missing.append((index, cell))

    def finish(index: int, cell: CampaignCell, result: Dict[str, Any]) -> None:
        _store_result(_cache_path(cache_root, cell), cell, result)
        outcome = CellOutcome(cell, cell.digest(), "computed", result)
        outcomes[index] = outcome
        if progress is not None:
            progress(outcome)

    if workers > 1 and len(missing) > 1:
        with ProcessPoolExecutor(max_workers=min(workers, len(missing))) as pool:
            pending = {
                pool.submit(_run_cell, cell.experiment, cell.params): (index, cell)
                for index, cell in missing
            }
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    index, cell = pending.pop(future)
                    finish(index, cell, future.result())
    else:
        for index, cell in missing:
            finish(index, cell, _run_cell(cell.experiment, cell.params))

    report = CampaignReport(
        experiment=spec.experiment,
        cache_dir=str(cache_root),
        workers=max(1, workers),
        outcomes=[outcomes[i] for i in sorted(outcomes)],
        wall_seconds=time.perf_counter() - started,
    )
    return report
