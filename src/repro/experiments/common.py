"""Shared helpers for the paper-reproduction experiments."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.deployment import Deployment
from repro.fabric.switching import SwitchConflict, plan_switches
from repro.fabric.topology import Fabric

__all__ = [
    "conflict_free_batch",
    "format_table",
    "gather_disks_on_host",
    "relative_error",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Fixed-width text table (experiment reports)."""
    columns = [
        [str(h)] + [("-" if r[i] is None else f"{r[i]:.1f}" if isinstance(r[i], float) else str(r[i])) for r in rows]
        for i, h in enumerate(headers)
    ]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines = []
    header = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for r in range(len(rows)):
        lines.append("  ".join(columns[c][r + 1].rjust(widths[c]) for c in range(len(headers))))
    return "\n".join(lines)


def relative_error(measured: float, paper: float) -> float:
    return (measured - paper) / paper if paper else 0.0


def conflict_free_batch(
    fabric: Fabric, target_host: str, size: int
) -> List[Tuple[str, str]]:
    """Pick ``size`` disks that can switch to ``target_host`` in one
    conflict-free command (growing the batch greedily, dry-running
    Algorithm 1 on each extension)."""
    batch: List[Tuple[str, str]] = []
    chosen = set()
    for disk in fabric.disks:
        if len(batch) >= size:
            break
        if disk.node_id in chosen:
            continue
        if fabric.attached_host(disk.node_id) == target_host:
            continue
        candidate = batch + [(disk.node_id, target_host)]
        try:
            plan_switches(fabric, candidate)
        except SwitchConflict as conflict:
            # A shared switch pins sibling disks: moving the whole group
            # together is legal (they are all part of the command), so
            # retry with the victims included — if that still fits.
            victims = [
                v
                for v in conflict.victims
                if v not in chosen and fabric.attached_host(v) != target_host
            ]
            if not victims or len(batch) + 1 + len(victims) > size:
                continue
            candidate = candidate + [(v, target_host) for v in victims]
            try:
                plan_switches(fabric, candidate)
            except SwitchConflict:
                continue
        batch = candidate
        chosen.update(d for d, _ in candidate)
    if len(batch) != size:
        raise ValueError(
            f"only {len(batch)} disks can move to {target_host!r} conflict-free"
        )
    return batch[:size]


def gather_disks_on_host(deployment: Deployment, host: str, wanted: int) -> List[str]:
    """Physically move leaf groups until ``host`` serves ``wanted`` disks.

    Operates directly on the fabric (pre-experiment setup, not part of
    the measured path) and resyncs the USB views.
    """
    fabric = deployment.fabric
    mine = [d for d, h in fabric.attachment_map().items() if h == host]
    group = 0
    num_groups = len(fabric.disks) // 2
    while len(mine) < wanted and group < num_groups:
        siblings = [f"disk{2 * group}", f"disk{2 * group + 1}"]
        if fabric.attached_host(siblings[0]) != host:
            try:
                plan = plan_switches(fabric, [(d, host) for d in siblings])
                fabric.apply_settings(plan.turns)
            except SwitchConflict:
                pass
        group += 1
        mine = [d for d, h in fabric.attachment_map().items() if h == host]
    if len(mine) < wanted:
        raise ValueError(f"could not gather {wanted} disks on {host!r}")
    deployment.bus.sync()
    return mine[:wanted]
