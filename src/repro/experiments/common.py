"""Shared helpers for the paper-reproduction experiments."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.deployment import Deployment
from repro.fabric.switching import SwitchConflict, execute_plan, plan_switches
from repro.fabric.topology import Fabric

__all__ = [
    "conflict_free_batch",
    "format_table",
    "gather_disks_on_host",
    "relative_error",
]


def _format_cell(value, spec: Optional[str]) -> str:
    if value is None:
        return "-"
    if spec:
        return format(value, spec)
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    formats: Optional[Sequence[Optional[str]]] = None,
) -> str:
    """Fixed-width text table (experiment reports).

    ``formats`` optionally gives one :func:`format` spec per column
    (e.g. ``".4f"`` or ``"+.1%"``); ``None`` entries keep the default
    rendering (floats as ``.1f``).  Without it, small values such as
    relative errors collapse to ``0.0`` — the per-column hook exists
    precisely so result renderers can keep them legible.
    """
    specs: List[Optional[str]] = list(formats) if formats is not None else []
    specs += [None] * (len(headers) - len(specs))
    columns = [
        [str(h)] + [_format_cell(r[i], specs[i]) for r in rows]
        for i, h in enumerate(headers)
    ]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines = []
    header = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for r in range(len(rows)):
        lines.append("  ".join(columns[c][r + 1].rjust(widths[c]) for c in range(len(headers))))
    return "\n".join(lines)


def relative_error(measured: float, paper: float) -> float:
    return (measured - paper) / paper if paper else 0.0


def conflict_free_batch(
    fabric: Fabric, target_host: str, size: int
) -> List[Tuple[str, str]]:
    """Pick ``size`` disks that can switch to ``target_host`` in one
    conflict-free command (growing the batch greedily, dry-running
    Algorithm 1 on each extension)."""
    batch: List[Tuple[str, str]] = []
    chosen = set()
    for disk in fabric.disks:
        if len(batch) >= size:
            break
        if disk.node_id in chosen:
            continue
        if fabric.attached_host(disk.node_id) == target_host:
            continue
        candidate = batch + [(disk.node_id, target_host)]
        try:
            plan_switches(fabric, candidate)
        except SwitchConflict as conflict:
            # A shared switch pins sibling disks: moving the whole group
            # together is legal (they are all part of the command), so
            # retry with the victims included — if that still fits.
            victims = [
                v
                for v in conflict.victims
                if v not in chosen and fabric.attached_host(v) != target_host
            ]
            if not victims or len(batch) + 1 + len(victims) > size:
                continue
            candidate = candidate + [(v, target_host) for v in victims]
            try:
                plan_switches(fabric, candidate)
            except SwitchConflict:
                continue
        batch = candidate
        chosen.update(d for d, _ in candidate)
    if len(batch) != size:
        raise ValueError(
            f"only {len(batch)} disks can move to {target_host!r} conflict-free"
        )
    return batch[:size]


def gather_disks_on_host(deployment: Deployment, host: str, wanted: int) -> List[str]:
    """Physically move leaf groups until ``host`` serves ``wanted`` disks.

    Operates directly on the fabric (pre-experiment setup, not part of
    the measured path) and resyncs the USB views.
    """
    fabric = deployment.fabric
    mine = [d for d, h in fabric.attachment_map().items() if h == host]
    group = 0
    num_groups = len(fabric.disks) // 2
    while len(mine) < wanted and group < num_groups:
        siblings = [f"disk{2 * group}", f"disk{2 * group + 1}"]
        if fabric.attached_host(siblings[0]) != host:
            try:
                plan = plan_switches(fabric, [(d, host) for d in siblings])
                execute_plan(fabric, plan, metrics=deployment.metrics)
            except SwitchConflict:
                pass
        group += 1
        mine = [d for d, h in fabric.attachment_map().items() if h == host]
    if len(mine) < wanted:
        raise ValueError(f"could not gather {wanted} disks on {host!r}")
    deployment.bus.sync()
    return mine[:wanted]
