"""Paper-reproduction experiments: one module per table/figure/claim.

| Module          | Paper artifact                                  |
|-----------------|--------------------------------------------------|
| ``table1``      | Table I — CapEx of five storage solutions        |
| ``table2``      | Table II — single-disk throughput                |
| ``table3``      | Table III — one-disk power                       |
| ``table4``      | Table IV — hub power vs connected disks          |
| ``table5``      | Table V — system power comparison                |
| ``figure5``     | Figure 5 — multi-disk throughput scaling         |
| ``figure6``     | Figure 6 — switching-time decomposition          |
| ``duplex``      | §VII-A — 540 MB/s duplex, 2160 MB/s aggregate    |
| ``hdfs_switch`` | §VII-B — HDFS across a disk switch               |
| ``host_failover``| §I — 5.8 s single-host recovery                 |
| ``ablations``   | DESIGN.md §4 — design-choice studies             |
| ``gateway_slo`` | §IV-F — request tier: batching vs FIFO           |
| ``shardstore_small_objects`` | §IV-F — packed shards vs naive objects |
| ``tiering_staging`` | §IV-F — staged hot tier vs write-through    |

Every module declares an ``EXPERIMENT`` (see
:mod:`repro.experiments.base`), collected here into :data:`EXPERIMENTS`;
running one returns a typed, versioned
:class:`~repro.experiments.base.ExperimentResult`.  The legacy
``run() -> dict`` / ``main() -> str`` entrypoints remain as thin,
backward-compatible shims, and :data:`ALL_EXPERIMENTS` still maps names
to modules.
"""

from repro.experiments import (  # noqa: F401
    ablations,
    duplex,
    figure5,
    figure6,
    gateway_slo,
    hdfs_switch,
    host_failover,
    reliability,
    shardstore_small_objects,
    table1,
    table2,
    table3,
    table4,
    table5,
    tiering_staging,
)
from repro.experiments.base import (  # noqa: F401
    Experiment,
    ExperimentRegistry,
    ExperimentResult,
    RESULT_SCHEMA_VERSION,
)

ALL_EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "figure5": figure5,
    "figure6": figure6,
    "duplex": duplex,
    "hdfs_switch": hdfs_switch,
    "host_failover": host_failover,
    "ablations": ablations,
    "reliability": reliability,
    "gateway_slo": gateway_slo,
    "shardstore_small_objects": shardstore_small_objects,
    "tiering_staging": tiering_staging,
}

EXPERIMENTS = ExperimentRegistry()
for _module in ALL_EXPERIMENTS.values():
    EXPERIMENTS.register(_module.EXPERIMENT)
del _module

__all__ = [
    "ALL_EXPERIMENTS",
    "EXPERIMENTS",
    "Experiment",
    "ExperimentRegistry",
    "ExperimentResult",
    "RESULT_SCHEMA_VERSION",
]
