"""Experiment: Figure 5 — total throughput of multiple disks on one host.

Reproduces the scaling curves: disks attached to a single host through
the prototype fabric, one Iometer worker per disk, for the paper's
workload mix.  The figure's anchor observations (§VII-A) are checked:

* small transfers scale with disk count and saturate the USB tree
  around 8 disks (the host-controller command-rate budget);
* for large transfers two disks fill the ~300 MB/s root port;
* bandwidth is shared evenly among the disks.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.deployment import DeploymentConfig, build_deployment
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.common import format_table, gather_disks_on_host, relative_error
from repro.obs import MetricsRegistry
from repro.sim import EventDigest
from repro.workload.iometer import model_throughput
from repro.workload.specs import WorkloadSpec

__all__ = ["DISK_COUNTS", "EXPERIMENT", "WORKLOADS", "run"]

DISK_COUNTS = (1, 2, 4, 8, 12)
WORKLOADS = ("4KB-S-R", "4KB-S-W", "4KB-R-R", "4MB-S-R", "4MB-S-W", "4MB-R-R")

#: §VII-A: "two disks are enough to fill up the root hub's bandwidth,
#: which is around 300MB/s".
PAPER_ROOT_PORT_MB_S = 300.0


def run(
    detect_races: bool = False,
    event_digest: Optional[EventDigest] = None,
    metrics: Optional[MetricsRegistry] = None,
    seed: int = 7,
    settle_seconds: float = 0.0,
) -> Dict:
    """Run the experiment.

    ``detect_races`` enables the kernel's same-timestamp race detector
    on every deployment built (adds a ``"races"`` entry to the result);
    ``event_digest`` folds every simulator's execution order into the
    given digest for replay-determinism checks; ``metrics`` arms the
    obs layer on every deployment (one shared registry aggregating all
    five disk counts); ``seed`` feeds the deployments' RNG registry.

    ``settle_seconds > 0`` additionally runs each deployment's event
    loop for that much simulated time after the throughput series is
    computed, so simulator events (bus registration, heartbeats) are
    actually executed; the default of 0.0 keeps the classic behaviour —
    and the classic replay digest — for `run`/`check-determinism`.
    The benchmark recorder relies on this to observe a nonzero
    ``sim.events`` counter.
    """
    series: Dict[str, List[float]] = {name: [] for name in WORKLOADS}
    per_disk_even = True
    races: List = []
    for count in DISK_COUNTS:
        deployment = build_deployment(
            config=DeploymentConfig(detect_races=detect_races, seed=seed),
            metrics=metrics,
        )
        if event_digest is not None:
            event_digest.attach(deployment.sim)
        disks = gather_disks_on_host(deployment, "host0", count)
        for name in WORKLOADS:
            spec = WorkloadSpec.parse(name)
            result = model_throughput(deployment.fabric, disks, spec, metrics=metrics)
            series[name].append(result["total_bytes_per_second"] / 1e6)
            shares = list(result["per_disk"].values())
            if max(shares) - min(shares) > 1e-3 * max(shares):
                per_disk_even = False
        if settle_seconds > 0.0:
            deployment.settle(settle_seconds)
        if detect_races:
            races.extend(deployment.sim.races)
    rows: List[List] = []
    for name in WORKLOADS:
        rows.append([name] + [round(v, 1) for v in series[name]])
    anchors = {
        # §VII-A: "two disks are enough to fill up the root hub's
        # bandwidth, which is around 300MB/s".
        "large_transfers_saturate_at_2_disks": series["4MB-S-R"][1] >= 295.0,
        # "The sequential throughput of 8 disks can saturate the USB
        # tree": growth from 8 to 12 disks is marginal.
        "small_seq_saturates_by_8_disks": (
            series["4KB-S-R"][4] - series["4KB-S-R"][3]
        )
        < 0.25 * (series["4KB-S-R"][3] - series["4KB-S-R"][2]),
        # "throughput increases with the number of disks" (small I/O).
        "small_io_scales": all(
            series["4KB-S-R"][i] < series["4KB-S-R"][i + 1] for i in range(3)
        ),
        "shared_evenly": per_disk_even,
    }
    result_dict: Dict = {
        "headers": ["Workload"] + [f"{c} disks" for c in DISK_COUNTS],
        "rows": rows,
        "series_mb_per_s": series,
        "anchors": anchors,
    }
    if detect_races:
        result_dict["races"] = races
    return result_dict


def _report(result: Dict) -> str:
    lines = ["Figure 5: total MB/s of N disks on one host (model)", ""]
    lines.append(format_table(result["headers"], result["rows"]))
    lines.append("")
    for name, holds in result["anchors"].items():
        lines.append(f"  anchor {name}: {'OK' if holds else 'FAILED'}")
    return "\n".join(lines)


def _build_result(
    seed: int = 7, detect_races: bool = False, settle_seconds: float = 0.0
) -> ExperimentResult:
    registry = MetricsRegistry()
    raw = run(
        detect_races=detect_races,
        metrics=registry,
        seed=seed,
        settle_seconds=settle_seconds,
    )
    two_disk_4mb = raw["series_mb_per_s"]["4MB-S-R"][1]
    return ExperimentResult(
        name="figure5",
        paper_ref="Figure 5 / §VII-A",
        params={
            "seed": seed,
            "detect_races": detect_races,
            "settle_seconds": settle_seconds,
        },
        metrics={
            "series_mb_per_s": raw["series_mb_per_s"],
            "two_disk_4mb_seq_read_mb_s": two_disk_4mb,
        },
        paper_expected={"root_port_mb_s": PAPER_ROOT_PORT_MB_S},
        relative_errors={
            "two_disk_4mb_seq_read": relative_error(
                two_disk_4mb, PAPER_ROOT_PORT_MB_S
            )
        },
        anchors=dict(raw["anchors"]),
        obs=registry.dump(),
        raw=raw,
        text=_report(raw),
    )


EXPERIMENT = Experiment(
    name="figure5",
    paper_ref="Figure 5 / §VII-A",
    description="Multi-disk throughput scaling on one host",
    builder=_build_result,
    params={"seed": 7, "detect_races": False, "settle_seconds": 0.0},
)


def main() -> str:
    return EXPERIMENT.run().render()


if __name__ == "__main__":
    print(main())
