"""Experiment: single-host failure recovery (§I: "recover from an
arbitrary single host failure in 5.8 seconds").

A host is killed without warning.  Recovery time is measured from the
crash to the moment every disk the host was serving is attached to a
healthy host AND every affected storage space is exposed there again.
A mounted client confirms end-to-end service resumption.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.cluster.deployment import DeploymentConfig, build_deployment
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.common import relative_error
from repro.obs import MetricsRegistry
from repro.sim import Event
from repro.workload.specs import KB, MB

__all__ = ["EXPERIMENT", "run", "run_single"]

PAPER_RECOVERY_SECONDS = 5.8
REPETITIONS = 4


def run_single(
    victim: str, seed: int, metrics: Optional[MetricsRegistry] = None
) -> Dict[str, float]:
    deployment = build_deployment(
        config=DeploymentConfig(seed=seed), metrics=metrics
    )
    deployment.settle(15.0)
    sim = deployment.sim
    master = deployment.active_master()

    # Put one client space on each disk the victim currently serves so
    # "recovered" means re-exposed and remountable, not just re-attached.
    victim_disks = master.sysstat.disks_on_host(victim)
    client = deployment.new_client("failover-client", service="failover")
    spaces = []

    def setup() -> Generator[Event, None, None]:
        for disk in victim_disks:
            exclude = [d.node_id for d in deployment.fabric.disks if d.node_id != disk]
            info = yield from client.allocate(64 * MB, exclude_disks=exclude)
            space = yield from client.mount(info["space_id"])
            yield from space.write(0, 4 * KB)
            spaces.append(space)

    sim.run_until_event(sim.process(setup()))
    deployment.settle(2.0)

    crash_time = sim.now
    deployment.crash_host(victim)

    # Wait until the master reports every victim disk on a healthy host.
    def recovered() -> bool:
        live = master.sysstat.disks_on_host(victim)
        if live:
            return False
        mapping = deployment.fabric.attachment_map()
        return all(
            mapping[d] is not None and mapping[d] != victim for d in victim_disks
        )

    while not recovered():
        if sim.now - crash_time > 120.0:
            raise RuntimeError("failover did not complete within 120 s")
        sim.run(until=sim.now + 0.1)
    reattach_seconds = sim.now - crash_time

    # End-to-end: the first I/O on every affected space succeeds
    # (concurrently, as independent clients would).
    def touch(space) -> Generator[Event, None, None]:
        yield from space.read(0, 4 * KB)

    sim.run_until_event(sim.all_of([sim.process(touch(s)) for s in spaces]))
    service_seconds = sim.now - crash_time
    return {
        "victim": victim,
        "reattach_seconds": reattach_seconds,
        "service_resumed_seconds": service_seconds,
        "disks_moved": len(victim_disks),
    }


def run(
    repetitions: int = REPETITIONS, metrics: Optional[MetricsRegistry] = None
) -> Dict:
    trials: List[Dict[str, float]] = []
    hosts = ["host0", "host1", "host2", "host3"]
    for index in range(repetitions):
        victim = hosts[index % len(hosts)]
        trials.append(run_single(victim, seed=37 + index, metrics=metrics))
    mean_reattach = sum(t["reattach_seconds"] for t in trials) / len(trials)
    mean_service = sum(t["service_resumed_seconds"] for t in trials) / len(trials)
    return {
        "trials": trials,
        "mean_reattach_seconds": mean_reattach,
        "mean_service_resumed_seconds": mean_service,
        "paper_recovery_seconds": PAPER_RECOVERY_SECONDS,
        "anchors": {
            # Same order of magnitude as the prototype's 5.8 s; the
            # disruption must look like a hiccup, not a rebuild.
            "recovery_within_2x_of_paper": mean_reattach
            <= 2.0 * PAPER_RECOVERY_SECONDS,
            "recovery_is_seconds_not_minutes": mean_service < 60.0,
        },
    }


def _report(result: Dict) -> str:
    lines = ["Single-host failover (paper: 5.8 s)", ""]
    for trial in result["trials"]:
        lines.append(
            f"  {trial['victim']}: disks reattached in "
            f"{trial['reattach_seconds']:.1f}s, service resumed in "
            f"{trial['service_resumed_seconds']:.1f}s "
            f"({trial['disks_moved']} disks)"
        )
    lines.append("")
    lines.append(
        f"  mean: reattach {result['mean_reattach_seconds']:.1f}s, "
        f"service {result['mean_service_resumed_seconds']:.1f}s "
        f"(paper {result['paper_recovery_seconds']}s)"
    )
    for name, holds in result["anchors"].items():
        lines.append(f"  anchor {name}: {'OK' if holds else 'FAILED'}")
    return "\n".join(lines)


def _build_result(repetitions: int = REPETITIONS) -> ExperimentResult:
    registry = MetricsRegistry()
    raw = run(repetitions=repetitions, metrics=registry)
    return ExperimentResult(
        name="host_failover",
        paper_ref="§I / §IV-E",
        params={"repetitions": repetitions},
        metrics={
            "mean_reattach_seconds": raw["mean_reattach_seconds"],
            "mean_service_resumed_seconds": raw["mean_service_resumed_seconds"],
        },
        paper_expected={"recovery_seconds": PAPER_RECOVERY_SECONDS},
        relative_errors={
            "mean_reattach": relative_error(
                raw["mean_reattach_seconds"], PAPER_RECOVERY_SECONDS
            )
        },
        anchors=dict(raw["anchors"]),
        obs=registry.dump(),
        raw=raw,
        text=_report(raw),
    )


EXPERIMENT = Experiment(
    name="host_failover",
    paper_ref="§I / §IV-E",
    description="Single-host crash recovery (paper: 5.8 s)",
    builder=_build_result,
    params={"repetitions": REPETITIONS},
)


def main() -> str:
    return EXPERIMENT.run().render()


if __name__ == "__main__":
    print(main())
