"""Experiment: reliability extensions (§IV-E future work, §VIII).

Three studies the paper argues qualitatively, quantified:

* availability — single-attached JBOD vs UStore failover, 100 simulated
  host-years per trial;
* reconstruction — rebuild a dead disk's worth of data over the network
  vs via a fabric switch (the paper's stated future work), both as
  closed-form estimates and as a live drill on a deployment;
* scrubbing — latent-sector-error detection latency vs scrub interval.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.deployment import DeploymentConfig, build_deployment
from repro.disk.device import SimulatedDisk
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.common import format_table
from repro.obs import MetricsRegistry
from repro.reliability import (
    AvailabilityStudy,
    LatentErrorModel,
    RebuildDrill,
    Scrubber,
    StudyParams,
    fabric_assisted_rebuild,
    network_rebuild,
)
from repro.sim import EventDigest, RngRegistry, Simulator
from repro.units import GB as GB_DECIMAL
from repro.units import TB
from repro.workload.specs import MB

__all__ = ["EXPERIMENT", "run"]

GB = 1024 * MB


def _availability() -> Dict:
    study = AvailabilityStudy(StudyParams(horizon_years=100.0, trials=20), seed=17)
    results = study.run()
    return {
        name: {
            "downtime_h_per_disk_year": round(r.disk_downtime_hours_per_disk_year, 4),
            "availability": r.availability,
            "nines": round(r.nines, 2),
        }
        for name, r in results.items()
    }


def _reconstruction(
    detect_races: bool = False,
    event_digest: Optional[EventDigest] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Dict:
    rows = []
    for size_tb in (0.5, 1.0, 3.0):
        size = int(size_tb * TB)
        network = network_rebuild(size)
        assisted = fabric_assisted_rebuild(size)
        rows.append(
            [
                f"{size_tb:.1f} TB",
                round(network.seconds / 3600.0, 2),
                round(assisted.seconds / 3600.0, 2),
                round(network.seconds / assisted.seconds, 2),
                round(network.network_bytes / GB_DECIMAL, 1),
            ]
        )
    # Live drill at a smaller size (event-driven path).
    deployment = build_deployment(
        config=DeploymentConfig(detect_races=detect_races), metrics=metrics
    )
    if event_digest is not None:
        event_digest.attach(deployment.sim)
    deployment.settle(15.0)
    drill = RebuildDrill(deployment)

    def run_drill(assisted):
        return (
            yield from drill.run("disk4", "disk0", 2 * GB, fabric_assisted=assisted)
        )

    network_drill = deployment.sim.run_until_event(
        deployment.sim.process(run_drill(False))
    )
    assisted_drill = deployment.sim.run_until_event(
        deployment.sim.process(run_drill(True))
    )
    return {
        "headers": ["Rebuild", "net h", "fabric h", "speedup", "net GB moved"],
        "rows": rows,
        "drill": {"network": network_drill, "fabric": assisted_drill},
        "races": list(deployment.sim.races) if detect_races else [],
    }


def _scrubbing(
    detect_races: bool = False,
    event_digest: Optional[EventDigest] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Dict:
    latencies = {}
    races: List = []
    for interval_hours in (6.0, 24.0, 7 * 24.0):
        sim = Simulator(detect_races=detect_races, metrics=metrics)
        if event_digest is not None:
            event_digest.attach(sim)
        disk = SimulatedDisk(sim, "d0")
        model = LatentErrorModel(
            sim=sim, disk=disk, rng=RngRegistry(21), annual_lse_rate=0.0001
        )
        injected_at = 3600.0
        sim.call_in(injected_at, lambda m=model: m.errors.add(0))
        Scrubber(
            sim, model, scrub_interval=interval_hours * 3600.0, scan_bytes=64 * MB
        )
        sim.run(until=30 * 24 * 3600.0)
        if model.detected:
            latencies[f"{interval_hours:.0f}h"] = round(
                (model.detected[0][0] - injected_at) / 3600.0, 2
            )
        else:
            latencies[f"{interval_hours:.0f}h"] = None
        if detect_races:
            races.extend(sim.races)
    return {"detection_latency_hours": latencies, "races": races}


def run(
    detect_races: bool = False,
    event_digest: Optional[EventDigest] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Dict:
    """Run all three studies.

    ``detect_races`` turns on the kernel's same-timestamp race detector
    for the event-driven paths (rebuild drill, scrubbing) and adds a
    ``"races"`` entry to the result; ``event_digest`` folds every
    simulator's execution order into the given digest; ``metrics`` arms
    the obs layer on the event-driven simulators.
    """
    availability = _availability()
    reconstruction = _reconstruction(detect_races, event_digest, metrics)
    scrubbing = _scrubbing(detect_races, event_digest, metrics)
    drill = reconstruction["drill"]
    result: Dict = {
        "availability": availability,
        "reconstruction": reconstruction,
        "scrubbing": scrubbing,
        "anchors": {
            "ustore_gains_nines": availability["ustore"]["nines"]
            > availability["single_attached"]["nines"] + 1.0,
            "fabric_rebuild_faster": drill["fabric"]["seconds"]
            < drill["network"]["seconds"],
            "fabric_rebuild_offloads_network": drill["fabric"]["network_bytes"] == 0,
            "shorter_scrub_detects_sooner": (
                scrubbing["detection_latency_hours"]["6h"]
                < scrubbing["detection_latency_hours"]["168h"]
            ),
        },
    }
    if detect_races:
        result["races"] = reconstruction["races"] + scrubbing["races"]
    return result


def _report(result: Dict) -> str:
    lines = ["Reliability extensions (availability / rebuild / scrubbing)", ""]
    lines.append("Availability (host MTTF 3.4 months, MTTR 2h, 16 disks):")
    for name, stats in result["availability"].items():
        lines.append(
            f"  {name:<16} {stats['downtime_h_per_disk_year']:>9.4f} "
            f"downtime h/disk-year   {stats['nines']:.2f} nines"
        )
    lines.append("")
    lines.append("Reconstruction (network vs fabric-assisted):")
    lines.append(
        format_table(result["reconstruction"]["headers"], result["reconstruction"]["rows"])
    )
    drill = result["reconstruction"]["drill"]
    lines.append(
        f"  live 2 GB drill: network {drill['network']['seconds']:.1f}s "
        f"({drill['network']['network_bytes'] / 1e9:.1f} GB over GbE) vs "
        f"fabric {drill['fabric']['seconds']:.1f}s "
        f"(incl. {drill['fabric']['switch_seconds']:.1f}s switch, 0 network bytes)"
    )
    lines.append("")
    lines.append(
        f"Scrub detection latency: {result['scrubbing']['detection_latency_hours']}"
    )
    lines.append("")
    for name, holds in result["anchors"].items():
        lines.append(f"  anchor {name}: {'OK' if holds else 'FAILED'}")
    return "\n".join(lines)


def _build_result() -> ExperimentResult:
    registry = MetricsRegistry()
    raw = run(metrics=registry)
    drill = raw["reconstruction"]["drill"]
    return ExperimentResult(
        name="reliability",
        paper_ref="§IV-E / §VIII (future work, quantified)",
        metrics={
            "ustore_nines": raw["availability"]["ustore"]["nines"],
            "single_attached_nines": raw["availability"]["single_attached"]["nines"],
            "drill_network_seconds": drill["network"]["seconds"],
            "drill_fabric_seconds": drill["fabric"]["seconds"],
            "scrub_detection_latency_hours": raw["scrubbing"][
                "detection_latency_hours"
            ],
        },
        paper_expected={
            "failover_gains_availability": True,
            "fabric_rebuild_avoids_network": True,
        },
        anchors=dict(raw["anchors"]),
        obs=registry.dump(),
        raw=raw,
        text=_report(raw),
    )


EXPERIMENT = Experiment(
    name="reliability",
    paper_ref="§IV-E / §VIII",
    description="Availability, rebuild and scrubbing studies",
    builder=_build_result,
)


def main() -> str:
    return EXPERIMENT.run().render()


if __name__ == "__main__":
    print(main())
