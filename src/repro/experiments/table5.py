"""Experiment: Table V — system power of three solutions, two states."""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.common import format_table, relative_error
from repro.fabric.builders import prototype_fabric
from repro.power.systems import dd860_power, pergamum_power, ustore_power

__all__ = ["EXPERIMENT", "PAPER_TABLE5", "run"]

#: Paper values (watts, 16 disks amortized; 15 for DD860/ES30).
PAPER_TABLE5 = {
    "DD860/ES30": (222.5, 83.5),
    "Pergamum": (193.5, 28.9),
    "UStore": (166.8, 22.1),
}


def run() -> Dict:
    fabric = prototype_fabric()
    measured = {
        "DD860/ES30": (dd860_power(True), dd860_power(False)),
        "Pergamum": (
            pergamum_power(True).wall_total,
            pergamum_power(False).wall_total,
        ),
        "UStore": (
            ustore_power(fabric, True).wall_total,
            ustore_power(fabric, False).wall_total,
        ),
    }
    rows: List[List] = []
    worst = 0.0
    for system, (paper_on, paper_off) in PAPER_TABLE5.items():
        on, off = measured[system]
        for state, value, paper in (("spinning", on, paper_on), ("powered off", off, paper_off)):
            error = relative_error(value, paper)
            worst = max(worst, abs(error))
            rows.append([system, state, round(value, 1), paper, f"{error:+.1%}"])
    ordering_holds = all(
        measured["UStore"][i] < measured["Pergamum"][i] < measured["DD860/ES30"][i]
        for i in (0, 1)
    )
    return {
        "headers": ["System", "State", "Model W", "Paper W", "Err"],
        "rows": rows,
        "worst_error": worst,
        "ordering_holds": ordering_holds,
    }


def _report(result: Dict) -> str:
    lines = ["Table V: amortized power of a 16-disk unit", ""]
    lines.append(format_table(result["headers"], result["rows"]))
    lines.append("")
    lines.append(f"UStore < Pergamum < DD860 in both states: {result['ordering_holds']}")
    return "\n".join(lines)


def _build_result() -> ExperimentResult:
    raw = run()
    errors: Dict[str, float] = {}
    metrics: Dict[str, object] = {"worst_cell_error": raw["worst_error"]}
    for row in raw["rows"]:
        system, state, value, paper = row[0], row[1], row[2], row[3]
        key = f"{system}.{state}".replace(" ", "_").replace("/", "_")
        metrics[key] = value
        errors[key] = relative_error(value, paper)
    return ExperimentResult(
        name="table5",
        paper_ref="Table V",
        metrics=metrics,
        paper_expected={s: v for s, v in PAPER_TABLE5.items()},
        relative_errors=errors,
        anchors={"ordering_holds": raw["ordering_holds"]},
        raw=raw,
        text=_report(raw),
    )


EXPERIMENT = Experiment(
    name="table5",
    paper_ref="Table V",
    description="System power of three solutions, spinning vs powered off",
    builder=_build_result,
)


def main() -> str:
    return EXPERIMENT.run().render()


if __name__ == "__main__":
    print(main())
