"""Experiment: §VII-A duplex throughput — 540 MB/s per port, 2160 MB/s total.

USB 3.0 is full duplex: with half the disks reading and half writing,
one root port carries ~540 MB/s, and the prototype's four root paths
sustain ~2160 MB/s in aggregate.
"""

from __future__ import annotations

from typing import Dict

from repro.cluster.deployment import build_deployment
from repro.workload.iometer import model_throughput
from repro.workload.specs import WorkloadSpec

__all__ = ["run"]

PAPER_PER_PORT = 540.0
PAPER_AGGREGATE = 2160.0


def run() -> Dict:
    deployment = build_deployment()
    fabric = deployment.fabric
    spec = WorkloadSpec.parse("4MB-S-R")

    host0_disks = [d for d, h in fabric.attachment_map().items() if h == "host0"]
    per_port = model_throughput(fabric, host0_disks, spec, duplex_split=True)

    all_disks = sorted(fabric.attachment_map())
    aggregate = model_throughput(fabric, all_disks, spec, duplex_split=True)
    return {
        "per_port_mb_s": per_port["total_bytes_per_second"] / 1e6,
        "aggregate_mb_s": aggregate["total_bytes_per_second"] / 1e6,
        "paper_per_port": PAPER_PER_PORT,
        "paper_aggregate": PAPER_AGGREGATE,
    }


def main() -> str:
    result = run()
    return (
        "Duplex throughput (half reads / half writes, 4MB sequential)\n\n"
        f"  one root port: {result['per_port_mb_s']:.0f} MB/s "
        f"(paper: {result['paper_per_port']:.0f})\n"
        f"  four ports:    {result['aggregate_mb_s']:.0f} MB/s "
        f"(paper: {result['paper_aggregate']:.0f})"
    )


if __name__ == "__main__":
    print(main())
