"""Experiment: §VII-A duplex throughput — 540 MB/s per port, 2160 MB/s total.

USB 3.0 is full duplex: with half the disks reading and half writing,
one root port carries ~540 MB/s, and the prototype's four root paths
sustain ~2160 MB/s in aggregate.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cluster.deployment import build_deployment
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.common import relative_error
from repro.obs import MetricsRegistry
from repro.workload.iometer import model_throughput
from repro.workload.specs import WorkloadSpec

__all__ = ["EXPERIMENT", "run"]

PAPER_PER_PORT = 540.0
PAPER_AGGREGATE = 2160.0


def run(metrics: Optional[MetricsRegistry] = None) -> Dict:
    deployment = build_deployment(metrics=metrics)
    fabric = deployment.fabric
    spec = WorkloadSpec.parse("4MB-S-R")

    host0_disks = [d for d, h in fabric.attachment_map().items() if h == "host0"]
    per_port = model_throughput(fabric, host0_disks, spec, duplex_split=True, metrics=metrics)

    all_disks = sorted(fabric.attachment_map())
    aggregate = model_throughput(fabric, all_disks, spec, duplex_split=True, metrics=metrics)
    return {
        "per_port_mb_s": per_port["total_bytes_per_second"] / 1e6,
        "aggregate_mb_s": aggregate["total_bytes_per_second"] / 1e6,
        "paper_per_port": PAPER_PER_PORT,
        "paper_aggregate": PAPER_AGGREGATE,
    }


def _report(result: Dict) -> str:
    return (
        "Duplex throughput (half reads / half writes, 4MB sequential)\n\n"
        f"  one root port: {result['per_port_mb_s']:.0f} MB/s "
        f"(paper: {result['paper_per_port']:.0f})\n"
        f"  four ports:    {result['aggregate_mb_s']:.0f} MB/s "
        f"(paper: {result['paper_aggregate']:.0f})"
    )


def _build_result() -> ExperimentResult:
    registry = MetricsRegistry()
    raw = run(metrics=registry)
    return ExperimentResult(
        name="duplex",
        paper_ref="§VII-A (duplex)",
        metrics={
            "per_port_mb_s": raw["per_port_mb_s"],
            "aggregate_mb_s": raw["aggregate_mb_s"],
        },
        paper_expected={
            "per_port_mb_s": PAPER_PER_PORT,
            "aggregate_mb_s": PAPER_AGGREGATE,
        },
        relative_errors={
            "per_port": relative_error(raw["per_port_mb_s"], PAPER_PER_PORT),
            "aggregate": relative_error(raw["aggregate_mb_s"], PAPER_AGGREGATE),
        },
        obs=registry.dump(),
        raw=raw,
        text=_report(raw),
    )


EXPERIMENT = Experiment(
    name="duplex",
    paper_ref="§VII-A (duplex)",
    description="Full-duplex throughput: 540 MB/s per port, 2160 MB/s total",
    builder=_build_result,
)


def main() -> str:
    return EXPERIMENT.run().render()


if __name__ == "__main__":
    print(main())
