"""Experiment: Table II — single-disk throughput, three connection types.

Runs the disk service-time model over the paper's 12-cell workload grid
for SATA, plain USB-bridge and hub-and-switch connections, reporting
each cell next to the prototype's measurement.
"""

from __future__ import annotations

from typing import Dict, List

from repro.disk.model import DiskModel
from repro.disk.specs import ConnectionType
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.common import format_table, relative_error
from repro.workload.specs import KB, TABLE2_WORKLOADS

__all__ = ["EXPERIMENT", "PAPER_TABLE2", "run"]

#: Paper values in TABLE2_WORKLOADS order: 4KB seq (IO/s) R/50/W, 4KB
#: rand (IO/s), 4MB seq (MB/s), 4MB rand (MB/s).
PAPER_TABLE2 = {
    "SATA": [13378, 8066, 11211, 191.9, 105.4, 86.9, 184.8, 105.7, 180.2, 129.1, 78.7, 57.5],
    "USB": [5380, 4294, 6166, 189.0, 105.2, 85.2, 185.8, 119.7, 184.0, 147.9, 95.5, 79.3],
    "H&S": [5381, 4595, 6181, 189.2, 106.0, 87.9, 185.8, 118.6, 184.9, 147.7, 97.7, 79.9],
}

_CONNECTIONS = {
    "SATA": ConnectionType.SATA,
    "USB": ConnectionType.USB,
    "H&S": ConnectionType.HUB_AND_SWITCH,
}


def run() -> Dict:
    rows: List[List] = []
    worst = 0.0
    for name, connection in _CONNECTIONS.items():
        model = DiskModel(connection=connection)
        for spec, paper in zip(TABLE2_WORKLOADS, PAPER_TABLE2[name]):
            estimate = model.throughput(spec)
            if spec.transfer_size == 4 * KB:
                value, unit = estimate.iops, "IO/s"
            else:
                value, unit = estimate.mb_per_second, "MB/s"
            error = relative_error(value, paper)
            worst = max(worst, abs(error))
            rows.append([name, spec.name, unit, round(value, 1), paper, f"{error:+.1%}"])
    return {
        "headers": ["Conn", "Workload", "Unit", "Model", "Paper", "Err"],
        "rows": rows,
        "worst_error": worst,
    }


def _report(result: Dict) -> str:
    lines = ["Table II: single-disk throughput, model vs prototype", ""]
    lines.append(format_table(result["headers"], result["rows"]))
    lines.append("")
    lines.append(f"Worst cell error: {result['worst_error']:.1%}")
    return "\n".join(lines)


def _build_result() -> ExperimentResult:
    raw = run()
    return ExperimentResult(
        name="table2",
        paper_ref="Table II",
        metrics={"worst_cell_error": raw["worst_error"]},
        paper_expected={"cells": PAPER_TABLE2},
        relative_errors={"worst_cell": raw["worst_error"]},
        raw=raw,
        text=_report(raw),
    )


EXPERIMENT = Experiment(
    name="table2",
    paper_ref="Table II",
    description="Single-disk throughput across three connection types",
    builder=_build_result,
)


def main() -> str:
    return EXPERIMENT.run().render()


if __name__ == "__main__":
    print(main())
