"""Static and dynamic determinism analysis for the simulation stack.

Two layers keep "same seeds => same replay" an enforced property rather
than a hope:

* :mod:`repro.analysis.lint` — an AST linter with three rule families:
  determinism hazards (``DET001``–``DET005``: global ``random``,
  wall-clock reads, set-order scheduling, mutable defaults),
  dimensional consistency over the :mod:`repro.units` vocabulary
  (``UNIT001``–``UNIT006``), and sim-process generator protocol
  (``PROC001``–``PROC004``);
* :mod:`repro.analysis.races` — a runtime same-timestamp race detector
  the kernel drives when constructed with ``Simulator(detect_races=True)``.

Run the static pass with ``python -m repro lint`` or
``scripts/run_static_analysis.py``; the dynamic pass with
``python -m repro check-determinism``.
"""

from repro.analysis.findings import Finding, Severity, Suppression
from repro.analysis.lint import (
    DEFAULT_RULES,
    LintConfig,
    LintReport,
    Linter,
    all_rule_ids,
    lint_paths,
)
from repro.analysis.proc import PROC_RULES
from repro.analysis.races import Race, RaceDetector
from repro.analysis.rules import DETERMINISM_RULES, ModuleContext, Rule
from repro.analysis.units import UNIT_RULES

__all__ = [
    "DEFAULT_RULES",
    "DETERMINISM_RULES",
    "Finding",
    "LintConfig",
    "LintReport",
    "Linter",
    "ModuleContext",
    "PROC_RULES",
    "Race",
    "RaceDetector",
    "Rule",
    "Severity",
    "Suppression",
    "UNIT_RULES",
    "all_rule_ids",
    "lint_paths",
]
