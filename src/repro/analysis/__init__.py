"""Static and dynamic determinism analysis for the simulation stack.

Two layers keep "same seeds => same replay" an enforced property rather
than a hope:

* :mod:`repro.analysis.lint` — an AST linter whose rules flag
  determinism hazards (global ``random``, wall-clock reads, set-order
  scheduling, mutable defaults) before they reach a simulation;
* :mod:`repro.analysis.races` — a runtime same-timestamp race detector
  the kernel drives when constructed with ``Simulator(detect_races=True)``.

Run the static pass with ``python -m repro lint`` or
``scripts/run_static_analysis.py``; the dynamic pass with
``python -m repro check-determinism``.
"""

from repro.analysis.findings import Finding, Severity, Suppression
from repro.analysis.lint import LintConfig, LintReport, Linter, lint_paths
from repro.analysis.races import Race, RaceDetector
from repro.analysis.rules import DEFAULT_RULES, ModuleContext, Rule, all_rule_ids

__all__ = [
    "DEFAULT_RULES",
    "Finding",
    "LintConfig",
    "LintReport",
    "Linter",
    "ModuleContext",
    "Race",
    "RaceDetector",
    "Rule",
    "Severity",
    "Suppression",
    "all_rule_ids",
    "lint_paths",
]
