"""Pluggable AST rules for the determinism linter.

Each rule walks one parsed module and yields :class:`Finding` records.
The rule set encodes the determinism contract of the simulation stack
(see DESIGN.md):

* ``DET001`` — stochastic code must draw from
  :class:`repro.sim.rng.RngRegistry` streams, never the global
  ``random`` module (only ``sim/rng.py`` may touch it);
* ``DET002`` — simulation code must use ``Simulator.now``, never the
  wall clock (``time.time``/``time.monotonic``, argless
  ``datetime.now``/``today``); CLI and monitoring code is exempt;
* ``DET003`` — never iterate a ``set`` when the iteration order feeds
  event scheduling: set order is hash-seed dependent.  Wrap in
  ``sorted(...)`` first;
* ``DET004`` — no mutable default arguments or shared mutable class
  attributes: hidden cross-instance state breaks paired replays;
* ``DET005`` — never bind the name ``random``: shadowing the module
  hides direct-call hazards from review and from DET001.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, Sequence, Set, Tuple

from repro.analysis.findings import Finding, Severity

__all__ = [
    "DETERMINISM_RULES",
    "DirectRandomRule",
    "ModuleContext",
    "MutableDefaultRule",
    "RandomShadowRule",
    "Rule",
    "SetOrderRule",
    "WallClockRule",
]


@dataclass
class ModuleContext:
    """One parsed module plus the policy decisions that apply to it."""

    path: str  # display path (as passed to the linter)
    tree: ast.Module
    lines: Sequence[str]
    is_rng_module: bool = False  # the one module allowed to import random
    wallclock_exempt: bool = False  # CLI / monitor code may read the clock


class Rule:
    """Base class: subclasses define ``rule_id`` and ``check``."""

    rule_id: str = ""
    description: str = ""
    severity: Severity = Severity.ERROR

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: ModuleContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            file=ctx.path,
            line=getattr(node, "lineno", 0),
            rule_id=self.rule_id,
            message=message,
            severity=self.severity,
        )


def _random_module_aliases(tree: ast.Module) -> Set[str]:
    """Names under which the ``random`` module is imported."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    aliases.add(alias.asname or "random")
    return aliases


def _from_random_imports(tree: ast.Module) -> Dict[str, str]:
    """Local name -> original name for ``from random import ...``."""
    names: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            for alias in node.names:
                names[alias.asname or alias.name] = alias.name
    return names


class DirectRandomRule(Rule):
    """DET001: global ``random`` module used outside ``sim/rng.py``."""

    rule_id = "DET001"
    description = "stochastic code must use RngRegistry streams, not the random module"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.is_rng_module:
            return
        module_aliases = _random_module_aliases(ctx.tree)
        from_imports = _from_random_imports(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        yield self.finding(
                            ctx,
                            node,
                            "import of the global random module; draw from an "
                            "RngRegistry stream instead",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                imported = ", ".join(a.name for a in node.names)
                yield self.finding(
                    ctx,
                    node,
                    f"from random import {imported}; draw from an RngRegistry "
                    "stream instead",
                )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in module_aliases
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"direct call random.{func.attr}(); unseeded global state "
                        "breaks replay — use an RngRegistry stream",
                    )
                elif isinstance(func, ast.Name) and func.id in from_imports:
                    yield self.finding(
                        ctx,
                        node,
                        f"call to random.{from_imports[func.id]} imported from the "
                        "random module; use an RngRegistry stream",
                    )


# Wall-clock callables on the ``time`` module.
_TIME_FUNCS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
}
# Argless constructors on datetime/date objects.
_DATETIME_FUNCS = {"now", "today", "utcnow"}
_DATETIME_BASES = {"datetime", "date"}


class WallClockRule(Rule):
    """DET002: wall-clock reads inside simulation code."""

    rule_id = "DET002"
    description = "simulation code must use Simulator.now, never the wall clock"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.wallclock_exempt:
            return
        time_aliases: Set[str] = set()
        bare_time_funcs: Dict[str, str] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_aliases.add(alias.asname or "time")
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in _TIME_FUNCS:
                        bare_time_funcs[alias.asname or alias.name] = alias.name
                        yield self.finding(
                            ctx,
                            node,
                            f"from time import {alias.name}; thread simulated "
                            "time (Simulator.now) instead",
                        )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in time_aliases
                and func.attr in _TIME_FUNCS
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock read time.{func.attr}(); use Simulator.now",
                )
            elif isinstance(func, ast.Name) and func.id in bare_time_funcs:
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock read {func.id}() (time.{bare_time_funcs[func.id]}); "
                    "use Simulator.now",
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in _DATETIME_FUNCS
                and not node.args
                and not node.keywords
                and self._is_datetime_base(func.value)
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"argless datetime {func.attr}() reads the wall clock; "
                    "derive timestamps from simulated time",
                )

    @staticmethod
    def _is_datetime_base(node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in _DATETIME_BASES
        if isinstance(node, ast.Attribute):
            return node.attr in _DATETIME_BASES
        return False


# Calls that (transitively) schedule events on the kernel: if reached
# from inside a set iteration, the schedule order inherits hash order.
_SCHEDULING_CALLS = {
    "call_at",
    "call_in",
    "defer",
    "fail",
    "process",
    "put",
    "request",
    "schedule",
    "submit",
    "succeed",
    "timeout",
}
_SET_ANNOTATIONS = {"set", "Set", "frozenset", "FrozenSet", "MutableSet"}


def _is_set_annotation(annotation: ast.expr) -> bool:
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Name):
        return target.id in _SET_ANNOTATIONS
    if isinstance(target, ast.Attribute):
        return target.attr in _SET_ANNOTATIONS
    return False


def _is_set_literalish(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    return False


def _schedules_events(nodes: Sequence[ast.stmt]) -> bool:
    for stmt in nodes:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                func = node.func
                name = None
                if isinstance(func, ast.Attribute):
                    name = func.attr
                elif isinstance(func, ast.Name):
                    name = func.id
                if name in _SCHEDULING_CALLS:
                    return True
    return False


@dataclass
class _SetBindings:
    """Names known (syntactically) to hold sets, per scope."""

    local: Set[str] = field(default_factory=set)
    attrs: Set[str] = field(default_factory=set)  # self.<attr> with Set annotation

    def covers(self, node: ast.expr) -> bool:
        if _is_set_literalish(node):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.local
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr in self.attrs
        return False


class SetOrderRule(Rule):
    """DET003: iteration over a set feeds event scheduling."""

    rule_id = "DET003"
    description = "set iteration order is hash-dependent; sort before scheduling"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        set_attrs: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    if (
                        isinstance(stmt, ast.AnnAssign)
                        and isinstance(stmt.target, ast.Name)
                        and _is_set_annotation(stmt.annotation)
                    ):
                        set_attrs.add(stmt.target.id)
        for scope in ast.walk(ctx.tree):
            if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            bindings = _SetBindings(attrs=set_attrs)
            for node in ast.walk(scope):
                if isinstance(node, ast.Assign) and _is_set_literalish(node.value):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            bindings.local.add(target.id)
                elif isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name
                ):
                    if _is_set_annotation(node.annotation) or (
                        node.value is not None and _is_set_literalish(node.value)
                    ):
                        bindings.local.add(node.target.id)
            for node in ast.walk(scope):
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    if bindings.covers(node.iter) and _schedules_events(node.body):
                        yield self.finding(
                            ctx,
                            node,
                            "iteration over a set feeds event scheduling; wrap the "
                            "set in sorted(...) so replay order is stable",
                        )
                elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
                    if any(
                        bindings.covers(gen.iter) for gen in node.generators
                    ) and _schedules_events([ast.Expr(value=node.elt)]):
                        yield self.finding(
                            ctx,
                            node,
                            "comprehension over a set schedules events; wrap the "
                            "set in sorted(...) so replay order is stable",
                        )


_MUTABLE_CALLS = {
    "list",
    "dict",
    "set",
    "bytearray",
    "defaultdict",
    "deque",
    "OrderedDict",
    "Counter",
}


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            return func.id in _MUTABLE_CALLS
        if isinstance(func, ast.Attribute):
            return func.attr in _MUTABLE_CALLS
    return False


class MutableDefaultRule(Rule):
    """DET004: mutable defaults in signatures and class bodies."""

    rule_id = "DET004"
    description = "mutable defaults share state across calls/instances"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                defaults = list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None
                ]
                for default in defaults:
                    if _is_mutable_literal(default):
                        yield self.finding(
                            ctx,
                            default,
                            "mutable default argument is shared across calls; "
                            "use None (or dataclasses.field(default_factory=...))",
                        )
            elif isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    value = None
                    if isinstance(stmt, ast.Assign):
                        value = stmt.value
                    elif isinstance(stmt, ast.AnnAssign):
                        value = stmt.value
                    if value is not None and _is_mutable_literal(value):
                        yield self.finding(
                            ctx,
                            value,
                            "mutable class attribute is shared across instances; "
                            "use dataclasses.field(default_factory=...)",
                        )


class RandomShadowRule(Rule):
    """DET005: binding the name ``random`` hides direct-call hazards."""

    rule_id = "DET005"
    description = "never rebind the name 'random'"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.is_rng_module:
            return
        message = (
            "binding the name 'random' shadows the stdlib module and hides "
            "direct-call hazards; name the stream explicitly (e.g. 'rand')"
        )
        # Methods live in the class namespace, not any calling scope, so
        # a ``def random(self)`` (e.g. a Protocol mirroring the
        # ``random.Random`` API) can never shadow the module.
        methods = {
            stmt
            for klass in ast.walk(ctx.tree)
            if isinstance(klass, ast.ClassDef)
            for stmt in klass.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    for name in self._names_in_target(target):
                        if name == "random":
                            yield self.finding(ctx, node, message)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                for name in self._names_in_target(node.target):
                    if name == "random":
                        yield self.finding(ctx, node, message)
            elif isinstance(node, ast.NamedExpr):
                if isinstance(node.target, ast.Name) and node.target.id == "random":
                    yield self.finding(ctx, node, message)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for name in self._names_in_target(node.target):
                    if name == "random":
                        yield self.finding(ctx, node, message)
            elif isinstance(node, ast.comprehension):
                for name in self._names_in_target(node.target):
                    if name == "random":
                        yield self.finding(ctx, node.target, message)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                all_args = (
                    args.posonlyargs + args.args + args.kwonlyargs
                    + ([args.vararg] if args.vararg else [])
                    + ([args.kwarg] if args.kwarg else [])
                )
                for arg in all_args:
                    if arg.arg == "random":
                        yield self.finding(ctx, arg, message)
                if node.name == "random" and node not in methods:
                    yield self.finding(ctx, node, message)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    if alias.asname == "random" and getattr(
                        node, "module", None
                    ) != "random" and alias.name != "random":
                        yield self.finding(ctx, node, message)
            elif isinstance(node, ast.withitem):
                if node.optional_vars is not None:
                    for name in self._names_in_target(node.optional_vars):
                        if name == "random":
                            yield self.finding(ctx, node.optional_vars, message)

    @staticmethod
    def _names_in_target(target: ast.expr) -> Iterator[str]:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                yield node.id


DETERMINISM_RULES: Tuple[Rule, ...] = (
    DirectRandomRule(),
    WallClockRule(),
    SetOrderRule(),
    MutableDefaultRule(),
    RandomShadowRule(),
)
