"""Dimensional-consistency lint over :mod:`repro.units` annotations.

The checker runs a conservative AST dataflow per function: dimensions
seed from parameter/attribute/return annotations naming the
:mod:`repro.units` vocabulary (``Watts``, ``Joules``, ``Bytes``,
``BytesPerSec``, ``MBps``, ``SimSeconds``), from calls to the units
constructors and conversion helpers, and from a unit-suffix naming
convention (``budget_watts``, ``energy_joules``, ...).  Dimensions
propagate through assignments and arithmetic with a small algebra
(``Watts * SimSeconds -> Joules``, ``Bytes / SimSeconds ->
BytesPerSec``, ...); anything the algebra cannot prove stays *unknown*
and never produces a finding — the checker only speaks when two
*known* dimensions contradict.

Rules:

* ``UNIT001`` — additive mixing: ``+``/``-`` (or ``min``/``max``)
  between values of incompatible dimensions;
* ``UNIT002`` — comparison between values of incompatible dimensions;
* ``UNIT003`` — a value whose derived dimension contradicts the
  declared annotation it is assigned or returned into;
* ``UNIT004`` — boundary crossing: an argument of one dimension passed
  to a parameter declared with an incompatible dimension (the classic
  unconverted ``MBps`` -> ``BytesPerSec`` handoff);
* ``UNIT005`` — a byte-scale magic literal (``1e6``, ``1024 * 1024``,
  ``1 << 20``, ...) multiplied into dimensioned arithmetic instead of
  the declared :mod:`repro.units` constants or conversion helpers;
* ``UNIT006`` — a unit-suffixed name (``..._watts``) bound to a value
  of a contradicting derived dimension.
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import ModuleContext, Rule

__all__ = [
    "UNIT_RULES",
    "Dim",
    "UnitAdditiveMixRule",
    "UnitAnnotationContradictionRule",
    "UnitBoundaryCrossingRule",
    "UnitComparisonMixRule",
    "UnitMagicLiteralRule",
    "UnitNameContradictionRule",
]


class Dim(enum.Enum):
    """The dimension lattice: real units plus a dimensionless scalar."""

    WATTS = "Watts"
    JOULES = "Joules"
    BYTES = "Bytes"
    BYTES_PER_SEC = "BytesPerSec"
    MBPS = "MBps"
    SECONDS = "SimSeconds"
    SCALAR = "scalar"

    @property
    def is_unit(self) -> bool:
        return self is not Dim.SCALAR


#: Annotation name -> dimension (matches bare names, ``units.X``
#: attributes and quoted forward references).
_ANNOTATION_DIMS: Dict[str, Dim] = {
    "Watts": Dim.WATTS,
    "Joules": Dim.JOULES,
    "Bytes": Dim.BYTES,
    "BytesPerSec": Dim.BYTES_PER_SEC,
    "MBps": Dim.MBPS,
    "SimSeconds": Dim.SECONDS,
}

#: Unit-suffix naming convention, checked longest-suffix-first.  A name
#: matches when it *is* the suffix (sans leading underscore) or ends
#: with it.
_SUFFIX_DIMS: Tuple[Tuple[str, Dim], ...] = (
    ("_bytes_per_second", Dim.BYTES_PER_SEC),
    ("_bytes_per_s", Dim.BYTES_PER_SEC),
    ("_mb_per_second", Dim.MBPS),
    ("_mbps", Dim.MBPS),
    ("_watts", Dim.WATTS),
    ("_joules", Dim.JOULES),
    ("_bytes", Dim.BYTES),
    ("_seconds", Dim.SECONDS),
)

#: Calls whose result dimension is known: the units constructors (a
#: cast) and the sanctioned conversion helpers.
_CALL_RESULT_DIMS: Dict[str, Optional[Dim]] = {
    "Watts": Dim.WATTS,
    "Joules": Dim.JOULES,
    "Bytes": Dim.BYTES,
    "BytesPerSec": Dim.BYTES_PER_SEC,
    "MBps": Dim.MBPS,
    "SimSeconds": Dim.SECONDS,
    "watt_seconds": Dim.JOULES,
    "joules_to_watts": Dim.WATTS,
    "bytes_per_sec_to_mbps": Dim.MBPS,
    "mbps_to_bytes_per_sec": Dim.BYTES_PER_SEC,
    "bytes_to_mb": Dim.SCALAR,
    "mb_to_bytes": Dim.BYTES,
}

#: Declared scale-constant names: dimensionless pure scale factors.
_SCALE_CONSTANTS = {"KB", "MB", "GB", "TB", "KiB", "MiB", "GiB", "TiB"}

#: Byte-scale magic values UNIT005 hunts for when multiplied into
#: dimensioned arithmetic.
_MAGIC_BYTE_SCALES = {
    1_000,
    1_000_000,
    1_000_000_000,
    1_000_000_000_000,
    1 << 10,
    1 << 20,
    1 << 30,
    1 << 40,
}

#: Dimension algebra: (left, right) -> product dimension.
_MULT_TABLE: Dict[Tuple[Dim, Dim], Dim] = {
    (Dim.WATTS, Dim.SECONDS): Dim.JOULES,
    (Dim.SECONDS, Dim.WATTS): Dim.JOULES,
    (Dim.BYTES_PER_SEC, Dim.SECONDS): Dim.BYTES,
    (Dim.SECONDS, Dim.BYTES_PER_SEC): Dim.BYTES,
}

#: (numerator, denominator) -> quotient dimension.
_DIV_TABLE: Dict[Tuple[Dim, Dim], Dim] = {
    (Dim.JOULES, Dim.SECONDS): Dim.WATTS,
    (Dim.JOULES, Dim.WATTS): Dim.SECONDS,
    (Dim.BYTES, Dim.SECONDS): Dim.BYTES_PER_SEC,
    (Dim.BYTES, Dim.BYTES_PER_SEC): Dim.SECONDS,
}


def name_suffix_dim(name: str) -> Optional[Dim]:
    """Dimension implied by a unit-suffixed identifier, if any."""
    for suffix, dim in _SUFFIX_DIMS:
        if name == suffix[1:] or name.endswith(suffix):
            return dim
    return None


def annotation_dim(node: Optional[ast.expr]) -> Optional[Dim]:
    """Dimension named by an annotation expression, if any.

    Unwraps ``Optional[...]`` / ``Final[...]`` and quoted forward
    references; anything else unrecognized is *unknown* (``None``).
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return _ANNOTATION_DIMS.get(node.value.strip())
    if isinstance(node, ast.Name):
        return _ANNOTATION_DIMS.get(node.id)
    if isinstance(node, ast.Attribute):
        return _ANNOTATION_DIMS.get(node.attr)
    if isinstance(node, ast.Subscript):
        base = node.value
        base_name = base.id if isinstance(base, ast.Name) else getattr(base, "attr", "")
        if base_name in {"Optional", "Final"}:
            return annotation_dim(node.slice)
    return None


def _const_value(node: ast.expr) -> Optional[float]:
    """Fold a literal-only numeric expression, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        if isinstance(node.value, bool):
            return None
        return float(node.value)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        inner = _const_value(node.operand)
        if inner is None:
            return None
        return -inner if isinstance(node.op, ast.USub) else inner
    if isinstance(node, ast.BinOp):
        left = _const_value(node.left)
        right = _const_value(node.right)
        if left is None or right is None:
            return None
        try:
            if isinstance(node.op, ast.Mult):
                return left * right
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Div):
                return left / right
            if isinstance(node.op, ast.Pow):
                return float(left**right)
            if isinstance(node.op, ast.LShift):
                return float(int(left) << int(right))
        except (OverflowError, ValueError, ZeroDivisionError):
            return None
    return None


def _is_magic_byte_scale(node: ast.expr) -> bool:
    value = _const_value(node)
    return value is not None and value in _MAGIC_BYTE_SCALES


@dataclass
class _DeclaredSignature:
    """Parameter dimensions of a module-local callable."""

    params: List[Tuple[str, Optional[Dim]]]  # positional order, self stripped
    by_name: Dict[str, Dim]


@dataclass
class _ModuleInfo:
    """Module-wide dimension declarations gathered in one pre-pass."""

    globals_: Dict[str, Dim] = field(default_factory=dict)
    # class name -> attr name -> dim (AnnAssign fields + property returns)
    class_attrs: Dict[str, Dict[str, Dim]] = field(default_factory=dict)
    # function return dims: "fn" and "Class.fn"
    returns: Dict[str, Dim] = field(default_factory=dict)
    # callable signatures: "fn", "Class.fn", and "Class" (the __init__)
    signatures: Dict[str, _DeclaredSignature] = field(default_factory=dict)


@dataclass
class _UnitFinding:
    rule_id: str
    node: ast.AST
    message: str


def _signature_of(func: ast.FunctionDef) -> _DeclaredSignature:
    args = func.args
    params: List[Tuple[str, Optional[Dim]]] = []
    by_name: Dict[str, Dim] = {}
    positional = list(args.posonlyargs) + list(args.args)
    if positional and positional[0].arg in {"self", "cls"}:
        positional = positional[1:]
    for arg in positional:
        dim = annotation_dim(arg.annotation)
        if dim is None and arg.annotation is not None:
            # Suffix convention only applies to *annotated* params — an
            # unannotated def gives the checker no contract to enforce.
            dim = name_suffix_dim(arg.arg)
        params.append((arg.arg, dim))
        if dim is not None:
            by_name[arg.arg] = dim
    for arg in args.kwonlyargs:
        dim = annotation_dim(arg.annotation)
        if dim is None and arg.annotation is not None:
            dim = name_suffix_dim(arg.arg)
        if dim is not None:
            by_name[arg.arg] = dim
    return _DeclaredSignature(params=params, by_name=by_name)


def _collect_module_info(tree: ast.Module) -> _ModuleInfo:
    info = _ModuleInfo()
    for stmt in tree.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            dim = annotation_dim(stmt.annotation)
            if dim is not None:
                info.globals_[stmt.target.id] = dim
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name) and isinstance(stmt.value, ast.Call):
                func = stmt.value.func
                name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
                dim = _CALL_RESULT_DIMS.get(name)
                if dim is not None and dim.is_unit:
                    info.globals_[target.id] = dim
        elif isinstance(stmt, ast.FunctionDef):
            dim = annotation_dim(stmt.returns)
            if dim is not None:
                info.returns[stmt.name] = dim
            info.signatures[stmt.name] = _signature_of(stmt)
        elif isinstance(stmt, ast.ClassDef):
            attrs: Dict[str, Dim] = {}
            for sub in stmt.body:
                if isinstance(sub, ast.AnnAssign) and isinstance(sub.target, ast.Name):
                    dim = annotation_dim(sub.annotation)
                    if dim is not None:
                        attrs[sub.target.id] = dim
                elif isinstance(sub, ast.FunctionDef):
                    qual = f"{stmt.name}.{sub.name}"
                    dim = annotation_dim(sub.returns)
                    if dim is not None:
                        info.returns[qual] = dim
                        if any(
                            isinstance(dec, ast.Name) and dec.id == "property"
                            for dec in sub.decorator_list
                        ):
                            attrs[sub.name] = dim
                    info.signatures[qual] = _signature_of(sub)
                    if sub.name == "__init__":
                        info.signatures[stmt.name] = info.signatures[qual]
            if attrs:
                info.class_attrs[stmt.name] = attrs
    return info


class _FunctionChecker:
    """One dataflow pass over a single function body."""

    def __init__(
        self,
        func: ast.FunctionDef,
        info: _ModuleInfo,
        class_name: Optional[str],
        findings: List[_UnitFinding],
    ) -> None:
        self.func = func
        self.info = info
        self.class_name = class_name
        self.findings = findings
        self.env: Dict[str, Dim] = {}
        self.self_attrs: Dict[str, Dim] = dict(
            info.class_attrs.get(class_name or "", {})
        )
        self.return_dim = annotation_dim(func.returns)
        self._seed_params()

    # -- environment -------------------------------------------------------

    def _seed_params(self) -> None:
        args = self.func.args
        every = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        for arg in every:
            dim = annotation_dim(arg.annotation)
            if dim is None and arg.annotation is not None:
                dim = name_suffix_dim(arg.arg)
            if dim is not None:
                self.env[arg.arg] = dim

    def _report(self, rule_id: str, node: ast.AST, message: str) -> None:
        self.findings.append(_UnitFinding(rule_id, node, message))

    # -- inference ---------------------------------------------------------

    def infer(self, node: ast.expr) -> Optional[Dim]:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(
                node.value, (int, float)
            ):
                return None
            return Dim.SCALAR
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            if node.id in _SCALE_CONSTANTS:
                return Dim.SCALAR
            if node.id in self.info.globals_:
                return self.info.globals_[node.id]
            return None
        if isinstance(node, ast.Attribute):
            if node.attr in _SCALE_CONSTANTS:
                return Dim.SCALAR
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                if node.attr in self.self_attrs:
                    return self.self_attrs[node.attr]
            return name_suffix_dim(node.attr)
        if isinstance(node, ast.Call):
            return self._infer_call(node)
        if isinstance(node, ast.BinOp):
            return self._infer_binop(node)
        if isinstance(node, ast.UnaryOp):
            return self.infer(node.operand)
        if isinstance(node, ast.IfExp):
            then = self.infer(node.body)
            other = self.infer(node.orelse)
            if then is not None and other is not None and then is not other:
                return None
            return then if then is not None else other
        if isinstance(node, ast.Compare):
            return Dim.SCALAR
        return None

    def _callee_name(self, node: ast.Call) -> Optional[str]:
        func = node.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return None

    def _callee_qualnames(self, node: ast.Call) -> List[str]:
        """Keys under which the callee may be declared in this module."""
        func = node.func
        keys: List[str] = []
        if isinstance(func, ast.Name):
            keys.append(func.id)
        elif isinstance(func, ast.Attribute):
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and self.class_name
            ):
                keys.append(f"{self.class_name}.{func.attr}")
            keys.append(func.attr)
        return keys

    def _infer_call(self, node: ast.Call) -> Optional[Dim]:
        name = self._callee_name(node)
        if name in _CALL_RESULT_DIMS:
            return _CALL_RESULT_DIMS[name]
        if name in {"abs", "float", "int"} and len(node.args) == 1:
            return self.infer(node.args[0])
        if name in {"min", "max"}:
            dims = [self.infer(arg) for arg in node.args]
            units = [d for d in dims if d is not None and d.is_unit]
            if len({d for d in units}) > 1:
                self._report(
                    "UNIT001",
                    node,
                    f"{name}() mixes incompatible dimensions "
                    f"({', '.join(sorted(d.value for d in set(units)))})",
                )
                return None
            if units and all(d is not None for d in dims):
                return units[0]
            return None
        for key in self._callee_qualnames(node):
            if key in self.info.returns:
                return self.info.returns[key]
        return None

    def _infer_binop(self, node: ast.BinOp) -> Optional[Dim]:
        left = self.infer(node.left)
        right = self.infer(node.right)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            return self._combine_additive(node, left, right)
        if isinstance(node.op, ast.Mult):
            if left is not None and right is not None:
                if (left, right) in _MULT_TABLE:
                    return _MULT_TABLE[(left, right)]
                if left is Dim.SCALAR:
                    return right
                if right is Dim.SCALAR:
                    return left
            # MBps * MB (the declared scale) converts back to bytes/s.
            if left is Dim.MBPS and self._is_mb_constant(node.right):
                return Dim.BYTES_PER_SEC
            return None
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            if left is not None and right is not None:
                if (left, right) in _DIV_TABLE:
                    return _DIV_TABLE[(left, right)]
                if left is right:
                    return Dim.SCALAR
                if right is Dim.SCALAR:
                    return left
            if left is Dim.BYTES_PER_SEC and self._is_mb_constant(node.right):
                return Dim.MBPS
            return None
        return None

    @staticmethod
    def _is_mb_constant(node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id == "MB"
        if isinstance(node, ast.Attribute):
            return node.attr == "MB"
        return False

    def _combine_additive(
        self, node: ast.AST, left: Optional[Dim], right: Optional[Dim]
    ) -> Optional[Dim]:
        if (
            left is not None
            and right is not None
            and left.is_unit
            and right.is_unit
            and left is not right
        ):
            self._report(
                "UNIT001",
                node,
                f"additive arithmetic mixes {left.value} with {right.value}; "
                "convert through repro.units first",
            )
            return None
        if left is not None and left.is_unit:
            return left
        if right is not None and right.is_unit:
            return right
        if left is Dim.SCALAR and right is Dim.SCALAR:
            return Dim.SCALAR
        return None

    # -- statement walk ----------------------------------------------------

    def check(self) -> None:
        for stmt in self.func.body:
            self._check_stmt(stmt)

    def _check_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are visited independently
        if isinstance(stmt, ast.Assign):
            value_dim = self.infer(stmt.value)
            for target in stmt.targets:
                self._bind_target(target, value_dim, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            declared = annotation_dim(stmt.annotation)
            if stmt.value is not None:
                value_dim = self.infer(stmt.value)
                if (
                    declared is not None
                    and value_dim is not None
                    and declared.is_unit
                    and value_dim.is_unit
                    and declared is not value_dim
                ):
                    self._report(
                        "UNIT003",
                        stmt,
                        f"value of dimension {value_dim.value} assigned to a "
                        f"target declared {declared.value}",
                    )
                if isinstance(stmt.target, ast.Name):
                    self.env[stmt.target.id] = (
                        declared if declared is not None else value_dim
                    ) or self.env.get(stmt.target.id, Dim.SCALAR)
            elif declared is not None and isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = declared
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.op, (ast.Add, ast.Sub)):
                target_dim = self.infer(stmt.target)
                value_dim = self.infer(stmt.value)
                if (
                    target_dim is not None
                    and value_dim is not None
                    and target_dim.is_unit
                    and value_dim.is_unit
                    and target_dim is not value_dim
                ):
                    self._report(
                        "UNIT001",
                        stmt,
                        f"augmented arithmetic mixes {target_dim.value} with "
                        f"{value_dim.value}; convert through repro.units first",
                    )
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            value_dim = self.infer(stmt.value)
            if (
                self.return_dim is not None
                and value_dim is not None
                and self.return_dim.is_unit
                and value_dim.is_unit
                and value_dim is not self.return_dim
            ):
                self._report(
                    "UNIT003",
                    stmt,
                    f"returns {value_dim.value} from a function declared "
                    f"-> {self.return_dim.value}",
                )
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._check_stmt(child)
        self._check_expressions(stmt)

    def _bind_target(
        self, target: ast.expr, value_dim: Optional[Dim], stmt: ast.stmt
    ) -> None:
        if isinstance(target, ast.Name):
            suffix = name_suffix_dim(target.id)
            if (
                suffix is not None
                and value_dim is not None
                and value_dim.is_unit
                and suffix is not value_dim
            ):
                self._report(
                    "UNIT006",
                    stmt,
                    f"name {target.id!r} implies {suffix.value} but is bound "
                    f"to a {value_dim.value} value",
                )
            if value_dim is not None:
                self.env[target.id] = value_dim
            elif suffix is not None and target.id not in self.env:
                self.env[target.id] = suffix
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            declared = self.self_attrs.get(target.attr)
            if (
                declared is not None
                and value_dim is not None
                and declared.is_unit
                and value_dim.is_unit
                and declared is not value_dim
            ):
                self._report(
                    "UNIT003",
                    stmt,
                    f"value of dimension {value_dim.value} assigned to "
                    f"self.{target.attr} declared {declared.value}",
                )
                return
            suffix = name_suffix_dim(target.attr)
            if (
                declared is None
                and suffix is not None
                and value_dim is not None
                and value_dim.is_unit
                and suffix is not value_dim
            ):
                self._report(
                    "UNIT006",
                    stmt,
                    f"attribute self.{target.attr} implies {suffix.value} but "
                    f"is bound to a {value_dim.value} value",
                )
            if value_dim is not None and value_dim.is_unit:
                self.self_attrs.setdefault(target.attr, value_dim)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, None, stmt)

    def _check_expressions(self, stmt: ast.stmt) -> None:
        """Expression-level rules on this statement's own expressions.

        Nested statements are visited by their own ``_check_stmt`` call
        and nested scopes by their own checker, so the walk stops at
        both boundaries — otherwise every ancestor statement would
        re-report the same expression.
        """
        stack: List[ast.AST] = [
            child
            for child in ast.iter_child_nodes(stmt)
            if not isinstance(child, ast.stmt)
        ]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Lambda):
                continue  # nested scope: handled independently
            stack.extend(
                child
                for child in ast.iter_child_nodes(node)
                if not isinstance(child, ast.stmt)
            )
            if isinstance(node, ast.BinOp):
                # Inference reports UNIT001 on visit; here handle the
                # rules that need the *operands*, not the result.
                self._check_magic_literal(node)
            elif isinstance(node, ast.Compare):
                self._check_compare(node)
            elif isinstance(node, ast.Call):
                self._check_call_boundary(node)

    def _check_magic_literal(self, node: ast.BinOp) -> None:
        if not isinstance(node.op, (ast.Mult, ast.Div, ast.FloorDiv, ast.Mod)):
            return
        pairs = (
            (node.left, node.right),
            (node.right, node.left),
        )
        for dimensioned, literal in pairs:
            if not _is_magic_byte_scale(literal):
                continue
            dim = self.infer(dimensioned)
            if dim in {Dim.BYTES, Dim.BYTES_PER_SEC, Dim.MBPS}:
                self._report(
                    "UNIT005",
                    node,
                    f"byte-scale magic literal in {dim.value} arithmetic; use "
                    "the repro.units constants (MB, MiB, ...) or a conversion "
                    "helper",
                )
                return

    def _check_compare(self, node: ast.Compare) -> None:
        dims = [self.infer(node.left)] + [self.infer(c) for c in node.comparators]
        units = [d for d in dims if d is not None and d.is_unit]
        distinct = {d for d in units}
        if len(distinct) > 1:
            self._report(
                "UNIT002",
                node,
                "comparison mixes incompatible dimensions "
                f"({', '.join(sorted(d.value for d in distinct))})",
            )

    def _check_call_boundary(self, node: ast.Call) -> None:
        signature: Optional[_DeclaredSignature] = None
        for key in self._callee_qualnames(node):
            signature = self.info.signatures.get(key)
            if signature is not None:
                break
        if signature is None:
            return
        checks: List[Tuple[ast.expr, Optional[Dim], str]] = []
        for position, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred) or position >= len(signature.params):
                break
            param_name, param_dim = signature.params[position]
            checks.append((arg, param_dim, param_name))
        for keyword in node.keywords:
            if keyword.arg is not None and keyword.arg in signature.by_name:
                checks.append(
                    (keyword.value, signature.by_name[keyword.arg], keyword.arg)
                )
        for arg, param_dim, param_name in checks:
            if param_dim is None or not param_dim.is_unit:
                continue
            arg_dim = self.infer(arg)
            if arg_dim is not None and arg_dim.is_unit and arg_dim is not param_dim:
                self._report(
                    "UNIT004",
                    arg,
                    f"argument of dimension {arg_dim.value} passed to "
                    f"parameter {param_name!r} declared {param_dim.value}; "
                    "convert through repro.units at the boundary",
                )


def _module_unit_findings(ctx: ModuleContext) -> List[_UnitFinding]:
    """All UNIT findings for one module, computed once and cached."""
    cached = getattr(ctx, "_unit_findings", None)
    if cached is not None:
        return cached
    findings: List[_UnitFinding] = []
    info = _collect_module_info(ctx.tree)

    def visit(body: List[ast.stmt], class_name: Optional[str]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.FunctionDef):
                _FunctionChecker(stmt, info, class_name, findings).check()
                visit(stmt.body, None)
            elif isinstance(stmt, ast.ClassDef):
                visit(stmt.body, stmt.name)
            elif isinstance(stmt, (ast.If, ast.Try, ast.With)):
                visit(list(ast.iter_child_nodes(stmt)), class_name)  # type: ignore[arg-type]

    visit(ctx.tree.body, None)
    ctx._unit_findings = findings  # type: ignore[attr-defined]
    return findings


class _UnitRule(Rule):
    """Base for the UNIT family: filters the shared module analysis."""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for item in _module_unit_findings(ctx):
            if item.rule_id == self.rule_id:
                yield self.finding(ctx, item.node, item.message)


class UnitAdditiveMixRule(_UnitRule):
    """UNIT001: addition/subtraction across incompatible dimensions."""

    rule_id = "UNIT001"
    description = "additive arithmetic must not mix dimensions"


class UnitComparisonMixRule(_UnitRule):
    """UNIT002: comparison across incompatible dimensions."""

    rule_id = "UNIT002"
    description = "comparisons must not mix dimensions"


class UnitAnnotationContradictionRule(_UnitRule):
    """UNIT003: derived dimension contradicts the declared annotation."""

    rule_id = "UNIT003"
    description = "derived dimension must match the declared annotation"


class UnitBoundaryCrossingRule(_UnitRule):
    """UNIT004: unconverted dimension handed across a call boundary."""

    rule_id = "UNIT004"
    description = "call boundaries must receive the declared dimension"


class UnitMagicLiteralRule(_UnitRule):
    """UNIT005: byte-scale magic literal in dimensioned arithmetic."""

    rule_id = "UNIT005"
    description = "use repro.units scale constants, not magic byte literals"
    severity = Severity.WARNING


class UnitNameContradictionRule(_UnitRule):
    """UNIT006: unit-suffixed name bound to a contradicting dimension."""

    rule_id = "UNIT006"
    description = "unit-suffixed names must hold matching dimensions"
    severity = Severity.WARNING


UNIT_RULES: Tuple[Rule, ...] = (
    UnitAdditiveMixRule(),
    UnitComparisonMixRule(),
    UnitAnnotationContradictionRule(),
    UnitBoundaryCrossingRule(),
    UnitMagicLiteralRule(),
    UnitNameContradictionRule(),
)
