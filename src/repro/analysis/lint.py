"""The determinism linter: file discovery, rule dispatch, suppressions.

Usage::

    from repro.analysis import Linter

    report = Linter().lint_paths(["src/repro"])
    for finding in report.findings:
        print(finding.render())

Inline suppressions use ``# repro-lint: ignore[DET001]`` (several ids
comma-separated, or ``ignore[all]``) on the offending line.  Suppressed
findings are not dropped silently — they are collected on the report so
``repro lint --audit`` can list every waiver in the tree.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding, Suppression
from repro.analysis.proc import PROC_RULES
from repro.analysis.rules import DETERMINISM_RULES, ModuleContext, Rule
from repro.analysis.units import UNIT_RULES

__all__ = [
    "DEFAULT_RULES",
    "LintConfig",
    "LintReport",
    "Linter",
    "all_rule_ids",
    "lint_paths",
]

#: The full default rule set: determinism, dimensional consistency,
#: sim-process protocol.  Composed here (not in rules.py) so the rule
#: family modules can all import the Rule base without cycles.
DEFAULT_RULES: Tuple[Rule, ...] = DETERMINISM_RULES + UNIT_RULES + PROC_RULES


def all_rule_ids(rules: Sequence[Rule] = DEFAULT_RULES) -> List[str]:
    return [rule.rule_id for rule in rules]

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*ignore\[([A-Za-z0-9_,\s\-]+)\]")


@dataclass(frozen=True)
class LintConfig:
    """Path-based policy: which modules get which exemptions.

    Paths are matched as posix suffixes, so the same config works
    whether the linter is pointed at ``src/repro`` or an absolute path.
    """

    # The one module allowed to import the global random module.
    rng_modules: Tuple[str, ...] = ("repro/sim/rng.py",)
    # Operator-facing code that legitimately reads the wall clock.
    # The benchmark suite measures the simulator on the wall clock; it
    # never feeds wall time into simulated time.
    wallclock_exempt: Tuple[str, ...] = (
        "repro/cli.py",
        "repro/monitor.py",
        "repro/__main__.py",
        "repro/benchmarks/suite.py",
        "repro/experiments/campaign.py",
    )


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Suppression] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return counts

    def suppressed_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for suppression in self.suppressed:
            counts[suppression.rule_id] = counts.get(suppression.rule_id, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable form for ``repro lint --json`` and CI."""
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "findings": [
                {
                    "file": f.file,
                    "line": f.line,
                    "rule": f.rule_id,
                    "severity": f.severity.value,
                    "message": f.message,
                }
                for f in sorted(self.findings)
            ],
            "suppressed": [
                {
                    "file": s.file,
                    "line": s.line,
                    "rule": s.rule_id,
                    "message": s.message,
                }
                for s in sorted(self.suppressed)
            ],
            "parse_errors": [
                {"file": f.file, "line": f.line, "message": f.message}
                for f in sorted(self.parse_errors)
            ],
            "by_rule": self.by_rule(),
            "suppressed_by_rule": self.suppressed_by_rule(),
        }

    def render(self, audit: bool = False) -> str:
        lines: List[str] = []
        for finding in sorted(self.findings + self.parse_errors):
            lines.append(finding.render())
        if audit and self.suppressed:
            lines.append("")
            lines.append(f"Suppressions in effect ({len(self.suppressed)}):")
            for suppression in sorted(self.suppressed):
                lines.append("  " + suppression.render())
        summary = (
            f"{len(self.findings)} finding(s), {len(self.suppressed)} "
            f"suppressed, {self.files_checked} file(s) checked"
        )
        lines.append(summary)
        return "\n".join(lines)


def _suppressed_ids(line: str) -> List[str]:
    match = _SUPPRESS_RE.search(line)
    if not match:
        return []
    return [part.strip() for part in match.group(1).split(",") if part.strip()]


class Linter:
    """Runs a rule set over python files, applying inline suppressions."""

    def __init__(
        self,
        config: LintConfig = LintConfig(),
        rules: Optional[Sequence[Rule]] = None,
    ) -> None:
        self.config = config
        self.rules: Tuple[Rule, ...] = tuple(rules if rules is not None else DEFAULT_RULES)

    # -- file discovery ----------------------------------------------------

    @staticmethod
    def iter_python_files(paths: Iterable[str]) -> List[Path]:
        files: List[Path] = []
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            elif path.suffix == ".py":
                files.append(path)
        return files

    # -- policy ------------------------------------------------------------

    @staticmethod
    def _matches(path: Path, suffixes: Tuple[str, ...]) -> bool:
        posix = path.as_posix()
        return any(posix.endswith(suffix) for suffix in suffixes)

    def context_for(self, path: Path, source: str) -> ModuleContext:
        return ModuleContext(
            path=str(path),
            tree=ast.parse(source, filename=str(path)),
            lines=source.splitlines(),
            is_rng_module=self._matches(path, self.config.rng_modules),
            wallclock_exempt=self._matches(path, self.config.wallclock_exempt),
        )

    # -- running -----------------------------------------------------------

    def lint_source(self, path: Path, source: str, report: LintReport) -> None:
        try:
            ctx = self.context_for(path, source)
        except SyntaxError as exc:
            report.parse_errors.append(
                Finding(
                    file=str(path),
                    line=exc.lineno or 0,
                    rule_id="PARSE",
                    message=f"could not parse: {exc.msg}",
                )
            )
            return
        for rule in self.rules:
            for finding in rule.check(ctx):
                line_text = ""
                if 1 <= finding.line <= len(ctx.lines):
                    line_text = ctx.lines[finding.line - 1]
                ignored = _suppressed_ids(line_text)
                if finding.rule_id in ignored or "all" in ignored:
                    report.suppressed.append(
                        Suppression(
                            file=finding.file,
                            line=finding.line,
                            rule_id=finding.rule_id,
                            message=finding.message,
                        )
                    )
                else:
                    report.findings.append(finding)

    def lint_paths(self, paths: Iterable[str]) -> LintReport:
        report = LintReport()
        path_list = list(paths)
        # A typo'd path silently linting zero files would pass the CI
        # gate; surface it as a finding instead.
        for raw in path_list:
            path = Path(raw)
            if not path.exists():
                report.parse_errors.append(
                    Finding(
                        file=raw,
                        line=0,
                        rule_id="IO",
                        message="no such file or directory",
                    )
                )
            elif not path.is_dir() and path.suffix != ".py":
                report.parse_errors.append(
                    Finding(
                        file=raw,
                        line=0,
                        rule_id="IO",
                        message="not a python file",
                    )
                )
        for path in self.iter_python_files(path_list):
            try:
                source = path.read_text(encoding="utf-8")
            except OSError as exc:
                report.parse_errors.append(
                    Finding(
                        file=str(path), line=0, rule_id="IO", message=str(exc)
                    )
                )
                continue
            report.files_checked += 1
            self.lint_source(path, source, report)
        report.findings.sort()
        report.suppressed.sort()
        return report


def lint_paths(
    paths: Iterable[str],
    config: LintConfig = LintConfig(),
    rules: Optional[Sequence[Rule]] = None,
) -> LintReport:
    """Convenience wrapper: one-shot lint of ``paths``."""
    return Linter(config=config, rules=rules).lint_paths(paths)
