"""Sim-process protocol lint: generator discipline for kernel processes.

Simulation processes are plain generators driven by the kernel; the
protocol they must follow (hold no resource across an unprotected
yield, never block the interpreter, never swallow
:class:`repro.sim.Interrupt`) is invisible to the type system.  This
module detects *sim generators* syntactically — a function whose own
body yields and that either declares an ``Event``-ish return type or
yields calls to the kernel's event factories (``timeout``, ``request``,
``put``, ...) — and then enforces the protocol on them:

* ``PROC001`` — a ``.request()`` acquire whose matching ``.release()``
  is missing, or is separated from the acquire by a yield without a
  ``try/finally`` guarding it: the process can be interrupted at any
  yield, leaking the slot forever;
* ``PROC002`` — wall-clock blocking calls (``time.sleep``, file or
  socket I/O, subprocess spawns) inside a sim generator: they stall
  the real interpreter, not simulated time;
* ``PROC003`` — a nested function registered as an event callback that
  mutates enclosing shared state: the mutation lands at an
  unpredictable point in the event order (warning);
* ``PROC004`` — a broad ``except``/``except Exception`` in a sim
  generator with no bare ``raise`` and no dedicated ``Interrupt``
  handler: :class:`repro.sim.Interrupt` derives from ``Exception``, so
  the handler silently swallows kernel interrupts.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import ModuleContext, Rule

__all__ = [
    "PROC_RULES",
    "ProcBlockingCallRule",
    "ProcBroadExceptRule",
    "ProcCallbackMutationRule",
    "ProcLeakedAcquireRule",
    "is_sim_generator",
]

#: Kernel event-factory method names: yielding a call to one of these
#: marks the enclosing generator as a sim process.
_EVENT_FACTORIES = {
    "timeout",
    "request",
    "process",
    "put",
    "get",
    "call",
    "submit",
    "all_of",
    "any_of",
}

#: Return-annotation substrings that mark a sim process.
_EVENT_ANNOTATIONS = {"Event", "ProcessGen", "SimGenerator"}


def _own_nodes(func: ast.FunctionDef) -> Iterator[ast.AST]:
    """Walk ``func``'s body without descending into nested scopes."""
    stack: List[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _call_attr_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Attribute):
            return node.func.attr
        if isinstance(node.func, ast.Name):
            return node.func.id
    return None


def is_sim_generator(func: ast.FunctionDef) -> bool:
    """True when ``func`` is (syntactically) a kernel-driven process."""
    yields: List[ast.expr] = []
    for node in _own_nodes(func):
        if isinstance(node, ast.Yield) and node.value is not None:
            yields.append(node.value)
        elif isinstance(node, ast.YieldFrom):
            yields.append(node.value)
    if not yields:
        return False
    returns = func.returns
    if returns is not None:
        rendered = ast.unparse(returns)
        if any(marker in rendered for marker in _EVENT_ANNOTATIONS):
            return True
    for value in yields:
        name = _call_attr_name(value)
        if name in _EVENT_FACTORIES:
            return True
    return False


def _sim_generators(tree: ast.Module) -> List[ast.FunctionDef]:
    return [
        node
        for node in ast.walk(tree)
        if isinstance(node, ast.FunctionDef) and is_sim_generator(node)
    ]


class _ProcRule(Rule):
    """Base: dispatches per detected sim generator."""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for func in _sim_generators(ctx.tree):
            yield from self.check_generator(ctx, func)

    def check_generator(
        self, ctx: ModuleContext, func: ast.FunctionDef
    ) -> Iterator[Finding]:
        raise NotImplementedError


def _receiver_repr(node: ast.expr) -> Optional[str]:
    """Stable textual key for an acquire/release receiver expression."""
    if isinstance(node, (ast.Name, ast.Attribute, ast.Subscript)):
        try:
            return ast.unparse(node)
        except ValueError:  # pragma: no cover - unparse of synthetic nodes
            return None
    return None


class ProcLeakedAcquireRule(_ProcRule):
    """PROC001: resource acquired but not released on every path."""

    rule_id = "PROC001"
    description = "every .request() needs a .release() guarded by try/finally"

    def check_generator(
        self, ctx: ModuleContext, func: ast.FunctionDef
    ) -> Iterator[Finding]:
        # Gather, in source order: acquires, releases (with their
        # position inside any finally block), and yields.
        acquires: List[Tuple[int, str, ast.AST]] = []
        releases: List[Tuple[int, str, bool]] = []
        yield_lines: List[int] = []
        finally_spans = self._finally_spans(func)
        for node in _own_nodes(func):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                yield_lines.append(node.lineno)
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            receiver = _receiver_repr(node.func.value)
            if receiver is None:
                continue
            if node.func.attr == "request":
                acquires.append((node.lineno, receiver, node))
            elif node.func.attr == "release":
                in_finally = any(
                    start <= node.lineno <= end for start, end in finally_spans
                )
                releases.append((node.lineno, receiver, in_finally))
        for line, receiver, node in acquires:
            matching = [r for r in releases if r[1] == receiver and r[0] >= line]
            if not matching:
                yield self.finding(
                    ctx,
                    node,
                    f"{receiver}.request() is never released; an interrupt "
                    "leaks the slot forever",
                )
                continue
            release_line, _, in_finally = min(matching)
            crossed = [y for y in yield_lines if line < y < release_line]
            if crossed and not in_finally:
                yield self.finding(
                    ctx,
                    node,
                    f"{receiver}.request() is held across a yield at line "
                    f"{crossed[0]} but released outside try/finally; an "
                    "interrupt at the yield leaks the slot",
                )

    @staticmethod
    def _finally_spans(func: ast.FunctionDef) -> List[Tuple[int, int]]:
        spans: List[Tuple[int, int]] = []
        for node in _own_nodes(func):
            if isinstance(node, (ast.Try,)) and node.finalbody:
                first = node.finalbody[0]
                last = node.finalbody[-1]
                spans.append(
                    (first.lineno, getattr(last, "end_lineno", last.lineno))
                )
        return spans


#: Attribute calls that block the interpreter regardless of receiver.
_BLOCKING_ATTRS = {
    "sleep": "blocks the interpreter; yield sim.timeout(...) instead",
    "read_text": "file I/O inside a sim process; do it before sim.run()",
    "write_text": "file I/O inside a sim process; do it after sim.run()",
    "read_bytes": "file I/O inside a sim process; do it before sim.run()",
    "write_bytes": "file I/O inside a sim process; do it after sim.run()",
}

#: Module receivers whose every call is considered blocking.
_BLOCKING_MODULES = {"subprocess", "socket", "requests", "urllib", "shutil"}

#: os.<attr> calls that spawn or block.
_BLOCKING_OS_ATTRS = {"system", "popen", "wait", "waitpid"}

#: Bare names that block.
_BLOCKING_NAMES = {
    "open": "file I/O inside a sim process; stage data before sim.run()",
    "input": "console input blocks the interpreter",
}


class ProcBlockingCallRule(_ProcRule):
    """PROC002: wall-clock/blocking calls inside sim generators."""

    rule_id = "PROC002"
    description = "sim processes must not block the interpreter"

    def check_generator(
        self, ctx: ModuleContext, func: ast.FunctionDef
    ) -> Iterator[Finding]:
        for node in _own_nodes(func):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            if isinstance(callee, ast.Name):
                reason = _BLOCKING_NAMES.get(callee.id)
                if reason is not None:
                    yield self.finding(
                        ctx, node, f"{callee.id}() in a sim process: {reason}"
                    )
                continue
            if not isinstance(callee, ast.Attribute):
                continue
            receiver = callee.value
            receiver_name = receiver.id if isinstance(receiver, ast.Name) else None
            if callee.attr in _BLOCKING_ATTRS and receiver_name != "self":
                yield self.finding(
                    ctx,
                    node,
                    f".{callee.attr}() in a sim process: "
                    f"{_BLOCKING_ATTRS[callee.attr]}",
                )
            elif receiver_name in _BLOCKING_MODULES:
                yield self.finding(
                    ctx,
                    node,
                    f"{receiver_name}.{callee.attr}() in a sim process blocks "
                    "the interpreter; move real I/O outside the simulation",
                )
            elif receiver_name == "os" and callee.attr in _BLOCKING_OS_ATTRS:
                yield self.finding(
                    ctx,
                    node,
                    f"os.{callee.attr}() in a sim process blocks the "
                    "interpreter; move real I/O outside the simulation",
                )


#: Callback-registration shapes: <x>.callbacks.append(fn),
#: <x>.add_callback(fn), sim.call_at(t, fn) / sim.call_in(dt, fn) /
#: sim.defer(dt, fn).
_REGISTER_ATTRS = {"add_callback"}
_SCHEDULE_ATTRS = {"call_at", "call_in", "defer"}

#: Mutating method names on enclosing-scope containers.
_MUTATING_METHODS = {
    "append",
    "extend",
    "add",
    "update",
    "pop",
    "popleft",
    "clear",
    "remove",
    "insert",
    "setdefault",
}


def _callback_argument(node: ast.Call) -> Optional[str]:
    """Name of the function handed to a callback-registration call."""
    func = node.func
    candidates: List[ast.expr] = []
    if isinstance(func, ast.Attribute):
        if func.attr == "append" and isinstance(func.value, ast.Attribute):
            if func.value.attr == "callbacks" and node.args:
                candidates.append(node.args[0])
        elif func.attr in _REGISTER_ATTRS and node.args:
            candidates.append(node.args[0])
        elif func.attr in _SCHEDULE_ATTRS and len(node.args) >= 2:
            candidates.append(node.args[1])
    for candidate in candidates:
        if isinstance(candidate, ast.Name):
            return candidate.id
    return None


def _mutated_enclosing_names(
    nested: ast.FunctionDef, enclosing_locals: Set[str]
) -> List[str]:
    """Enclosing-scope names the nested callback mutates."""
    own_locals: Set[str] = {
        arg.arg
        for arg in (
            nested.args.posonlyargs + nested.args.args + nested.args.kwonlyargs
        )
    }
    nonlocals: Set[str] = set()
    mutated: List[str] = []
    for node in _own_nodes(nested):
        if isinstance(node, ast.Nonlocal):
            nonlocals.update(node.names)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name):
                        own_locals.add(name_node.id)
    for node in _own_nodes(nested):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    mutated.append(f"self.{target.attr}")
                elif isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    name = target.value.id
                    if name in enclosing_locals and name not in own_locals:
                        mutated.append(name)
                elif isinstance(target, ast.Name) and target.id in nonlocals:
                    mutated.append(target.id)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATING_METHODS and isinstance(
                node.func.value, ast.Name
            ):
                name = node.func.value.id
                if name in enclosing_locals and name not in own_locals:
                    mutated.append(name)
    return mutated


class ProcCallbackMutationRule(_ProcRule):
    """PROC003: event callbacks mutating shared state after yield."""

    rule_id = "PROC003"
    description = "event callbacks should not mutate enclosing shared state"
    severity = Severity.WARNING

    def check_generator(
        self, ctx: ModuleContext, func: ast.FunctionDef
    ) -> Iterator[Finding]:
        nested: dict[str, ast.FunctionDef] = {}
        enclosing_locals: Set[str] = {
            arg.arg
            for arg in (
                func.args.posonlyargs + func.args.args + func.args.kwonlyargs
            )
        }
        for node in _own_nodes(func):
            if isinstance(node, ast.FunctionDef):
                nested[node.name] = node
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        enclosing_locals.add(target.id)
        if not nested:
            return
        for node in _own_nodes(func):
            if not isinstance(node, ast.Call):
                continue
            callback_name = _callback_argument(node)
            if callback_name is None or callback_name not in nested:
                continue
            mutated = _mutated_enclosing_names(
                nested[callback_name], enclosing_locals
            )
            if mutated:
                listed = ", ".join(sorted(set(mutated)))
                yield self.finding(
                    ctx,
                    node,
                    f"callback {callback_name!r} mutates shared state "
                    f"({listed}) at an unpredictable point in event order; "
                    "communicate through an Event or Store instead",
                )


def _is_broad_exception(node: Optional[ast.expr]) -> bool:
    if node is None:
        return True  # bare except
    if isinstance(node, ast.Name):
        return node.id in {"Exception", "BaseException"}
    if isinstance(node, ast.Attribute):
        return node.attr in {"Exception", "BaseException"}
    if isinstance(node, ast.Tuple):
        return any(_is_broad_exception(elt) for elt in node.elts)
    return False


def _names_interrupt(node: Optional[ast.expr]) -> bool:
    if node is None:
        return False
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id == "Interrupt":
            return True
        if isinstance(sub, ast.Attribute) and sub.attr == "Interrupt":
            return True
    return False


def _reraises(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            if node.exc is None:
                return True
            if handler.name is not None:
                exc = node.exc
                if isinstance(exc, ast.Name) and exc.id == handler.name:
                    return True
                # ``raise Wrapped(...) from exc`` keeps the interrupt
                # visible on the chain but still swallows it for the
                # kernel; only a true re-raise counts.
    return False


class ProcBroadExceptRule(_ProcRule):
    """PROC004: broad except may swallow kernel Interrupts."""

    rule_id = "PROC004"
    description = "broad except in a sim process swallows Interrupt"

    def check_generator(
        self, ctx: ModuleContext, func: ast.FunctionDef
    ) -> Iterator[Finding]:
        for node in _own_nodes(func):
            if not isinstance(node, ast.Try):
                continue
            handled_interrupt = any(
                _names_interrupt(handler.type) for handler in node.handlers
            )
            for handler in node.handlers:
                if not _is_broad_exception(handler.type):
                    continue
                if _names_interrupt(handler.type):
                    continue
                if handled_interrupt or _reraises(handler):
                    continue
                yield self.finding(
                    ctx,
                    handler,
                    "broad except in a sim process swallows Interrupt "
                    "(it derives from Exception); re-raise Interrupt first "
                    "or narrow the handler",
                )


PROC_RULES: Tuple[Rule, ...] = (
    ProcLeakedAcquireRule(),
    ProcBlockingCallRule(),
    ProcCallbackMutationRule(),
    ProcBroadExceptRule(),
)
