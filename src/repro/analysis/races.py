"""Same-timestamp race detection for the discrete-event kernel.

The kernel orders events by ``(time, priority, seq)``.  When two events
share a ``(time, priority)`` bucket, their relative order is decided
only by the insertion sequence number — deterministic for replay, but a
*logical* race if both events touch the same shared resource with at
least one writer: the simulated outcome then depends on scheduling
accidents (who happened to schedule first) rather than modelled
causality.  This is the DES analogue of a happens-before race.

The detector is driven by the kernel: ``begin_event``/``end_event``
bracket each processed event, and instrumented resources (disk command
queues, USB enumeration queues, coordination znodes, LSE overlays) call
:meth:`RaceDetector.touch` while their callbacks run.  Only stdlib is
used here so :mod:`repro.sim.kernel` can import it lazily without a
dependency cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["Race", "RaceDetector"]


@dataclass(frozen=True)
class Race:
    """Two or more same-bucket events conflicting on one resource."""

    time: float
    priority: int
    resource: str
    seqs: Tuple[int, ...]  # insertion sequence numbers of the events
    writes: int  # how many of the touches were writes
    # Human-readable event descriptions aligned with ``seqs`` (e.g.
    # ``"resume:writer"``), supplied by the kernel via ``begin_event``.
    # Empty when the detector is driven without labels.
    labels: Tuple[str, ...] = ()

    def render(self) -> str:
        if self.labels:
            events = ", ".join(
                f"{seq}={label}" if label else str(seq)
                for seq, label in zip(self.seqs, self.labels)
            )
        else:
            events = ", ".join(map(str, self.seqs))
        return (
            f"t={self.time:g} prio={self.priority}: {len(self.seqs)} events "
            f"(seq {events}) touched {self.resource!r} "
            f"with {self.writes} write(s); order decided only by insertion"
        )


class RaceDetector:
    """Groups processed events into ``(time, priority)`` buckets and
    reports conflicting shared-resource touches within a bucket."""

    def __init__(self) -> None:
        self._bucket_key: Optional[Tuple[float, int]] = None
        # Per event in the current bucket: (seq, label, resource -> any_write).
        self._bucket: List[Tuple[int, str, Dict[str, bool]]] = []
        self._current: Optional[Tuple[int, str, Dict[str, bool]]] = None
        self.races: List[Race] = []

    # -- kernel hooks -------------------------------------------------------

    def begin_event(self, time: float, priority: int, seq: int, label: str = "") -> None:
        key = (time, priority)
        if key != self._bucket_key:
            self._flush()
            self._bucket_key = key
        self._current = (seq, label, {})

    def touch(self, resource: str, write: bool = True) -> None:
        """Record that the currently running event touched ``resource``."""
        if self._current is None:
            return  # touch from setup code outside event processing
        touches = self._current[2]
        touches[resource] = touches.get(resource, False) or write

    def end_event(self) -> None:
        if self._current is not None:
            self._bucket.append(self._current)
            self._current = None

    # -- analysis -----------------------------------------------------------

    @staticmethod
    def _analyze(
        key: Tuple[float, int], bucket: List[Tuple[int, str, Dict[str, bool]]]
    ) -> List[Race]:
        if len(bucket) < 2:
            return []
        by_resource: Dict[str, List[Tuple[int, str, bool]]] = {}
        for seq, label, touches in bucket:
            for resource, wrote in touches.items():
                by_resource.setdefault(resource, []).append((seq, label, wrote))
        races: List[Race] = []
        for resource in sorted(by_resource):
            touches_list = by_resource[resource]
            writes = sum(1 for _, _, wrote in touches_list if wrote)
            # Read/read overlap is benign; a conflict needs >= 2 events
            # and at least one writer.
            if len(touches_list) >= 2 and writes >= 1:
                races.append(
                    Race(
                        time=key[0],
                        priority=key[1],
                        resource=resource,
                        seqs=tuple(seq for seq, _, _ in touches_list),
                        writes=writes,
                        labels=tuple(label for _, label, _ in touches_list),
                    )
                )
        return races

    def _flush(self) -> None:
        bucket, self._bucket = self._bucket, []
        if self._bucket_key is not None:
            self.races.extend(self._analyze(self._bucket_key, bucket))

    def report(self) -> List[Race]:
        """All races so far, including the still-open bucket.

        Non-destructive: the open bucket is analyzed on a copy so the
        detector keeps accumulating if the simulation continues.
        """
        pending: List[Race] = []
        if self._bucket_key is not None and self._bucket:
            open_bucket = list(self._bucket)
            if self._current is not None:
                open_bucket.append(self._current)
            pending = self._analyze(self._bucket_key, open_bucket)
        return self.races + pending
