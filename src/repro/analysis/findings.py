"""Structured results of the determinism linter.

A :class:`Finding` is one determinism hazard at a specific source
location; a :class:`Suppression` records a finding that was silenced by
an inline ``# repro-lint: ignore[rule-id]`` comment so the audit trail
of what is being waived stays visible.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Finding", "Severity", "Suppression"]


class Severity(enum.Enum):
    """How strongly a finding threatens replay determinism."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, order=True)
class Finding:
    """One determinism hazard at ``file:line``."""

    file: str
    line: int
    rule_id: str
    message: str
    severity: Severity = Severity.ERROR

    def render(self) -> str:
        return f"{self.file}:{self.line}: {self.rule_id} [{self.severity.value}] {self.message}"


@dataclass(frozen=True, order=True)
class Suppression:
    """A finding silenced by an inline suppression comment."""

    file: str
    line: int
    rule_id: str
    message: str

    def render(self) -> str:
        return f"{self.file}:{self.line}: suppressed {self.rule_id} — {self.message}"
