"""Command-line interface: run experiments and inspect the models.

Usage::

    python -m repro list                 # available experiments
    python -m repro run table2           # one experiment's report
    python -m repro run all              # everything (slow)
    python -m repro cost                 # Table I quick view
    python -m repro validate --hosts 4 --disks-per-leaf 2
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main"]


def _cmd_list(_args: argparse.Namespace) -> int:
    from repro.experiments import ALL_EXPERIMENTS

    print("Available experiments:")
    for name, module in ALL_EXPERIMENTS.items():
        summary = (module.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:<14} {summary}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments import ALL_EXPERIMENTS

    names = list(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    for name in names:
        print(f"=== {name} ===")
        print(ALL_EXPERIMENTS[name].main())
        print()
    return 0


def _cmd_cost(_args: argparse.Namespace) -> int:
    from repro.cost import render_cost_table

    print(render_cost_table())
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.fabric import ring_fabric, validate_fabric

    fabric = ring_fabric(
        num_hosts=args.hosts, disks_per_leaf=args.disks_per_leaf, fan_in=args.fan_in
    )
    report = validate_fabric(fabric, require_full_reachability=args.hosts <= 4)
    quirk = validate_fabric(
        fabric,
        require_full_reachability=args.hosts <= 4,
        enforce_intel_quirk=True,
    )
    print(f"fabric: {fabric.name}")
    print(f"  disks={len(fabric.disks)} hubs={len(fabric.hubs)} "
          f"switches={len(fabric.switches)} ports={len(fabric.host_ports)}")
    print(f"  valid: {report.ok}")
    for error in report.errors:
        print(f"  ERROR: {error}")
    for warning in quirk.warnings:
        print(f"  note: {warning}")
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="UStore (ICDCS 2015) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments").set_defaults(fn=_cmd_list)

    run_parser = sub.add_parser("run", help="run an experiment (or 'all')")
    run_parser.add_argument("experiment")
    run_parser.set_defaults(fn=_cmd_run)

    sub.add_parser("cost", help="print Table I").set_defaults(fn=_cmd_cost)

    validate_parser = sub.add_parser("validate", help="validate a ring fabric design")
    validate_parser.add_argument("--hosts", type=int, default=4)
    validate_parser.add_argument("--disks-per-leaf", type=int, default=2)
    validate_parser.add_argument("--fan-in", type=int, default=4)
    validate_parser.set_defaults(fn=_cmd_validate)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
