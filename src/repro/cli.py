"""Command-line interface: run experiments and inspect the models.

Usage::

    python -m repro list                 # available experiments
    python -m repro run table2           # one experiment's report
    python -m repro run figure5 --json   # versioned ExperimentResult JSON
    python -m repro run all              # everything (slow)
    python -m repro cost                 # Table I quick view
    python -m repro validate --hosts 4 --disks-per-leaf 2
    python -m repro lint [paths...]      # determinism linter (src/repro)
    python -m repro check-determinism    # replay + race-detector + metrics check
    python -m repro bench alloc_scale    # wall-clock benchmark suite
    python -m repro run gateway_slo      # request tier: batch vs FIFO
    python -m repro bench gateway        # gateway offered-load sweep
    python -m repro trace                # traced run + latency attribution
    python -m repro trace --format chrome --out trace.json  # Perfetto file
    python -m repro campaign figure5 --seeds 1,2,3,4 \
        --set settle_seconds=0.0,2.0 --workers 4  # cached sweep grid

``run``, ``validate``, ``check-determinism`` and ``bench`` share the
same ``--json`` / ``--seed`` flags: ``--json`` switches the command's
output to a machine-readable document, ``--seed`` overrides the RNG
seed of any experiment that declares one (others run with their
defaults).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

__all__ = ["main"]


def _add_common_flags(parser: argparse.ArgumentParser) -> None:
    """The shared ``--json`` / ``--seed`` builder for run/validate/check."""
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit a machine-readable JSON document instead of a report",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the RNG seed of experiments that declare one",
    )


def _experiment_overrides(experiment, seed: Optional[int]) -> Dict[str, int]:
    """Build parameter overrides, passing ``seed`` only where declared."""
    if seed is not None and "seed" in experiment.params:
        return {"seed": seed}
    return {}


def _cmd_list(_args: argparse.Namespace) -> int:
    from repro.experiments import EXPERIMENTS

    print("Available experiments:")
    for name in EXPERIMENTS.names():
        experiment = EXPERIMENTS.get(name)
        print(f"  {name:<14} [{experiment.paper_ref}] {experiment.description}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments import EXPERIMENTS

    names = EXPERIMENTS.names() if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    for name in names:
        experiment = EXPERIMENTS.get(name)
        result = experiment.run(**_experiment_overrides(experiment, args.seed))
        if args.as_json:
            print(result.to_json())
        else:
            print(f"=== {name} ===")
            print(result.render())
            print()
    return 0


def _cmd_cost(_args: argparse.Namespace) -> int:
    from repro.cost import render_cost_table

    print(render_cost_table())
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.fabric import ring_fabric, validate_fabric

    fabric = ring_fabric(
        num_hosts=args.hosts, disks_per_leaf=args.disks_per_leaf, fan_in=args.fan_in
    )
    report = validate_fabric(fabric, require_full_reachability=args.hosts <= 4)
    quirk = validate_fabric(
        fabric,
        require_full_reachability=args.hosts <= 4,
        enforce_intel_quirk=True,
    )
    if args.as_json:
        print(
            json.dumps(
                {
                    "fabric": fabric.name,
                    "disks": len(fabric.disks),
                    "hubs": len(fabric.hubs),
                    "switches": len(fabric.switches),
                    "host_ports": len(fabric.host_ports),
                    "valid": report.ok,
                    "errors": list(report.errors),
                    "notes": list(quirk.warnings),
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(f"fabric: {fabric.name}")
        print(f"  disks={len(fabric.disks)} hubs={len(fabric.hubs)} "
              f"switches={len(fabric.switches)} ports={len(fabric.host_ports)}")
        print(f"  valid: {report.ok}")
        for error in report.errors:
            print(f"  ERROR: {error}")
        for warning in quirk.warnings:
            print(f"  note: {warning}")
    return 0 if report.ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import Linter

    paths = args.paths
    if not paths:
        import repro

        paths = [str(Path(repro.__file__).parent)]
    report = Linter().lint_paths(paths)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render(audit=args.audit))
    return 0 if report.ok else 1


def _cmd_check_determinism(args: argparse.Namespace) -> int:
    """Run the replay-sensitive experiments once under the ``heap``
    reference scheduler and once under the ``calendar`` scheduler with
    the race detector and the metrics registry armed; compare
    execution-order digests and the exported metric dumps byte for
    byte.  Because the two runs use different event-queue
    implementations, a match certifies both replay determinism and the
    calendar queue's ordering contract in one pass.  The gateway_slo
    leg also runs with request tracing armed and compares the canonical
    trace JSONL export byte for byte.  A final leg runs *every*
    registered experiment under both schedulers and compares the full
    result JSON documents."""
    from repro.experiments import (
        EXPERIMENTS,
        figure5,
        gateway_slo,
        reliability,
        shardstore_small_objects,
        tiering_staging,
    )
    from repro.obs import (
        MetricsRegistry,
        RequestTracer,
        export_json,
        export_trace_jsonl,
    )
    from repro.sim import EventDigest, use_scheduler

    trace_dumps: List[str] = []
    energy_dumps: List[str] = []

    def run_figure5(**kwargs):
        if args.seed is not None:
            kwargs["seed"] = args.seed
        return figure5.run(**kwargs)

    def run_gateway_slo(**kwargs):
        if args.seed is not None:
            kwargs["seed"] = args.seed
        races: List = []
        chunks: List[str] = []
        energy_chunks: List[str] = []
        for scheduler in ("batch", "fifo"):
            tracer = RequestTracer()
            summary = gateway_slo.run_point(
                scheduler, tracer=tracer, energy=True, **kwargs
            )
            races.extend(summary.pop("races", []))
            chunks.append(export_trace_jsonl(tracer.completed))
            # Canonical energy-ledger export: every account, disk book,
            # per-request charge and spin-up blame, byte-stable.
            energy_chunks.append(
                json.dumps(
                    summary["energy"]["export"],
                    sort_keys=True,
                    separators=(",", ":"),
                )
            )
        trace_dumps.append("\n".join(chunks))
        energy_dumps.append("\n".join(energy_chunks))
        return {"races": races}

    def run_shardstore(**kwargs):
        if args.seed is not None:
            kwargs["seed"] = args.seed
        return shardstore_small_objects.run(
            num_objects=400, num_gets=80, **kwargs
        )

    def run_tiering(**kwargs):
        if args.seed is not None:
            kwargs["seed"] = args.seed
        return tiering_staging.run(
            num_writes=60,
            num_cold_reads=16,
            write_seconds=240.0,
            total_seconds=520.0,
            **kwargs,
        )

    checks = {
        "figure5": run_figure5,
        "reliability": reliability.run,
        "gateway_slo": run_gateway_slo,
        "shardstore_small_objects": run_shardstore,
        "tiering_staging": run_tiering,
    }
    failures = 0
    report: Dict[str, Dict] = {}
    for name, runner in checks.items():
        digests: List[str] = []
        dumps: List[str] = []
        races: List = []
        for scheduler_name in ("heap", "calendar"):
            digest = EventDigest()
            registry = MetricsRegistry()
            with use_scheduler(scheduler_name):
                result = runner(
                    detect_races=True, event_digest=digest, metrics=registry
                )
            digests.append(digest.hexdigest())
            dumps.append(export_json(registry))
            races = result.get("races", [])
        identical = digests[0] == digests[1]
        metrics_identical = dumps[0] == dumps[1]
        report[name] = {
            "digest": digests[0],
            "digest_identical": identical,
            "metrics_identical": metrics_identical,
            "races": len(races),
        }
        trace_identical = True
        energy_identical = True
        if name == "gateway_slo" and len(trace_dumps) == 2:
            trace_identical = trace_dumps[0] == trace_dumps[1]
            report[name]["trace_identical"] = trace_identical
        if name == "gateway_slo" and len(energy_dumps) == 2:
            energy_identical = energy_dumps[0] == energy_dumps[1]
            report[name]["energy_identical"] = energy_identical
        if not args.as_json:
            print(f"{name}:")
            print(f"  replay digest: {digests[0][:16]}…  "
                  f"{'identical heap vs calendar' if identical else 'MISMATCH: ' + digests[1][:16]}")
            print(f"  metric dump: "
                  f"{'byte-identical heap vs calendar' if metrics_identical else 'MISMATCH'}")
            if "trace_identical" in report[name]:
                print(f"  trace export: "
                      f"{'byte-identical heap vs calendar' if trace_identical else 'MISMATCH'}")
            if "energy_identical" in report[name]:
                print(f"  energy export: "
                      f"{'byte-identical heap vs calendar' if energy_identical else 'MISMATCH'}")
            print(f"  same-timestamp races: {len(races)}")
            for race in races:
                print(f"    {race.render()}")
        if (
            not identical
            or not metrics_identical
            or not trace_identical
            or not energy_identical
            or races
        ):
            failures += 1

    scheduler_report: Dict[str, bool] = {}
    for name in EXPERIMENTS.names():
        experiment = EXPERIMENTS.get(name)
        overrides = _experiment_overrides(experiment, args.seed)
        documents: List[str] = []
        for scheduler_name in ("heap", "calendar"):
            with use_scheduler(scheduler_name):
                documents.append(experiment.run(**overrides).to_json())
        scheduler_report[name] = documents[0] == documents[1]
    report["scheduler_equivalence"] = scheduler_report
    equivalent = all(scheduler_report.values())
    if not equivalent:
        failures += 1
    if not args.as_json:
        mismatched = sorted(n for n, ok in scheduler_report.items() if not ok)
        print("scheduler equivalence (heap vs calendar, all experiments):")
        print(f"  {len(scheduler_report)} experiments: "
              + ("result JSON byte-identical"
                 if equivalent else f"MISMATCH in {', '.join(mismatched)}"))
    if args.as_json:
        print(json.dumps({"checks": report, "ok": failures == 0},
                         indent=2, sort_keys=True))
    return 0 if failures == 0 else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    """Run one traced gateway_slo point and export/summarize the traces."""
    from repro.experiments import gateway_slo
    from repro.obs import (
        CriticalPathAnalyzer,
        RequestTracer,
        export_chrome_trace,
        export_trace_jsonl,
    )

    tracer = RequestTracer()
    summary = gateway_slo.run_point(
        args.scheduler,
        seed=args.seed if args.seed is not None else 11,
        duration=args.duration,
        tracer=tracer,
    )
    requests = [ctx for ctx in tracer.completed if ctx.kind == "request"]
    aggregate = CriticalPathAnalyzer().aggregate(requests)
    if args.format == "jsonl":
        output = export_trace_jsonl(tracer.completed)
    elif args.format == "chrome":
        output = export_chrome_trace(tracer.completed, tracer.instants)
    elif args.as_json:
        output = json.dumps(
            {
                "params": {
                    "scheduler": args.scheduler,
                    "seed": args.seed if args.seed is not None else 11,
                    "duration": args.duration,
                },
                "completed": summary["completed"],
                "traces": len(tracer.completed),
                "attribution": aggregate,
                "slo": summary["trace"]["slo"],
                "flight_dumps": summary["trace"]["flight_dumps"],
            },
            sort_keys=True,
            separators=(",", ":"),
        )
    else:
        lines = [
            f"Traced gateway run: scheduler={args.scheduler} "
            f"duration={args.duration}s",
            f"  requests completed: {summary['completed']}  "
            f"traces: {len(tracer.completed)}  "
            f"instants: {len(tracer.instants)}",
            f"  attribution identity failures: "
            f"{aggregate['identity_failures']}",
            "",
            "Latency attribution (share of traced request time):",
        ]
        shares = aggregate["shares"]
        for component in sorted(shares, key=lambda c: -shares[c]):
            if shares[component] <= 0.0:
                continue
            lines.append(f"  {component:<18} {shares[component]:7.2%}")
        slo = summary["trace"]["slo"]
        lines.append("")
        lines.append("SLO burn rates:")
        for tenant in sorted(slo["tenants"]):
            state = slo["tenants"][tenant]
            lines.append(
                f"  {tenant:<12} objective={state['objective']:.0%} "
                f"burn={state['burn_rate']:.2f} "
                f"{'FIRING' if state['firing'] else 'ok'} "
                f"alerts={state['alerts']}"
            )
        output = "\n".join(lines)
    if args.out is not None:
        from pathlib import Path

        Path(args.out).write_text(output + "\n")
        if not args.as_json:
            print(f"wrote {args.format} export to {args.out}")
    else:
        print(output)
    return 0


def _cmd_energy(args: argparse.Namespace) -> int:
    """Run one energy-ledgered gateway_slo point and report the books."""
    from repro.experiments import gateway_slo

    summary = gateway_slo.run_point(
        args.scheduler,
        seed=args.seed if args.seed is not None else 11,
        duration=args.duration,
        energy=True,
    )
    energy = summary["energy"]
    identity = energy["identity"]
    if args.as_json:
        output = json.dumps(
            {
                "params": {
                    "scheduler": args.scheduler,
                    "seed": args.seed if args.seed is not None else 11,
                    "duration": args.duration,
                },
                "identity": identity,
                "accounts": energy["accounts"],
                "tiers": energy["tiers"],
                "export": energy["export"],
            },
            sort_keys=True,
            separators=(",", ":"),
        )
    else:
        wall = identity["wall_joules"]
        lines = [
            f"Energy attribution: gateway_slo scheduler={args.scheduler} "
            f"duration={args.duration}s",
            f"  wall energy: {wall:.3f} J   "
            f"attributed: {identity['attributed_joules']:.3f} J   "
            f"residual: {identity['residual']:.9f} J "
            f"({'conserved' if identity['conserved'] else 'VIOLATED'})",
            "",
            "Accounts (wall joules):",
        ]
        accounts = energy["accounts"]
        for account in sorted(accounts, key=lambda a: -accounts[a]):
            share = accounts[account] / wall if wall else 0.0
            lines.append(f"  {account:<20} {accounts[account]:12.3f} J {share:7.2%}")
        lines.append("")
        lines.append("Tiers (wall joules by spin-state bucket):")
        for tier, book in sorted(energy["tiers"].items()):
            lines.append(
                f"  {tier:<20} active={book['active']:.1f} "
                f"spinup={book['spinup']:.1f} idle={book['idle']:.1f} "
                f"standby={book['standby']:.1f} total={book['total']:.1f}"
            )
        export = energy["export"]
        blames = export["spin_up_blames"]
        lines.append("")
        lines.append(
            f"Spin-ups blamed: {len(blames)} "
            f"(requests charged: {energy['requests_charged']})"
        )
        requests = export["requests"]
        top = sorted(requests, key=lambda t: -requests[t])[:5]
        for trace_id in top:
            lines.append(f"  trace {trace_id}: {requests[trace_id]:.1f} J")
        output = "\n".join(lines)
    print(output)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run the benchmark suite (same engine as scripts/run_benchmarks.py)."""
    from pathlib import Path

    from repro.benchmarks import append_record, available_benchmarks, run_benchmark

    names = args.benchmarks or ["alloc_scale", "kernel_throughput"]
    known = set(available_benchmarks())
    unknown = [n for n in names if n not in known]
    if unknown:
        print(f"unknown benchmark(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(sorted(known))}", file=sys.stderr)
        return 2
    records = []
    for name in names:
        record = run_benchmark(
            name,
            repeat=max(1, args.repeat),
            seed=args.seed if args.seed is not None else 42,
            smoke=args.smoke,
        )
        records.append(record)
        if args.out_dir is not None:
            append_record(Path(args.out_dir), record)
        if not args.as_json:
            print(f"{name}: {record['wall_seconds']}s wall")
            for size in record.get("sizes", []):
                print(
                    f"  {size['disks']} disks: opt {size['opt_warm_seconds']}s "
                    f"(cold {size['opt_cold_seconds']}s), naive "
                    f"{size['naive_seconds']}s, speedup {size['speedup_cold']}x "
                    f"cold / {size['speedup_warm']}x warm"
                )
            if "events_per_second_fast" in record:
                print(
                    f"  kernel: {record['events_per_second_fast']:.0f} ev/s fast, "
                    f"{record['events_per_second_eventpath']:.0f} ev/s event path, "
                    f"{record['events_per_second_instrumented']:.0f} ev/s "
                    f"instrumented ({record['fast_path_uplift']}x uplift)"
                )
            for point in record.get("scheduler_comparison", []):
                print(
                    f"  fan {point['fan_out']:>4}: "
                    f"heap {point['heap_events_per_second']:.0f} ev/s, "
                    f"calendar {point['calendar_events_per_second']:.0f} ev/s "
                    f"({point['calendar_uplift']}x)"
                )
            for point in record.get("sweep", []):
                print(
                    f"  load x{point['load_scale']} {point['scheduler']}: "
                    f"{point['completed']} done, {point['spin_ups']} spin-ups, "
                    f"p99 {point['latency_p99']}s, "
                    f"{point['energy_joules']/1000.0:.1f} kJ"
                )
    if args.as_json:
        print(json.dumps(records, indent=2, sort_keys=True))
    return 0


def _parse_sweep_values(raw: str) -> List[object]:
    """``"0.0,2.0"`` → ``[0.0, 2.0]`` (JSON scalars, else strings)."""
    values: List[object] = []
    for chunk in raw.split(","):
        chunk = chunk.strip()
        try:
            values.append(json.loads(chunk))
        except ValueError:
            values.append(chunk)
    return values


def _cmd_campaign(args: argparse.Namespace) -> int:
    """Fan one experiment over a seed × sweep grid with cached cells."""
    from pathlib import Path

    from repro.experiments.campaign import (
        CampaignError,
        CampaignSpec,
        run_campaign,
    )

    sweep: Dict[str, List[object]] = {}
    for assignment in args.set or []:
        name, _, raw = assignment.partition("=")
        if not _ or not name or not raw:
            print(f"bad --set {assignment!r}; expected name=v1,v2,…",
                  file=sys.stderr)
            return 2
        if name in sweep:
            print(f"duplicate --set for {name!r}", file=sys.stderr)
            return 2
        sweep[name] = _parse_sweep_values(raw)
    seeds = [int(s) for s in args.seeds.split(",")] if args.seeds else []
    try:
        spec = CampaignSpec.build(args.experiment, seeds=seeds, sweep=sweep)
        report = run_campaign(
            spec,
            cache_dir=Path(args.cache_dir),
            workers=args.workers,
            refresh=args.refresh,
        )
    except CampaignError as exc:
        print(f"campaign error: {exc}", file=sys.stderr)
        return 2
    if args.as_json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    anchors_ok = all(
        all((outcome.result.get("anchors") or {}).values())
        for outcome in report.outcomes
    )
    return 0 if anchors_ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="UStore (ICDCS 2015) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments").set_defaults(fn=_cmd_list)

    run_parser = sub.add_parser("run", help="run an experiment (or 'all')")
    run_parser.add_argument("experiment")
    _add_common_flags(run_parser)
    run_parser.set_defaults(fn=_cmd_run)

    sub.add_parser("cost", help="print Table I").set_defaults(fn=_cmd_cost)

    validate_parser = sub.add_parser("validate", help="validate a ring fabric design")
    validate_parser.add_argument("--hosts", type=int, default=4)
    validate_parser.add_argument("--disks-per-leaf", type=int, default=2)
    validate_parser.add_argument("--fan-in", type=int, default=4)
    _add_common_flags(validate_parser)
    validate_parser.set_defaults(fn=_cmd_validate)

    lint_parser = sub.add_parser(
        "lint", help="run the determinism linter (default: the repro package)"
    )
    lint_parser.add_argument("paths", nargs="*")
    lint_parser.add_argument(
        "--audit", action="store_true", help="also list inline suppressions"
    )
    lint_parser.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )
    lint_parser.set_defaults(fn=_cmd_lint)

    check_parser = sub.add_parser(
        "check-determinism",
        help="replay experiments twice; compare digests, metric dumps and races",
    )
    _add_common_flags(check_parser)
    check_parser.set_defaults(fn=_cmd_check_determinism)

    trace_parser = sub.add_parser(
        "trace",
        help="run one traced gateway point; print attribution or export traces",
    )
    trace_parser.add_argument(
        "--scheduler",
        choices=("batch", "fifo"),
        default="batch",
        help="gateway scheduler for the traced run",
    )
    trace_parser.add_argument(
        "--duration",
        type=float,
        default=60.0,
        help="seconds of offered open-loop traffic",
    )
    trace_parser.add_argument(
        "--format",
        choices=("summary", "jsonl", "chrome"),
        default="summary",
        help="summary report, canonical JSONL, or Chrome trace_event JSON",
    )
    trace_parser.add_argument(
        "--out",
        default=None,
        help="write the output to this file instead of stdout",
    )
    _add_common_flags(trace_parser)
    trace_parser.set_defaults(fn=_cmd_trace)

    energy_parser = sub.add_parser(
        "energy",
        help="run one energy-ledgered gateway point; print the joule books",
    )
    energy_parser.add_argument(
        "--scheduler",
        choices=("batch", "fifo"),
        default="batch",
        help="gateway scheduler for the metered run",
    )
    energy_parser.add_argument(
        "--duration",
        type=float,
        default=60.0,
        help="seconds of offered open-loop traffic",
    )
    _add_common_flags(energy_parser)
    energy_parser.set_defaults(fn=_cmd_energy)

    campaign_parser = sub.add_parser(
        "campaign",
        help="fan an experiment over a seed/sweep grid with cached cells",
    )
    campaign_parser.add_argument("experiment")
    campaign_parser.add_argument(
        "--seeds",
        default="",
        help="comma-separated seed list (experiment must declare 'seed')",
    )
    campaign_parser.add_argument(
        "--set",
        action="append",
        metavar="PARAM=V1,V2,…",
        help="sweep a declared parameter over comma-separated values "
             "(repeatable; cells are the cartesian product)",
    )
    campaign_parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes for uncached cells (<=1 runs inline)",
    )
    campaign_parser.add_argument(
        "--cache-dir",
        default=".campaigns",
        help="content-addressed result cache (default: .campaigns)",
    )
    campaign_parser.add_argument(
        "--refresh",
        action="store_true",
        help="ignore cached cells and recompute (entries are overwritten)",
    )
    campaign_parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the campaign report as JSON",
    )
    campaign_parser.set_defaults(fn=_cmd_campaign)

    bench_parser = sub.add_parser(
        "bench",
        help="run the wall-clock benchmark suite (alloc_scale, kernel_throughput, …)",
    )
    bench_parser.add_argument("benchmarks", nargs="*")
    bench_parser.add_argument(
        "--repeat", type=int, default=1, help="runs per benchmark (best wall time)"
    )
    bench_parser.add_argument(
        "--smoke",
        action="store_true",
        help="restrict scale sweeps to the smallest (16-disk) size",
    )
    bench_parser.add_argument(
        "--out-dir",
        default=None,
        help="also append records to BENCH_*.json files in this directory",
    )
    _add_common_flags(bench_parser)
    bench_parser.set_defaults(fn=_cmd_bench)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
