"""Command-line interface: run experiments and inspect the models.

Usage::

    python -m repro list                 # available experiments
    python -m repro run table2           # one experiment's report
    python -m repro run all              # everything (slow)
    python -m repro cost                 # Table I quick view
    python -m repro validate --hosts 4 --disks-per-leaf 2
    python -m repro lint [paths...]      # determinism linter (src/repro)
    python -m repro check-determinism    # replay + race-detector check
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main"]


def _cmd_list(_args: argparse.Namespace) -> int:
    from repro.experiments import ALL_EXPERIMENTS

    print("Available experiments:")
    for name, module in ALL_EXPERIMENTS.items():
        summary = (module.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:<14} {summary}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments import ALL_EXPERIMENTS

    names = list(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    for name in names:
        print(f"=== {name} ===")
        print(ALL_EXPERIMENTS[name].main())
        print()
    return 0


def _cmd_cost(_args: argparse.Namespace) -> int:
    from repro.cost import render_cost_table

    print(render_cost_table())
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.fabric import ring_fabric, validate_fabric

    fabric = ring_fabric(
        num_hosts=args.hosts, disks_per_leaf=args.disks_per_leaf, fan_in=args.fan_in
    )
    report = validate_fabric(fabric, require_full_reachability=args.hosts <= 4)
    quirk = validate_fabric(
        fabric,
        require_full_reachability=args.hosts <= 4,
        enforce_intel_quirk=True,
    )
    print(f"fabric: {fabric.name}")
    print(f"  disks={len(fabric.disks)} hubs={len(fabric.hubs)} "
          f"switches={len(fabric.switches)} ports={len(fabric.host_ports)}")
    print(f"  valid: {report.ok}")
    for error in report.errors:
        print(f"  ERROR: {error}")
    for warning in quirk.warnings:
        print(f"  note: {warning}")
    return 0 if report.ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import Linter

    paths = args.paths
    if not paths:
        import repro

        paths = [str(Path(repro.__file__).parent)]
    report = Linter().lint_paths(paths)
    print(report.render(audit=args.audit))
    return 0 if report.ok else 1


def _cmd_check_determinism(args: argparse.Namespace) -> int:
    """Run the replay-sensitive experiments twice with the race detector
    on and compare execution-order digests."""
    from repro.experiments import figure5, reliability
    from repro.sim import EventDigest

    checks = {"figure5": figure5.run, "reliability": reliability.run}
    failures = 0
    for name, runner in checks.items():
        digests = []
        races: List = []
        for _ in range(2):
            digest = EventDigest()
            result = runner(detect_races=True, event_digest=digest)
            digests.append(digest.hexdigest())
            races = result.get("races", [])
        identical = digests[0] == digests[1]
        print(f"{name}:")
        print(f"  replay digest: {digests[0][:16]}…  "
              f"{'identical across runs' if identical else 'MISMATCH: ' + digests[1][:16]}")
        print(f"  same-timestamp races: {len(races)}")
        for race in races:
            print(f"    {race.render()}")
        if not identical or races:
            failures += 1
    return 0 if failures == 0 else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="UStore (ICDCS 2015) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments").set_defaults(fn=_cmd_list)

    run_parser = sub.add_parser("run", help="run an experiment (or 'all')")
    run_parser.add_argument("experiment")
    run_parser.set_defaults(fn=_cmd_run)

    sub.add_parser("cost", help="print Table I").set_defaults(fn=_cmd_cost)

    validate_parser = sub.add_parser("validate", help="validate a ring fabric design")
    validate_parser.add_argument("--hosts", type=int, default=4)
    validate_parser.add_argument("--disks-per-leaf", type=int, default=2)
    validate_parser.add_argument("--fan-in", type=int, default=4)
    validate_parser.set_defaults(fn=_cmd_validate)

    lint_parser = sub.add_parser(
        "lint", help="run the determinism linter (default: the repro package)"
    )
    lint_parser.add_argument("paths", nargs="*")
    lint_parser.add_argument(
        "--audit", action="store_true", help="also list inline suppressions"
    )
    lint_parser.set_defaults(fn=_cmd_lint)

    sub.add_parser(
        "check-determinism",
        help="replay experiments twice and run the same-timestamp race detector",
    ).set_defaults(fn=_cmd_check_determinism)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
