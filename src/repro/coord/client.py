"""Client sessions against the coordination cluster.

A :class:`CoordSession` mirrors the ZooKeeper client the prototype's
hosts use: it discovers the current leader, keeps its session alive
with pings (so its ephemeral znodes survive), registers watches, and
transparently retries operations across leader failovers — including
re-registering its outstanding watches with a new leader, which is what
a real ZooKeeper client does on reconnect.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.coord.service import CoordConfig
from repro.net.network import Network
from repro.net.rpc import RemoteError, RpcClient, RpcTimeout
from repro.sim import Event, Simulator

__all__ = ["CoordSession", "SessionExpiredError"]


class SessionExpiredError(Exception):
    """The cluster expired this session (its ephemerals are gone)."""


class CoordSession:
    """One client's connection to the coordination cluster."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        address: str,
        servers: List[str],
        session_timeout: float = CoordConfig().session_timeout,
        ping_interval: Optional[float] = None,
    ):
        if not servers:
            raise ValueError("need at least one coordination server")
        self.sim = sim
        self.network = network
        self.address = address
        self.servers = list(servers)
        self.session_id = f"session:{address}"
        self.session_timeout = session_timeout
        self.ping_interval = ping_interval or session_timeout / 4
        self.rpc = RpcClient(sim, network, address)
        self._leader_guess: Optional[str] = servers[0]
        self._watch_callbacks: Dict[Tuple[str, str], List[Callable[[str, str], None]]] = {}
        self.started = False
        self.expired = False
        sim.process(self._watch_event_loop())

    # -- lifecycle --------------------------------------------------------

    def start(self) -> Generator[Event, None, None]:
        """Create the session on the cluster and start keepalives."""
        yield from self._op(["create_session", self.session_id, self.session_timeout])
        self.started = True
        self.sim.process(self._ping_loop())

    def _ping_loop(self) -> Generator[Event, None, None]:
        while not self.expired:
            yield self.sim.timeout(self.ping_interval)
            try:
                yield from self._leader_call(
                    "coord.ping_session", self.session_id, retries=2
                )
            except SessionExpiredError:
                return  # ephemerals are gone; the owner must start anew
            except (RpcTimeout, RemoteError):
                # Keep trying; the expirer decides when we are gone.
                continue

    # -- leader discovery -----------------------------------------------------

    def _candidates(self) -> List[str]:
        ordered = []
        if self._leader_guess:
            ordered.append(self._leader_guess)
        ordered.extend(s for s in self.servers if s not in ordered)
        return ordered

    def _leader_call(
        self, method: str, *args: Any, retries: int = 6, timeout: float = 1.0
    ) -> Generator[Event, None, Any]:
        last_error: Optional[Exception] = None
        for _ in range(retries):
            for server in self._candidates():
                try:
                    result = yield from self.rpc.call(
                        server, method, *args, timeout=timeout
                    )
                    self._leader_guess = server
                    return result
                except RpcTimeout as exc:
                    last_error = exc
                    continue
                except RemoteError as exc:
                    message = str(exc)
                    if "NotLeader:" in message:
                        hint = message.rsplit("NotLeader:", 1)[1].strip()
                        self._leader_guess = hint if hint in self.servers else None
                        last_error = exc
                        continue
                    if "unknown session" in message:
                        self.expired = True
                        raise SessionExpiredError(self.session_id) from exc
                    raise
            yield self.sim.timeout(0.25)  # give an election time to finish
        raise last_error or RpcTimeout(f"no leader found for {method}")

    def _op(self, op: list) -> Generator[Event, None, Any]:
        result = yield from self._leader_call("coord.client_op", op)
        return result

    # -- namespace API -----------------------------------------------------

    def create(
        self,
        path: str,
        data: Any = None,
        ephemeral: bool = False,
        sequential: bool = False,
    ) -> Generator[Event, None, str]:
        owner = self.session_id if ephemeral else None
        result = yield from self._op(["create", path, data, owner, sequential])
        return result

    def set_data(self, path: str, data: Any) -> Generator[Event, None, int]:
        result = yield from self._op(["set", path, data])
        return result

    def delete(self, path: str) -> Generator[Event, None, bool]:
        result = yield from self._op(["delete", path])
        return result

    def get_data(self, path: str) -> Generator[Event, None, Any]:
        result = yield from self._leader_call("coord.read", "get", path)
        return result

    def exists(self, path: str) -> Generator[Event, None, bool]:
        result = yield from self._leader_call("coord.read", "exists", path)
        return result

    def get_children(self, path: str) -> Generator[Event, None, List[str]]:
        result = yield from self._leader_call("coord.read", "children", path)
        return result

    # -- watches -------------------------------------------------------------

    def watch(
        self, path: str, callback: Callable[[str, str], None], kind: str = "node"
    ) -> Generator[Event, None, None]:
        """One-shot watch; ``callback(path, event_type)`` fires on change."""
        self._watch_callbacks.setdefault((path, kind), []).append(callback)
        yield from self._leader_call("coord.watch", self.address, path, kind)

    def _rearm_watches(self) -> Generator[Event, None, None]:
        """Re-register outstanding watches (after a leader change)."""
        for (path, kind), callbacks in list(self._watch_callbacks.items()):
            if callbacks:
                try:
                    yield from self._leader_call("coord.watch", self.address, path, kind)
                except (RpcTimeout, RemoteError):
                    pass

    def _watch_event_loop(self) -> Generator[Event, None, None]:
        node = self.network.node(self.address)
        while True:
            message = yield node.inbox.get(
                lambda m: isinstance(m.payload, dict)
                and m.payload.get("kind") == "watch_event"
            )
            path = message.payload["path"]
            event_type = message.payload["type"]
            fired: List[Callable[[str, str], None]] = []
            for kind in ("node", "children"):
                fired.extend(self._watch_callbacks.pop((path, kind), []))
            for callback in fired:
                callback(path, event_type)
