"""The znode tree: the replicated state machine's data model.

A simplified ZooKeeper namespace (§V-B says the prototype's Master
stores its metadata in ZooKeeper as a hierarchical tree): absolute
slash-separated paths, per-node data and version, *ephemeral* nodes
owned by a session, and *sequential* nodes that append a monotonically
increasing counter to their name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["Znode", "ZnodeError", "ZnodeTree", "NoNodeError", "NodeExistsError", "NotEmptyError"]


class ZnodeError(Exception):
    """Base class for namespace errors."""


class NoNodeError(ZnodeError):
    pass


class NodeExistsError(ZnodeError):
    pass


class NotEmptyError(ZnodeError):
    pass


@dataclass
class Znode:
    path: str
    data: Any = None
    version: int = 0
    ephemeral_owner: Optional[str] = None  # session id or None
    children: Dict[str, "Znode"] = field(default_factory=dict)
    sequence_counter: int = 0

    @property
    def name(self) -> str:
        return self.path.rsplit("/", 1)[-1]

    @property
    def is_ephemeral(self) -> bool:
        return self.ephemeral_owner is not None


def _validate_path(path: str) -> None:
    if not path.startswith("/"):
        raise ZnodeError(f"paths must be absolute, got {path!r}")
    if path != "/" and path.endswith("/"):
        raise ZnodeError(f"trailing slash in {path!r}")
    if "//" in path:
        raise ZnodeError(f"empty path component in {path!r}")


class ZnodeTree:
    """Deterministic in-memory namespace; all mutations are idempotent
    enough to be replayed from a log."""

    def __init__(self):
        self.root = Znode(path="/")

    # -- lookup ------------------------------------------------------------

    def _walk(self, path: str) -> Optional[Znode]:
        _validate_path(path)
        if path == "/":
            return self.root
        node = self.root
        for part in path.strip("/").split("/"):
            node = node.children.get(part)
            if node is None:
                return None
        return node

    def get(self, path: str) -> Znode:
        node = self._walk(path)
        if node is None:
            raise NoNodeError(path)
        return node

    def exists(self, path: str) -> bool:
        return self._walk(path) is not None

    def get_data(self, path: str) -> Any:
        return self.get(path).data

    def get_children(self, path: str) -> List[str]:
        return sorted(self.get(path).children)

    # -- mutation -----------------------------------------------------------

    def create(
        self,
        path: str,
        data: Any = None,
        ephemeral_owner: Optional[str] = None,
        sequential: bool = False,
    ) -> str:
        """Create a node; returns the actual path (matters for sequential)."""
        _validate_path(path)
        if path == "/":
            raise NodeExistsError("/")
        parent_path, _, name = path.rpartition("/")
        parent = self._walk(parent_path or "/")
        if parent is None:
            raise NoNodeError(parent_path or "/")
        if parent.is_ephemeral:
            raise ZnodeError(f"ephemeral node {parent.path!r} cannot have children")
        if sequential:
            name = f"{name}{parent.sequence_counter:010d}"
            parent.sequence_counter += 1
        if name in parent.children:
            raise NodeExistsError(path)
        actual_path = (parent.path.rstrip("/") + "/" + name) if parent.path != "/" else "/" + name
        parent.children[name] = Znode(path=actual_path, data=data, ephemeral_owner=ephemeral_owner)
        return actual_path

    def set_data(self, path: str, data: Any, expected_version: Optional[int] = None) -> int:
        node = self.get(path)
        if expected_version is not None and node.version != expected_version:
            raise ZnodeError(
                f"version mismatch on {path!r}: have {node.version}, expected {expected_version}"
            )
        node.data = data
        node.version += 1
        return node.version

    def delete(self, path: str, recursive: bool = False) -> None:
        if path == "/":
            raise ZnodeError("cannot delete the root")
        node = self.get(path)
        if node.children and not recursive:
            raise NotEmptyError(path)
        parent_path, _, name = path.rpartition("/")
        parent = self.get(parent_path or "/")
        del parent.children[name]

    # -- ephemerals ---------------------------------------------------------

    def ephemeral_paths_of(self, session_id: str) -> List[str]:
        found: List[str] = []

        def walk(node: Znode) -> None:
            for child in node.children.values():
                if child.ephemeral_owner == session_id:
                    found.append(child.path)
                walk(child)

        walk(self.root)
        return sorted(found)

    def delete_ephemerals_of(self, session_id: str) -> List[str]:
        paths = self.ephemeral_paths_of(session_id)
        for path in paths:
            if self.exists(path):
                self.delete(path, recursive=True)
        return paths

    # -- snapshot helpers ---------------------------------------------------

    def dump(self) -> Dict[str, Any]:
        """Flat path -> data mapping (tests and debugging)."""
        out: Dict[str, Any] = {}

        def walk(node: Znode) -> None:
            out[node.path] = node.data
            for child in node.children.values():
                walk(child)

        walk(self.root)
        return out
