"""Coordination service: a quorum-replicated mini-ZooKeeper."""

from repro.coord.client import CoordSession, SessionExpiredError
from repro.coord.service import CoordConfig, CoordReplica, LogEntry, NotLeaderError, Role
from repro.coord.znode import (
    NodeExistsError,
    NoNodeError,
    NotEmptyError,
    Znode,
    ZnodeError,
    ZnodeTree,
)

__all__ = [
    "CoordConfig",
    "CoordReplica",
    "CoordSession",
    "LogEntry",
    "NodeExistsError",
    "NoNodeError",
    "NotEmptyError",
    "NotLeaderError",
    "Role",
    "SessionExpiredError",
    "Znode",
    "ZnodeError",
    "ZnodeTree",
]


def build_cluster(sim, network, size=3, rng=None, config=None, prefix="coord"):
    """Convenience: spin up a replica cluster and return the replicas."""
    from repro.coord.service import CoordConfig as _Config

    addresses = [f"{prefix}{i}" for i in range(size)]
    config = config or _Config()
    return [
        CoordReplica(sim, network, address, addresses, rng=rng, config=config)
        for address in addresses
    ]
